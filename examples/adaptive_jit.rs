//! A JIT-style scenario: guard conditions in compiled fast paths.
//!
//! A tracing JIT compiles a fast path under a *guard* (e.g., "receiver is
//! a `Point`", "array index in bounds"). Guards are exactly software
//! speculation: cheap when they hold, expensive deoptimization when they
//! fail. This example wires the paper's reactive controller into a mock
//! JIT runtime and shows how it (a) promotes stable guards to fast paths,
//! (b) deoptimizes the one whose behavior flips mid-run, and (c) refuses
//! to keep recompiling a pathologically oscillating guard.
//!
//! ```sh
//! cargo run --release --example adaptive_jit
//! ```

use reactive_speculation::control::{
    ControllerParams, EvictionMode, MonitorPolicy, ReactiveController, Revisit, SpecDecision,
};
use reactive_speculation::trace::rng::Xoshiro256;
use reactive_speculation::trace::{BranchId, BranchRecord};

/// One guard site in the mock JIT.
struct Guard {
    name: &'static str,
    /// Probability the guard holds, as a function of execution index.
    holds: Box<dyn Fn(u64) -> f64>,
}

fn main() {
    let guards = [
        Guard {
            name: "monomorphic-receiver",
            holds: Box::new(|_| 0.9999),
        },
        Guard {
            name: "bounds-check",
            holds: Box::new(|_| 0.9997),
        },
        Guard {
            name: "phase-change-type",
            // Holds until the program switches data representations.
            holds: Box::new(|i| if i < 25_000 { 0.9999 } else { 0.02 }),
        },
        Guard {
            name: "polymorphic-callsite",
            holds: Box::new(|_| 0.80),
        },
        Guard {
            name: "oscillating-shape",
            holds: Box::new(|i| if (i / 6_000) % 2 == 0 { 0.9999 } else { 0.35 }),
        },
    ];

    // Small-scale parameters: the runtime monitors 300 executions before
    // compiling a fast path, deoptimizes via the +50/−1 hysteresis, and
    // refuses a 4th recompilation.
    let params = ControllerParams {
        monitor_period: 300,
        monitor_policy: MonitorPolicy::FixedWindow,
        monitor_sample_rate: 1,
        selection_threshold: 0.995,
        eviction: EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 500,
        },
        revisit: Revisit::After(5_000),
        oscillation_limit: Some(3),
        optimization_latency: 2_000,
    };
    let mut jit = ReactiveController::builder(params)
        .build()
        .expect("valid params");
    let mut rng = Xoshiro256::seed_from(7);

    let mut fast = vec![0u64; guards.len()];
    let mut deopt = vec![0u64; guards.len()];
    let mut slow = vec![0u64; guards.len()];
    let mut execs = vec![0u64; guards.len()];
    let mut instr = 0u64;

    for round in 0..300_000u64 {
        let g = (round % guards.len() as u64) as usize;
        let i = execs[g];
        execs[g] += 1;
        let holds = rng.gen_bool((guards[g].holds)(i));
        instr += 20;
        let record = BranchRecord {
            branch: BranchId::new(g as u32),
            // Map "guard holds" to a branch outcome.
            taken: holds,
            instr,
        };
        match jit.observe(&record) {
            SpecDecision::Correct => fast[g] += 1,
            SpecDecision::Incorrect => deopt[g] += 1,
            SpecDecision::NotSpeculated => slow[g] += 1,
        }
    }

    println!("guard site              fast-path   deopts  interpreted  recompiles  state");
    println!("{}", "-".repeat(86));
    for (g, guard) in guards.iter().enumerate() {
        let id = BranchId::new(g as u32);
        let state = if jit.is_disabled(id) {
            "blacklisted (oscillation cap)"
        } else if jit.is_speculating(id) {
            "fast path active"
        } else {
            "interpreting / monitoring"
        };
        println!(
            "{:22}  {:>9}  {:>7}  {:>11}  {:>10}  {}",
            guard.name,
            fast[g],
            deopt[g],
            slow[g],
            jit.entries(id),
            state
        );
    }

    let stats = jit.stats();
    println!(
        "\noverall: {:.1}% of guard executions took the fast path, \
         {:.3}% deoptimized",
        stats.correct_frac() * 100.0,
        stats.incorrect_frac() * 100.0
    );
}
