//! End-to-end MSSP: how much does the control policy matter for a real
//! (simulated) machine?
//!
//! Runs the Master/Slave Speculative Parallelization machine on three
//! benchmarks under three policies — closed loop, open loop, and no
//! speculation at all — and prints speedups over a plain superscalar.
//!
//! ```sh
//! cargo run --release --example mssp_speedup
//! ```

use reactive_speculation::control::ControllerParams;
use reactive_speculation::mssp::{machine, MsspParams};
use reactive_speculation::trace::{spec2000, InputId};

fn main() {
    let events = 2_000_000;
    let seed = 11;

    println!("bench    policy       speedup  distilled  task-squashes");
    println!("{}", "-".repeat(58));
    for name in ["vortex", "gzip", "mcf"] {
        let model = spec2000::benchmark(name).expect("known benchmark");
        let population = model.population(events);
        let baseline = machine::run_baseline(
            &population,
            InputId::Eval,
            events,
            seed,
            &MsspParams::new().machine,
        );
        let policies = [
            ("closed-loop", ControllerParams::scaled()),
            ("open-loop", ControllerParams::scaled().without_eviction()),
        ];
        for (label, ctl) in policies {
            let params = MsspParams::new().with_controller(ctl);
            let r = machine::run_mssp_only(&population, InputId::Eval, events, seed, &params);
            println!(
                "{:8} {:12} {:>6.3}x  {:>8.1}%  {:>13}",
                name,
                label,
                baseline as f64 / r.mssp_cycles as f64,
                r.distillation_ratio() * 100.0,
                r.task_misspecs
            );
        }
    }
    println!(
        "\nspeedup > 1 means MSSP beats the superscalar baseline; the open-loop\n\
         policy keeps speculating on branches whose behavior has changed and\n\
         pays a task squash (hundreds of cycles) for every cluster of\n\
         misspeculations — often erasing the entire benefit."
    );
}
