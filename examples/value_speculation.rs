//! Beyond branches: the same controller managing *value* speculation.
//!
//! The paper notes its branch results are qualitatively consistent with
//! other repetitive behaviors, e.g. loads that produce invariant values.
//! Here each "speculation unit" is a load site, and an event's outcome
//! records whether the loaded value matched the predicted (invariant)
//! value. The reactive controller is reused unchanged: it promotes
//! invariant loads to speculation (constant folding in MSSP terms),
//! evicts the sites whose constant changes mid-run, and ignores varying
//! loads.
//!
//! ```sh
//! cargo run --release --example value_speculation
//! ```

use reactive_speculation::control::{engine, ControllerParams};
use reactive_speculation::trace::{InputId, ValueWorkloadSpec};

fn main() {
    let events = 4_000_000;
    let spec = ValueWorkloadSpec::new();
    let population = spec.population(events);
    println!(
        "value workload: {} load sites ({} invariant, {} mostly-invariant, \
         {} phase-changing, {} varying)\n",
        spec.total_sites(),
        spec.invariant_sites,
        spec.mostly_invariant_sites,
        spec.phase_change_sites,
        spec.varying_sites
    );

    for (label, params) in [
        ("reactive (closed loop)", ControllerParams::scaled()),
        (
            "open loop (no eviction)",
            ControllerParams::scaled().without_eviction(),
        ),
    ] {
        let r = engine::run_population(params, &population, InputId::Eval, events, 3)
            .expect("valid params");
        println!(
            "{label:24} value-speculated {:5.1}% of loads, misspeculated {:.3}%, \
             {} evictions",
            r.stats.correct_frac() * 100.0,
            r.stats.incorrect_frac() * 100.0,
            r.stats.total_evictions
        );
    }

    println!(
        "\nthe qualitative picture matches the branch study: the eviction arc\n\
         is what keeps misspeculation negligible when \"constants\" change."
    );
}
