//! Quickstart: run the reactive speculation controller over a synthetic
//! gcc-like workload and compare it with static self-training.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reactive_speculation::control::{engine, ControllerParams};
use reactive_speculation::profile::{pareto, BranchProfile};
use reactive_speculation::trace::{spec2000, InputId};

fn main() {
    let events = 16_000_000;
    let seed = 42;

    let model = spec2000::benchmark("gcc").expect("gcc is built in");
    let population = model.population(events);
    println!(
        "benchmark: {} ({} static branches)",
        population.name(),
        population.static_branches()
    );

    // Reference: what a perfect offline profile (self-training) achieves
    // with a 99% bias threshold.
    let profile = BranchProfile::from_trace(population.trace(InputId::Eval, events, seed));
    let knee = pareto::threshold_point(&profile, 0.99);
    println!(
        "self-training @99%:  correct {:5.1}%  incorrect {:.3}%",
        knee.correct * 100.0,
        knee.incorrect * 100.0
    );

    // The reactive controller learns the same set online, with no profile,
    // and keeps misspeculation low even when branches change behavior.
    let result = engine::run_population(
        ControllerParams::scaled(),
        &population,
        InputId::Eval,
        events,
        seed,
    )
    .expect("scaled parameters are valid");
    println!(
        "reactive controller: correct {:5.1}%  incorrect {:.3}%",
        result.stats.correct_frac() * 100.0,
        result.stats.incorrect_frac() * 100.0
    );
    println!(
        "  {} of {} touched branches entered the biased state; {} evictions; \
         one misspeculation every {} instructions",
        result.stats.entered_biased,
        result.stats.touched,
        result.stats.total_evictions,
        result
            .stats
            .misspec_distance()
            .map_or_else(|| "∞".to_string(), |d| d.to_string())
    );
}
