//! Record/replay: serialize a workload to a compact binary trace and drive
//! the controller from the file, decoupling workload generation from
//! policy evaluation (e.g., to archive the exact trace behind a reported
//! number, or to evaluate policies on traces captured elsewhere).
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use reactive_speculation::control::{engine, ControllerParams};
use reactive_speculation::trace::io::{read_trace, write_trace};
use reactive_speculation::trace::{spec2000, InputId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let events = 1_000_000;
    let pop = spec2000::benchmark("twolf")
        .expect("twolf is built in")
        .population(events);

    // Record.
    let path = std::env::temp_dir().join("twolf.rsct");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    write_trace(&mut file, pop.trace(InputId::Eval, events, 42))?;
    drop(file);
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "recorded {events} events to {} ({bytes} bytes, {:.2} B/event)",
        path.display(),
        bytes as f64 / events as f64
    );

    // Replay from the file and from the generator; results must agree.
    let mut file = std::io::BufReader::new(std::fs::File::open(&path)?);
    let replayed = read_trace(&mut file)?;
    let from_file = engine::run_trace(ControllerParams::scaled(), replayed)?;
    let from_generator =
        engine::run_population(ControllerParams::scaled(), &pop, InputId::Eval, events, 42)?;
    assert_eq!(from_file.stats, from_generator.stats);
    println!(
        "replayed run matches generated run exactly: correct {:.1}%, incorrect {:.3}%",
        from_file.stats.correct_frac() * 100.0,
        from_file.stats.incorrect_frac() * 100.0
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
