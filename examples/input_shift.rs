//! Robustness to input change: offline profiling vs reactive control.
//!
//! The paper's core criticism of profile-guided speculation is fragility:
//! a profile gathered on one input can be wrong — sometimes perfectly
//! wrong — on another. This example profiles crafty on its training input,
//! deploys the resulting static speculation set on the evaluation input,
//! and compares against the reactive controller, which needs no profile
//! at all.
//!
//! ```sh
//! cargo run --release --example input_shift
//! ```

use reactive_speculation::control::{engine, ControllerParams};
use reactive_speculation::profile::{evaluate, BranchProfile, SpeculationSet};
use reactive_speculation::trace::{spec2000, InputId};

fn main() {
    let events = 4_000_000;
    let seed = 9;
    let model = spec2000::benchmark("crafty").expect("crafty is built in");
    let population = model.population(events);

    println!(
        "crafty: profile input = '{}', evaluation input = '{}'\n",
        model.paper.profile_input, model.paper.eval_input
    );

    // Offline: profile on the training input, select biased branches once.
    let train_profile = BranchProfile::from_trace(population.trace(InputId::Profile, events, seed));
    let static_set = SpeculationSet::from_profile(&train_profile, 0.99, 32);

    // Deploy on the evaluation input: input-dependent predicates reverse,
    // unprofiled code appears.
    let static_out = evaluate::evaluate(&static_set, population.trace(InputId::Eval, events, seed));
    println!(
        "static profile-guided:  correct {:5.1}%  incorrect {:.3}%  ({} branches selected)",
        static_out.correct_frac() * 100.0,
        static_out.incorrect_frac() * 100.0,
        static_set.speculated_count()
    );

    // Self-training upper bound (profile the evaluation input itself).
    let eval_profile = BranchProfile::from_trace(population.trace(InputId::Eval, events, seed));
    let oracle_set = SpeculationSet::from_profile(&eval_profile, 0.99, 32);
    let oracle_out = evaluate::evaluate(&oracle_set, population.trace(InputId::Eval, events, seed));
    println!(
        "self-training (oracle): correct {:5.1}%  incorrect {:.3}%",
        oracle_out.correct_frac() * 100.0,
        oracle_out.incorrect_frac() * 100.0
    );

    // Reactive: no profile, learns and re-learns online.
    let reactive = engine::run_population(
        ControllerParams::scaled(),
        &population,
        InputId::Eval,
        events,
        seed,
    )
    .expect("valid params");
    println!(
        "reactive controller:    correct {:5.1}%  incorrect {:.3}%  ({} evictions)",
        reactive.stats.correct_frac() * 100.0,
        reactive.stats.incorrect_frac() * 100.0,
        reactive.stats.total_evictions
    );

    let gain = static_out.incorrect_frac() / reactive.stats.incorrect_frac().max(1e-9);
    println!(
        "\nthe stale profile misspeculates {gain:.0}x more often than the \
         reactive controller on the shifted input"
    );
}
