//! Integration tests asserting the paper's headline claims end-to-end,
//! across all four crates, at reduced (but meaningful) scale.
//!
//! Populations, profiles, and baseline controller runs are built once and
//! shared across tests (they are pure functions of `(name, events, seed)`),
//! which cuts the suite's wall clock severalfold. Set `RSC_TEST_EVENTS` to
//! run at a different scale, e.g. `RSC_TEST_EVENTS=3000000 cargo test`. The
//! quantitative thresholds are tuned for the 4M default and still hold at
//! 3M; below that, statistical noise starts tripping the tighter bounds.

use reactive_speculation::control::{engine, ControlStats, ControllerParams};
use reactive_speculation::profile::{offline, pareto, BranchProfile};
use reactive_speculation::trace::{spec2000, InputId, Population};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

const SEED: u64 = 42;

/// Events per trace; override with `RSC_TEST_EVENTS`.
fn events() -> u64 {
    static EVENTS: OnceLock<u64> = OnceLock::new();
    *EVENTS.get_or_init(|| {
        std::env::var("RSC_TEST_EVENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4_000_000)
    })
}

/// The benchmark's population, built once per process.
fn population(name: &str) -> Arc<Population> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Population>>>> = OnceLock::new();
    let mut map = CACHE.get_or_init(Default::default).lock().unwrap();
    map.entry(name.to_string())
        .or_insert_with(|| Arc::new(spec2000::benchmark(name).unwrap().population(events())))
        .clone()
}

/// The benchmark's eval-input branch profile, built once per process.
fn profile(name: &str) -> Arc<BranchProfile> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<BranchProfile>>>> = OnceLock::new();
    let mut map = CACHE.get_or_init(Default::default).lock().unwrap();
    map.entry(name.to_string())
        .or_insert_with(|| {
            Arc::new(BranchProfile::from_trace(population(name).trace(
                InputId::Eval,
                events(),
                SEED,
            )))
        })
        .clone()
}

fn reactive(name: &str, params: ControllerParams) -> ControlStats {
    engine::run_population(params, &population(name), InputId::Eval, events(), SEED)
        .unwrap()
        .stats
}

/// The baseline (scaled-parameter) controller run, shared by every test
/// that only needs the default configuration.
fn scaled_stats(name: &str) -> ControlStats {
    static CACHE: OnceLock<Mutex<HashMap<String, ControlStats>>> = OnceLock::new();
    let mut map = CACHE.get_or_init(Default::default).lock().unwrap();
    *map.entry(name.to_string())
        .or_insert_with(|| reactive(name, ControllerParams::scaled()))
}

/// Section 2.1: speculating on all branches with ≥99% bias covers a large
/// fraction of dynamic branches at a tiny misspeculation rate.
#[test]
fn opportunity_at_99_percent_threshold() {
    for name in ["gcc", "vortex", "perl"] {
        let knee = pareto::threshold_point(&profile(name), 0.99);
        assert!(knee.correct > 0.40, "{name}: correct {:.3}", knee.correct);
        assert!(
            knee.incorrect < 0.005,
            "{name}: incorrect {:.4}",
            knee.incorrect
        );
    }
}

/// Section 2.2: cross-input profiling loses benefit and multiplies
/// misspeculation (the paper: ~3× and ~10× on average).
#[test]
fn cross_input_profiling_is_fragile() {
    let pop = population("crafty");
    let r = offline::cross_input_experiment(&pop, events(), SEED, 0.99, 32);
    assert!(
        r.benefit_loss_factor() > 1.3,
        "benefit loss {:.2}",
        r.benefit_loss_factor()
    );
    assert!(
        r.misspec_gain_factor() > 5.0,
        "misspec gain {:.2}",
        r.misspec_gain_factor()
    );
}

/// Section 3.2: the reactive controller's misspeculation rate stays well
/// below half a percent — the level the paper calls conducive to
/// speculation with 100× penalties.
#[test]
fn reactive_misspeculation_is_tiny() {
    for name in spec2000::NAMES {
        let stats = scaled_stats(name);
        assert!(
            stats.incorrect_frac() < 0.005,
            "{name}: incorrect {:.4}%",
            stats.incorrect_frac() * 100.0
        );
    }
}

/// Section 3.2: the reactive controller is competitive with static
/// self-training.
#[test]
fn reactive_is_competitive_with_self_training() {
    for name in ["gzip", "mcf", "bzip2"] {
        let knee = pareto::threshold_point(&profile(name), 0.99);
        let stats = scaled_stats(name);
        assert!(
            stats.correct_frac() > knee.correct * 0.60,
            "{name}: reactive {:.3} vs self-training {:.3}",
            stats.correct_frac(),
            knee.correct
        );
    }
}

/// Table 4: removing the eviction arc raises misspeculation by well over
/// an order of magnitude.
#[test]
fn no_eviction_explodes_misspeculation() {
    let base = scaled_stats("mcf");
    let open = reactive("mcf", ControllerParams::scaled().without_eviction());
    assert!(
        open.incorrect_frac() > base.incorrect_frac() * 10.0,
        "open {:.4}% vs closed {:.4}%",
        open.incorrect_frac() * 100.0,
        base.incorrect_frac() * 100.0
    );
}

/// Table 4: removing the revisit arc forfeits part of the benefit.
#[test]
fn no_revisit_loses_benefit() {
    let mut base_total = 0.0;
    let mut nr_total = 0.0;
    for name in ["bzip2", "gap", "perl"] {
        base_total += scaled_stats(name).correct_frac();
        nr_total += reactive(name, ControllerParams::scaled().without_revisit()).correct_frac();
    }
    assert!(
        nr_total < base_total * 0.97,
        "no-revisit {:.3} vs baseline {:.3}",
        nr_total,
        base_total
    );
}

/// Section 3.3: the model tolerates large optimization latencies.
#[test]
fn latency_tolerance() {
    let fast = reactive("twolf", ControllerParams::scaled().with_latency(0));
    let slow = reactive("twolf", ControllerParams::scaled().with_latency(200_000));
    let ratio = slow.correct_frac() / fast.correct_frac();
    assert!(
        ratio > 0.95,
        "latency cut correct speculations: {:.3} vs {:.3}",
        slow.correct_frac(),
        fast.correct_frac()
    );
    assert!(
        slow.incorrect_frac() < fast.incorrect_frac() * 3.0 + 1e-4,
        "latency exploded misspecs: {:.4}% vs {:.4}%",
        slow.incorrect_frac() * 100.0,
        fast.incorrect_frac() * 100.0
    );
}

/// Table 3: roughly a third of touched branches go biased; only a small
/// fraction is ever evicted.
#[test]
fn transition_shape_matches_table3() {
    let mut biased = 0.0;
    let mut evicted = 0.0;
    let mut n = 0.0;
    for name in spec2000::NAMES {
        let stats = scaled_stats(name);
        biased += stats.biased_frac();
        evicted += stats.evicted_frac();
        n += 1.0;
    }
    let biased = biased / n;
    let evicted = evicted / n;
    assert!(
        (0.15..0.60).contains(&biased),
        "mean biased fraction {biased:.3} (paper: 0.34)"
    );
    assert!(
        evicted < 0.10,
        "mean evicted fraction {evicted:.3} (paper: 0.02)"
    );
}
