//! Integration tests asserting the paper's headline claims end-to-end,
//! across all four crates, at reduced (but meaningful) scale.

use reactive_speculation::control::{engine, ControllerParams};
use reactive_speculation::profile::{offline, pareto, BranchProfile};
use reactive_speculation::trace::{spec2000, InputId};

const EVENTS: u64 = 4_000_000;
const SEED: u64 = 42;

fn reactive(name: &str, params: ControllerParams) -> reactive_speculation::control::ControlStats {
    let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
    engine::run_population(params, &pop, InputId::Eval, EVENTS, SEED)
        .unwrap()
        .stats
}

/// Section 2.1: speculating on all branches with ≥99% bias covers a large
/// fraction of dynamic branches at a tiny misspeculation rate.
#[test]
fn opportunity_at_99_percent_threshold() {
    for name in ["gcc", "vortex", "perl"] {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, EVENTS, SEED));
        let knee = pareto::threshold_point(&profile, 0.99);
        assert!(knee.correct > 0.40, "{name}: correct {:.3}", knee.correct);
        assert!(
            knee.incorrect < 0.005,
            "{name}: incorrect {:.4}",
            knee.incorrect
        );
    }
}

/// Section 2.2: cross-input profiling loses benefit and multiplies
/// misspeculation (the paper: ~3× and ~10× on average).
#[test]
fn cross_input_profiling_is_fragile() {
    let pop = spec2000::benchmark("crafty").unwrap().population(EVENTS);
    let r = offline::cross_input_experiment(&pop, EVENTS, SEED, 0.99, 32);
    assert!(
        r.benefit_loss_factor() > 1.3,
        "benefit loss {:.2}",
        r.benefit_loss_factor()
    );
    assert!(
        r.misspec_gain_factor() > 5.0,
        "misspec gain {:.2}",
        r.misspec_gain_factor()
    );
}

/// Section 3.2: the reactive controller's misspeculation rate stays well
/// below half a percent — the level the paper calls conducive to
/// speculation with 100× penalties.
#[test]
fn reactive_misspeculation_is_tiny() {
    for name in spec2000::NAMES {
        let stats = reactive(name, ControllerParams::scaled());
        assert!(
            stats.incorrect_frac() < 0.005,
            "{name}: incorrect {:.4}%",
            stats.incorrect_frac() * 100.0
        );
    }
}

/// Section 3.2: the reactive controller is competitive with static
/// self-training.
#[test]
fn reactive_is_competitive_with_self_training() {
    for name in ["gzip", "mcf", "bzip2"] {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, EVENTS, SEED));
        let knee = pareto::threshold_point(&profile, 0.99);
        let stats = reactive(name, ControllerParams::scaled());
        assert!(
            stats.correct_frac() > knee.correct * 0.60,
            "{name}: reactive {:.3} vs self-training {:.3}",
            stats.correct_frac(),
            knee.correct
        );
    }
}

/// Table 4: removing the eviction arc raises misspeculation by well over
/// an order of magnitude.
#[test]
fn no_eviction_explodes_misspeculation() {
    let base = reactive("mcf", ControllerParams::scaled());
    let open = reactive("mcf", ControllerParams::scaled().without_eviction());
    assert!(
        open.incorrect_frac() > base.incorrect_frac() * 10.0,
        "open {:.4}% vs closed {:.4}%",
        open.incorrect_frac() * 100.0,
        base.incorrect_frac() * 100.0
    );
}

/// Table 4: removing the revisit arc forfeits part of the benefit.
#[test]
fn no_revisit_loses_benefit() {
    let mut base_total = 0.0;
    let mut nr_total = 0.0;
    for name in ["bzip2", "gap", "perl"] {
        base_total += reactive(name, ControllerParams::scaled()).correct_frac();
        nr_total += reactive(name, ControllerParams::scaled().without_revisit()).correct_frac();
    }
    assert!(
        nr_total < base_total * 0.97,
        "no-revisit {:.3} vs baseline {:.3}",
        nr_total,
        base_total
    );
}

/// Section 3.3: the model tolerates large optimization latencies.
#[test]
fn latency_tolerance() {
    let fast = reactive("twolf", ControllerParams::scaled().with_latency(0));
    let slow = reactive("twolf", ControllerParams::scaled().with_latency(200_000));
    let ratio = slow.correct_frac() / fast.correct_frac();
    assert!(
        ratio > 0.95,
        "latency cut correct speculations: {:.3} vs {:.3}",
        slow.correct_frac(),
        fast.correct_frac()
    );
    assert!(
        slow.incorrect_frac() < fast.incorrect_frac() * 3.0 + 1e-4,
        "latency exploded misspecs: {:.4}% vs {:.4}%",
        slow.incorrect_frac() * 100.0,
        fast.incorrect_frac() * 100.0
    );
}

/// Table 3: roughly a third of touched branches go biased; only a small
/// fraction is ever evicted.
#[test]
fn transition_shape_matches_table3() {
    let mut biased = 0.0;
    let mut evicted = 0.0;
    let mut n = 0.0;
    for name in spec2000::NAMES {
        let stats = reactive(name, ControllerParams::scaled());
        biased += stats.biased_frac();
        evicted += stats.evicted_frac();
        n += 1.0;
    }
    let biased = biased / n;
    let evicted = evicted / n;
    assert!(
        (0.15..0.60).contains(&biased),
        "mean biased fraction {biased:.3} (paper: 0.34)"
    );
    assert!(
        evicted < 0.10,
        "mean evicted fraction {evicted:.3} (paper: 0.02)"
    );
}
