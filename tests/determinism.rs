//! Reproducibility guarantees: every layer of the stack is a pure function
//! of its seeds.

use reactive_speculation::control::{engine, ControllerParams};
use reactive_speculation::mssp::{machine, MsspParams};
use reactive_speculation::trace::{spec2000, InputId};

#[test]
fn traces_are_bit_identical_across_runs() {
    let pop = spec2000::benchmark("parser").unwrap().population(200_000);
    let a: Vec<_> = pop.trace(InputId::Eval, 200_000, 123).collect();
    let b: Vec<_> = pop.trace(InputId::Eval, 200_000, 123).collect();
    assert_eq!(a, b);
}

#[test]
fn populations_are_identical_across_instantiations() {
    let m = spec2000::benchmark("twolf").unwrap();
    assert_eq!(
        m.population(1_000_000).branches(),
        m.population(1_000_000).branches()
    );
}

#[test]
fn controller_runs_are_identical() {
    let pop = spec2000::benchmark("gap").unwrap().population(500_000);
    let run = |seed| {
        engine::run_population(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            500_000,
            seed,
        )
        .unwrap()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.transitions, b.transitions);
    // And a different seed changes the outcome.
    let c = run(8);
    assert_ne!(a.stats, c.stats);
}

#[test]
fn mssp_runs_are_identical() {
    let pop = spec2000::benchmark("gzip").unwrap().population(300_000);
    let a = machine::run_mssp(&pop, InputId::Eval, 300_000, 5, &MsspParams::new());
    let b = machine::run_mssp(&pop, InputId::Eval, 300_000, 5, &MsspParams::new());
    assert_eq!(a, b);
}

#[test]
fn different_inputs_share_branch_identities_but_differ_in_behavior() {
    let pop = spec2000::benchmark("perl").unwrap().population(400_000);
    let eval: Vec<_> = pop.trace(InputId::Eval, 400_000, 1).collect();
    let prof: Vec<_> = pop.trace(InputId::Profile, 400_000, 1).collect();
    assert_ne!(eval, prof);
    // All branch ids in both streams index the same population.
    let max_eval = eval.iter().map(|r| r.branch.index()).max().unwrap();
    let max_prof = prof.iter().map(|r| r.branch.index()).max().unwrap();
    assert!(max_eval < pop.static_branches());
    assert!(max_prof < pop.static_branches());
}

#[test]
fn event_hint_changes_population_deterministically() {
    // Different hints scale phase thresholds, so populations differ — but
    // each is still reproducible.
    let m = spec2000::benchmark("bzip2").unwrap();
    let small = m.population(100_000);
    let large = m.population(10_000_000);
    assert_eq!(small.static_branches(), large.static_branches());
    assert_ne!(small.branches(), large.branches());
}
