//! The chunked hot path is an *optimization*, not a semantic change: for
//! any benchmark and seed, driving the pipeline through
//! `Trace::fill`/`observe_chunk`/`record_chunk` must produce bit-identical
//! results to the per-event `Iterator`/`observe`/`record` path.

use proptest::prelude::*;
use rsc_control::{
    engine, ChunkSummary, ControllerParams, ReactiveController, TransitionLogPolicy,
};
use rsc_profile::BranchProfile;
use rsc_trace::rng::SplitMix64;
use rsc_trace::{spec2000, BranchId, BranchRecord, InputId, Scenario};

const BENCHMARKS: [&str; 4] = ["gzip", "gcc", "crafty", "vortex"];
const SEEDS: [u64; 2] = [7, 1234];
const EVENTS: u64 = 60_000;

fn empty_buf(n: usize) -> Vec<BranchRecord> {
    vec![
        BranchRecord {
            branch: BranchId::new(0),
            taken: false,
            instr: 0
        };
        n
    ]
}

#[test]
fn chunked_controller_run_matches_per_event_run() {
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        for seed in SEEDS {
            let per_event = engine::run_population(
                ControllerParams::scaled(),
                &pop,
                InputId::Eval,
                EVENTS,
                seed,
            )
            .unwrap();
            let chunked = engine::run_population_chunked(
                ControllerParams::scaled(),
                &pop,
                InputId::Eval,
                EVENTS,
                seed,
                TransitionLogPolicy::Full,
            )
            .unwrap();
            assert_eq!(per_event.stats, chunked.stats, "{name} seed {seed}: stats");
            assert_eq!(
                per_event.transitions, chunked.transitions,
                "{name} seed {seed}: transition log"
            );
        }
    }
}

#[test]
fn chunk_size_does_not_change_controller_results() {
    let pop = spec2000::benchmark("crafty").unwrap().population(EVENTS);
    let reference = engine::run_population(
        ControllerParams::scaled(),
        &pop,
        InputId::Eval,
        EVENTS,
        SEEDS[0],
    )
    .unwrap();
    for chunk in [1usize, 13, 256, 4096, 100_000] {
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        let mut trace = pop.trace(InputId::Eval, EVENTS, SEEDS[0]);
        let mut buf = empty_buf(chunk);
        let mut total = ChunkSummary::default();
        loop {
            let n = trace.fill(&mut buf);
            if n == 0 {
                break;
            }
            let s = ctl.observe_chunk(&buf[..n]);
            total.events += s.events;
            total.correct += s.correct;
            total.incorrect += s.incorrect;
        }
        assert_eq!(reference.stats, ctl.stats(), "chunk {chunk}: stats");
        assert_eq!(
            &reference.transitions[..],
            ctl.transitions(),
            "chunk {chunk}: log"
        );
        assert_eq!(total.events, EVENTS, "chunk {chunk}: summary events");
        assert_eq!(
            total.correct,
            ctl.stats().correct,
            "chunk {chunk}: summary correct"
        );
        assert_eq!(
            total.incorrect,
            ctl.stats().incorrect,
            "chunk {chunk}: summary incorrect"
        );
    }
}

#[test]
fn counts_only_policy_preserves_stats_and_transition_counts() {
    let pop = spec2000::benchmark("gcc").unwrap().population(EVENTS);
    for seed in SEEDS {
        let full = engine::run_population_chunked(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            EVENTS,
            seed,
            TransitionLogPolicy::Full,
        )
        .unwrap();
        let counts_only = engine::run_population_chunked(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            EVENTS,
            seed,
            TransitionLogPolicy::CountsOnly,
        )
        .unwrap();
        assert_eq!(full.stats, counts_only.stats, "seed {seed}");
        assert!(counts_only.transitions.is_empty());
    }
}

#[test]
fn chunked_profile_matches_per_event_profile() {
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        for seed in SEEDS {
            let per_event = BranchProfile::from_trace(pop.trace(InputId::Profile, EVENTS, seed));
            let chunked =
                BranchProfile::from_trace_chunked(&mut pop.trace(InputId::Profile, EVENTS, seed));
            assert_eq!(per_event, chunked, "{name} seed {seed}");
        }
    }
}

/// Oscillating traces for the property test below: each branch runs
/// perfectly taken for `flip` executions, then perfectly not-taken, and
/// so on — the worst case for chunk boundaries, because every flip drags
/// the branch through classification, eviction, and re-monitoring, and
/// small chunks are guaranteed to split those transitions mid-flight.
fn oscillating_trace(branches: u32, flip: u64, events: u64) -> Vec<BranchRecord> {
    let mut out = Vec::with_capacity(events as usize);
    let mut execs = vec![0u64; branches as usize];
    for i in 0..events {
        let b = (i % u64::from(branches)) as usize;
        let n = execs[b];
        execs[b] += 1;
        out.push(BranchRecord {
            branch: BranchId::new(b as u32),
            taken: (n / flip).is_multiple_of(2),
            instr: 3 * i + 1,
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For chunk sizes 1..=7 — all smaller than any transition-relevant
    /// time constant — every per-chunk `ChunkSummary` must equal the sum
    /// of the per-event decisions over exactly that chunk, and the final
    /// controller states must be identical.
    #[test]
    fn tiny_chunk_summaries_equal_summed_per_event_decisions(
        chunk in 1usize..=7,
        flip in 4u64..60,
        branches in 1u32..4,
        monitor in prop::sample::select(vec![5u64, 10, 16]),
        latency in prop::sample::select(vec![0u64, 25]),
    ) {
        let mut params = ControllerParams::scaled()
            .with_monitor_period(monitor)
            .with_latency(latency);
        params.eviction = rsc_control::EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 100,
        };
        params.revisit = rsc_control::Revisit::After(2 * monitor);

        let trace = oscillating_trace(branches, flip, 3_000);
        let mut per_event = ReactiveController::builder(params).build().unwrap();
        let mut chunked = ReactiveController::builder(params).build().unwrap();

        for window in trace.chunks(chunk) {
            let mut expect = ChunkSummary::default();
            for r in window {
                let d = per_event.observe(r);
                expect.events += 1;
                expect.speculated += u64::from(d.speculated());
                expect.correct += u64::from(d == rsc_control::SpecDecision::Correct);
                expect.incorrect += u64::from(d == rsc_control::SpecDecision::Incorrect);
            }
            let got = chunked.observe_chunk(window);
            prop_assert_eq!(got, expect, "chunk size {}", chunk);
        }

        prop_assert_eq!(per_event.stats(), chunked.stats());
        prop_assert_eq!(per_event.transitions(), chunked.transitions());
    }

    /// Sharding is a parallelization, not a semantic change: for every
    /// shard count 1..=8, adversarial scenario, seed, and random chunk
    /// layout, the sharded engine's per-chunk summaries, final stats,
    /// per-kind transition counts, and per-branch snapshots are
    /// bit-identical to a sequential controller fed per-event.
    #[test]
    fn sharded_engine_is_bit_identical_to_sequential(
        shards in 1usize..=8,
        scenario in prop::sample::select(vec![
            Scenario::PhaseFlip { branches: 6, flip_after: 40 },
            Scenario::HysteresisStraddle { warmup: 10, period: 2 },
            Scenario::ThresholdOscillator { window: 10 },
            Scenario::BurstyHotSet { hot: 3, burst: 40 },
            Scenario::UniformRandom { branches: 8 },
        ]),
        seed in any::<u64>(),
        max_chunk in 1u64..400,
    ) {
        let mut params = ControllerParams::scaled()
            .with_monitor_period(10)
            .with_latency(0);
        params.eviction = rsc_control::EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 100,
        };
        params.revisit = rsc_control::Revisit::After(20);

        let trace = scenario.generate(4_000, seed);
        let mut sequential = ReactiveController::builder(params).build().unwrap();
        let mut sharded = ReactiveController::builder(params)
            .shards(shards)
            .build_sharded()
            .unwrap();

        let mut sizes = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut start = 0usize;
        while start < trace.len() {
            let len = 1 + (sizes.next_u64() % max_chunk) as usize;
            let end = (start + len).min(trace.len());
            let window = &trace[start..end];
            let mut expect = ChunkSummary::default();
            for r in window {
                let d = sequential.observe(r);
                expect.events += 1;
                expect.speculated += u64::from(d.speculated());
                expect.correct += u64::from(d == rsc_control::SpecDecision::Correct);
                expect.incorrect += u64::from(d == rsc_control::SpecDecision::Incorrect);
            }
            let got = sharded.observe_chunk(window);
            prop_assert_eq!(got, expect, "shards {}, chunk {}..{}", shards, start, end);
            start = end;
        }

        prop_assert_eq!(sequential.stats(), sharded.stats(), "shards {}", shards);
        for kind in rsc_control::TransitionKind::ALL {
            prop_assert_eq!(
                sequential.transition_log().count(kind),
                sharded.transition_count(kind),
                "shards {}, kind {:?}", shards, kind
            );
        }
        let max_branch = trace.iter().map(|r| r.branch.index()).max().unwrap_or(0);
        for b in 0..=max_branch {
            let id = BranchId::new(b as u32);
            prop_assert_eq!(
                sequential.branch_snapshot(id),
                sharded.branch_snapshot(id),
                "shards {}, branch {}", shards, b
            );
        }
    }
}

#[test]
fn chunked_baseline_timing_matches_per_event_for_every_benchmark_and_seed() {
    use rsc_mssp::{run_baseline, run_baseline_chunked, MachineConfig};
    let machine = MachineConfig::table5();
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        for seed in SEEDS {
            assert_eq!(
                run_baseline(&pop, InputId::Eval, EVENTS, seed, &machine),
                run_baseline_chunked(&pop, InputId::Eval, EVENTS, seed, &machine),
                "{name} seed {seed}"
            );
        }
    }
}

#[test]
fn mssp_exec_modes_are_bit_identical_across_benchmarks_seeds_and_task_sizes() {
    use rsc_mssp::{run_mssp_only_mode, ExecMode, MsspParams};
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        for seed in SEEDS {
            // task_events = 1 is the degenerate block size where every
            // chunk boundary falls inside a gap; 64 is the default; 1000
            // spans many trace-refill chunks.
            for task_events in [1u64, 64, 1000] {
                let mut params = MsspParams::new();
                params.task_events = task_events;
                let per_event = run_mssp_only_mode(
                    &pop,
                    InputId::Eval,
                    EVENTS,
                    seed,
                    &params,
                    ExecMode::PerEvent,
                );
                for mode in [ExecMode::Chunked, ExecMode::Speculative] {
                    let got = run_mssp_only_mode(&pop, InputId::Eval, EVENTS, seed, &params, mode);
                    assert_eq!(
                        per_event, got,
                        "{name} seed {seed} task_events {task_events} {mode:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn fill_matches_iterator_for_every_benchmark_and_seed() {
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(20_000);
        for seed in SEEDS {
            let expected: Vec<BranchRecord> = pop.trace(InputId::Eval, 20_000, seed).collect();
            let mut got = Vec::with_capacity(expected.len());
            let mut trace = pop.trace(InputId::Eval, 20_000, seed);
            let mut buf = empty_buf(777);
            loop {
                let n = trace.fill(&mut buf);
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(expected, got, "{name} seed {seed}");
        }
    }
}
