//! The chunked hot path is an *optimization*, not a semantic change: for
//! any benchmark and seed, driving the pipeline through
//! `Trace::fill`/`observe_chunk`/`record_chunk` must produce bit-identical
//! results to the per-event `Iterator`/`observe`/`record` path.

use rsc_control::{
    engine, ChunkSummary, ControllerParams, ReactiveController, TransitionLogPolicy,
};
use rsc_profile::BranchProfile;
use rsc_trace::{spec2000, BranchId, BranchRecord, InputId};

const BENCHMARKS: [&str; 4] = ["gzip", "gcc", "crafty", "vortex"];
const SEEDS: [u64; 2] = [7, 1234];
const EVENTS: u64 = 60_000;

fn empty_buf(n: usize) -> Vec<BranchRecord> {
    vec![
        BranchRecord {
            branch: BranchId::new(0),
            taken: false,
            instr: 0
        };
        n
    ]
}

#[test]
fn chunked_controller_run_matches_per_event_run() {
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        for seed in SEEDS {
            let per_event = engine::run_population(
                ControllerParams::scaled(),
                &pop,
                InputId::Eval,
                EVENTS,
                seed,
            )
            .unwrap();
            let chunked = engine::run_population_chunked(
                ControllerParams::scaled(),
                &pop,
                InputId::Eval,
                EVENTS,
                seed,
                TransitionLogPolicy::Full,
            )
            .unwrap();
            assert_eq!(per_event.stats, chunked.stats, "{name} seed {seed}: stats");
            assert_eq!(
                per_event.transitions, chunked.transitions,
                "{name} seed {seed}: transition log"
            );
        }
    }
}

#[test]
fn chunk_size_does_not_change_controller_results() {
    let pop = spec2000::benchmark("crafty").unwrap().population(EVENTS);
    let reference = engine::run_population(
        ControllerParams::scaled(),
        &pop,
        InputId::Eval,
        EVENTS,
        SEEDS[0],
    )
    .unwrap();
    for chunk in [1usize, 13, 256, 4096, 100_000] {
        let mut ctl = ReactiveController::new(ControllerParams::scaled()).unwrap();
        let mut trace = pop.trace(InputId::Eval, EVENTS, SEEDS[0]);
        let mut buf = empty_buf(chunk);
        let mut total = ChunkSummary::default();
        loop {
            let n = trace.fill(&mut buf);
            if n == 0 {
                break;
            }
            let s = ctl.observe_chunk(&buf[..n]);
            total.events += s.events;
            total.correct += s.correct;
            total.incorrect += s.incorrect;
        }
        assert_eq!(reference.stats, ctl.stats(), "chunk {chunk}: stats");
        assert_eq!(
            &reference.transitions[..],
            ctl.transitions(),
            "chunk {chunk}: log"
        );
        assert_eq!(total.events, EVENTS, "chunk {chunk}: summary events");
        assert_eq!(
            total.correct,
            ctl.stats().correct,
            "chunk {chunk}: summary correct"
        );
        assert_eq!(
            total.incorrect,
            ctl.stats().incorrect,
            "chunk {chunk}: summary incorrect"
        );
    }
}

#[test]
fn counts_only_policy_preserves_stats_and_transition_counts() {
    let pop = spec2000::benchmark("gcc").unwrap().population(EVENTS);
    for seed in SEEDS {
        let full = engine::run_population_chunked(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            EVENTS,
            seed,
            TransitionLogPolicy::Full,
        )
        .unwrap();
        let counts_only = engine::run_population_chunked(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            EVENTS,
            seed,
            TransitionLogPolicy::CountsOnly,
        )
        .unwrap();
        assert_eq!(full.stats, counts_only.stats, "seed {seed}");
        assert!(counts_only.transitions.is_empty());
    }
}

#[test]
fn chunked_profile_matches_per_event_profile() {
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(EVENTS);
        for seed in SEEDS {
            let per_event = BranchProfile::from_trace(pop.trace(InputId::Profile, EVENTS, seed));
            let chunked =
                BranchProfile::from_trace_chunked(&mut pop.trace(InputId::Profile, EVENTS, seed));
            assert_eq!(per_event, chunked, "{name} seed {seed}");
        }
    }
}

#[test]
fn fill_matches_iterator_for_every_benchmark_and_seed() {
    for name in BENCHMARKS {
        let pop = spec2000::benchmark(name).unwrap().population(20_000);
        for seed in SEEDS {
            let expected: Vec<BranchRecord> = pop.trace(InputId::Eval, 20_000, seed).collect();
            let mut got = Vec::with_capacity(expected.len());
            let mut trace = pop.trace(InputId::Eval, 20_000, seed);
            let mut buf = empty_buf(777);
            loop {
                let n = trace.fill(&mut buf);
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(expected, got, "{name} seed {seed}");
        }
    }
}
