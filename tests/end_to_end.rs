//! Cross-crate pipelines: trace → profile → controller → MSSP machine.

use reactive_speculation::control::analysis::{intervals, transition};
use reactive_speculation::control::{engine, ControllerParams, TransitionKind};
use reactive_speculation::mssp::{machine, MsspParams};
use reactive_speculation::profile::{evaluate, BranchProfile, SpeculationSet};
use reactive_speculation::trace::{spec2000, InputId, TraceStats};

#[test]
fn trace_profile_and_controller_agree_on_event_counts() {
    let events = 1_000_000;
    let pop = spec2000::benchmark("vpr").unwrap().population(events);

    let stats = TraceStats::from_trace(pop.trace(InputId::Eval, events, 1));
    let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, events, 1));
    let run =
        engine::run_population(ControllerParams::scaled(), &pop, InputId::Eval, events, 1).unwrap();

    assert_eq!(stats.total_events(), events);
    assert_eq!(profile.events(), events);
    assert_eq!(run.stats.events, events);
    assert_eq!(stats.touched(), profile.touched());
    assert_eq!(stats.touched(), run.stats.touched);
    assert_eq!(stats.instructions(), profile.instructions());
    assert_eq!(stats.instructions(), run.stats.instructions);
}

#[test]
fn static_selection_and_controller_find_overlapping_sets() {
    let events = 2_000_000;
    let pop = spec2000::benchmark("eon").unwrap().population(events);
    let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, events, 5));
    let set = SpeculationSet::from_profile(&profile, 0.995, 1_000);

    let run =
        engine::run_population(ControllerParams::scaled(), &pop, InputId::Eval, events, 5).unwrap();
    // Every branch the controller classified biased should (mostly) also
    // pass the static filter; the sets cannot be disjoint.
    let controller_biased: Vec<_> = run
        .transitions
        .iter()
        .filter(|t| t.kind == TransitionKind::EnterBiased)
        .map(|t| t.branch)
        .collect();
    assert!(!controller_biased.is_empty());
    let overlap = controller_biased
        .iter()
        .filter(|b| set.decision(**b).is_some())
        .count();
    let frac = overlap as f64 / controller_biased.len() as f64;
    assert!(frac > 0.7, "overlap fraction {frac:.2}");
}

#[test]
fn static_evaluation_matches_oracle_profile_counts() {
    // Evaluating the self-trained set on its own trace must produce
    // exactly the profile's majority/minority totals for selected branches.
    let events = 300_000;
    let pop = spec2000::benchmark("gzip").unwrap().population(events);
    let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, events, 3));
    let set = SpeculationSet::from_profile(&profile, 0.99, 1);
    let out = evaluate::evaluate(&set, pop.trace(InputId::Eval, events, 3));

    let mut expect_correct = 0u64;
    let mut expect_incorrect = 0u64;
    for (b, _) in set.iter() {
        let n = profile.executions(b.index());
        let t = profile.taken(b.index());
        expect_correct += t.max(n - t);
        expect_incorrect += n.min(n - t.max(n - t));
    }
    assert_eq!(out.correct, expect_correct);
    assert_eq!(out.incorrect, expect_incorrect);
}

#[test]
fn transition_analyses_are_consistent_with_run() {
    let events = 3_000_000;
    let pop = spec2000::benchmark("mcf").unwrap().population(events);
    let params = ControllerParams::scaled();
    let run = engine::run_population(params, &pop, InputId::Eval, events, 7).unwrap();

    // Interval extraction closes exactly the branches that entered biased.
    let ivs = intervals::biased_intervals(&run.transitions, events);
    assert_eq!(ivs.len(), run.stats.entered_biased);

    // Eviction windows: one per eviction (modulo windows still open when a
    // branch is re-evicted immediately — never more than evictions).
    let windows =
        transition::eviction_windows(params, pop.trace(InputId::Eval, events, 7), 32).unwrap();
    assert!(windows.len() as u64 <= run.stats.total_evictions);
    assert!(!windows.is_empty());
}

#[test]
fn mssp_pipeline_runs_and_improves_with_control() {
    let events = 1_000_000;
    let pop = spec2000::benchmark("vortex").unwrap().population(events);
    let r = machine::run_mssp(&pop, InputId::Eval, events, 3, &MsspParams::new());
    assert!(r.tasks > 1000);
    assert!(r.master_instructions < r.original_instructions);
    assert!(r.speedup() > 0.5, "speedup {:.3}", r.speedup());
}

#[test]
fn profile_input_differs_from_eval_input() {
    // perl has the most input-direction-dependent hot branches in our
    // models (as in the paper's scrabbl vs diffmail pairing).
    let events = 2_000_000;
    let pop = spec2000::benchmark("perl").unwrap().population(events);
    let eval = BranchProfile::from_trace(pop.trace(InputId::Eval, events, 9));
    let prof = BranchProfile::from_trace(pop.trace(InputId::Profile, events, 9));
    // Coverage differs (eval-only / profile-only code).
    assert_ne!(eval.touched(), prof.touched());
    // At least one hot branch reverses direction across inputs.
    let reversed = (0..eval.len().min(prof.len()))
        .filter(|&i| {
            eval.executions(i) > 500
                && prof.executions(i) > 500
                && eval.majority(i) != prof.majority(i)
        })
        .count();
    assert!(reversed > 0, "no input-dependent branches found");
}
