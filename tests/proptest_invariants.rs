//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use reactive_speculation::control::{
    engine, ControllerParams, EvictionMode, MonitorPolicy, ReactiveController, Revisit,
    TransitionKind,
};
use reactive_speculation::profile::{pareto, BranchProfile, SpeculationSet};
use reactive_speculation::trace::behavior::{Behavior, Phase};
use reactive_speculation::trace::rng::Xoshiro256;
use reactive_speculation::trace::{BranchId, BranchRecord};

/// Arbitrary record streams over a handful of branches.
fn records(max_len: usize) -> impl Strategy<Value = Vec<BranchRecord>> {
    prop::collection::vec((0u32..8, any::<bool>(), 1u64..12), 1..max_len).prop_map(|entries| {
        let mut instr = 0;
        entries
            .into_iter()
            .map(|(b, taken, gap)| {
                instr += gap;
                BranchRecord {
                    branch: BranchId::new(b),
                    taken,
                    instr,
                }
            })
            .collect()
    })
}

/// Small but structurally valid controller parameterizations.
fn params() -> impl Strategy<Value = ControllerParams> {
    (
        1u64..64, // monitor period
        1u64..4,  // sample rate
        prop::sample::select(vec![0.95, 0.99, 0.995, 1.0]),
        1u32..8, // up multiplier (x25)
        prop::sample::select(vec![
            EvictionModeKind::Counter,
            EvictionModeKind::Sampling,
            EvictionModeKind::Never,
        ]),
        prop::option::of(1u32..6),   // oscillation limit
        0u64..5_000,                 // latency
        prop::option::of(1u64..500), // revisit
    )
        .prop_map(
            |(monitor, rate, threshold, up_mul, kind, osc, latency, revisit)| {
                let up = up_mul * 25;
                ControllerParams {
                    monitor_period: monitor,
                    monitor_policy: MonitorPolicy::FixedWindow,
                    monitor_sample_rate: rate,
                    selection_threshold: threshold,
                    eviction: match kind {
                        EvictionModeKind::Counter => EvictionMode::Counter {
                            up,
                            down: 1,
                            threshold: up * 4,
                        },
                        EvictionModeKind::Sampling => EvictionMode::Sampling {
                            period: monitor.max(2),
                            samples: (monitor / 2).max(1),
                            bias_threshold: 0.98,
                        },
                        EvictionModeKind::Never => EvictionMode::Never,
                    },
                    revisit: match revisit {
                        Some(n) => Revisit::After(n),
                        None => Revisit::Never,
                    },
                    oscillation_limit: osc,
                    optimization_latency: latency,
                }
            },
        )
}

#[derive(Debug, Clone, Copy)]
enum EvictionModeKind {
    Counter,
    Sampling,
    Never,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The controller never loses or invents events, and its decision
    /// counts are consistent.
    #[test]
    fn controller_accounting_is_consistent(
        recs in records(2_000),
        p in params(),
    ) {
        let result = engine::run_trace(p, recs.clone()).unwrap();
        let s = result.stats;
        prop_assert_eq!(s.events, recs.len() as u64);
        prop_assert!(s.correct + s.incorrect <= s.events);
        prop_assert!(s.evicted_branches <= s.entered_biased);
        prop_assert!(s.total_evictions <= s.total_entries);
        prop_assert_eq!(s.reopt_requests, s.total_entries + s.total_evictions);
        prop_assert!(s.touched <= 8);
    }

    /// Per-branch transitions alternate: a branch cannot exit the biased
    /// state more often than it entered it, and the oscillation cap bounds
    /// entries.
    #[test]
    fn transitions_alternate_and_respect_cap(
        recs in records(2_000),
        p in params(),
    ) {
        let result = engine::run_trace(p, recs).unwrap();
        for b in 0..8u32 {
            let branch = BranchId::new(b);
            let mut entries = 0u32;
            let mut exits = 0u32;
            for t in result.transitions.iter().filter(|t| t.branch == branch) {
                match t.kind {
                    TransitionKind::EnterBiased => {
                        entries += 1;
                        prop_assert!(entries == exits + 1, "double entry");
                    }
                    TransitionKind::ExitBiased => {
                        exits += 1;
                        prop_assert!(exits == entries, "exit without entry");
                    }
                    _ => {}
                }
            }
            if let Some(limit) = p.oscillation_limit {
                prop_assert!(entries <= limit);
            }
        }
    }

    /// With eviction disabled, no evictions ever happen; with revisit
    /// disabled, a branch classified unbiased is never reconsidered.
    #[test]
    fn structural_variants_hold(recs in records(2_000)) {
        let p = ControllerParams::scaled()
            .with_monitor_period(16)
            .without_eviction();
        let result = engine::run_trace(p, recs.clone()).unwrap();
        prop_assert_eq!(result.stats.total_evictions, 0);

        let p = ControllerParams {
            monitor_period: 16,
            ..ControllerParams::scaled()
        }
        .without_revisit();
        let result = engine::run_trace(p, recs).unwrap();
        let revisits = result
            .transitions
            .iter()
            .filter(|t| t.kind == TransitionKind::RevisitMonitor)
            .count();
        prop_assert_eq!(revisits, 0);
    }

    /// A Pareto curve is monotone in both coordinates and ends at the
    /// total majority/minority split.
    #[test]
    fn pareto_curve_is_monotone(recs in records(3_000)) {
        let profile = BranchProfile::from_trace(recs);
        let curve = pareto::curve(&profile);
        let mut prev = pareto::ParetoPoint { incorrect: 0.0, correct: 0.0 };
        for pt in &curve {
            prop_assert!(pt.correct + 1e-12 >= prev.correct);
            prop_assert!(pt.incorrect + 1e-12 >= prev.incorrect);
            prop_assert!(pt.correct >= pt.incorrect - 1e-12,
                "majority can never be the minority");
            prev = *pt;
        }
        if let Some(last) = curve.last() {
            prop_assert!((last.correct + last.incorrect - 1.0).abs() < 1e-9,
                "curve must end at 100% of events");
        }
    }

    /// A speculation set built at a threshold only selects branches whose
    /// profile bias meets it.
    #[test]
    fn selection_respects_threshold(
        recs in records(3_000),
        threshold in prop::sample::select(vec![0.6, 0.9, 0.99]),
    ) {
        let profile = BranchProfile::from_trace(recs);
        let set = SpeculationSet::from_profile(&profile, threshold, 4);
        for (b, dir) in set.iter() {
            let bias = profile.bias(b.index()).unwrap();
            prop_assert!(bias >= threshold);
            prop_assert_eq!(Some(dir), profile.majority(b.index()));
            prop_assert!(profile.executions(b.index()) >= 4);
        }
    }

    /// Behaviors always produce probabilities in [0, 1].
    #[test]
    fn behavior_probabilities_are_valid(
        exec in 0u64..1_000_000,
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
        len in 1u64..100_000,
        group_active in any::<bool>(),
    ) {
        let behaviors = vec![
            Behavior::Fixed { p_taken: p1 },
            Behavior::MultiPhase {
                phases: vec![
                    Phase { len, p_taken: p1 },
                    Phase { len: u64::MAX, p_taken: p2 },
                ],
            },
            Behavior::Drift { start: p1, end: p2, over: len },
            Behavior::Induction { flip_at: len },
            Behavior::PeriodicBurst { base: p1, burst: p2, period: len, burst_len: len / 2, phase: len / 3 },
            Behavior::Grouped { in_phase: p1, out_phase: p2 },
        ];
        for b in behaviors {
            let p = b.p_taken(exec, group_active);
            prop_assert!((0.0..=1.0).contains(&p), "{b:?} gave {p}");
        }
    }

    /// The deterministic RNG's uniform helpers respect their bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.gen_range(n) < n);
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Observing a stream twice through identically configured controllers
    /// yields identical stats (the controller is deterministic).
    #[test]
    fn controller_is_pure(recs in records(1_000), p in params()) {
        let mut a = ReactiveController::builder(p).build().unwrap();
        let mut b = ReactiveController::builder(p).build().unwrap();
        for r in &recs {
            prop_assert_eq!(a.observe(r), b.observe(r));
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
