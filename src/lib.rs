//! # reactive-speculation
//!
//! A production-quality reproduction of *Reactive Techniques for
//! Controlling Software Speculation* (Craig Zilles and Naveen Neelakantam,
//! CGO 2005), built as a Rust workspace:
//!
//! * [`trace`] (`rsc-trace`) — deterministic synthetic branch-trace
//!   workloads modeling the twelve SPEC2000 integer benchmarks;
//! * [`profile`] (`rsc-profile`) — offline profiling baselines:
//!   self-training Pareto curves, cross-input profiles, initial-behavior
//!   training;
//! * [`control`] (`rsc-control`) — the paper's contribution: the
//!   three-state reactive speculation controller with eviction and revisit
//!   arcs, hysteresis, oscillation cap, and latency modeling;
//! * [`mssp`] (`rsc-mssp`) — a timing-simulated Master/Slave Speculative
//!   Parallelization machine on an asymmetric CMP, used to validate the
//!   controller's performance impact.
//!
//! ## Quick start
//!
//! ```
//! use reactive_speculation::control::{engine, ControllerParams};
//! use reactive_speculation::trace::{spec2000, InputId};
//!
//! let pop = spec2000::benchmark("gzip").unwrap().population(100_000);
//! let result = engine::run_population(
//!     ControllerParams::scaled(),
//!     &pop,
//!     InputId::Eval,
//!     100_000,
//!     42,
//! )?;
//! println!(
//!     "correct {:.1}% / incorrect {:.3}%",
//!     result.stats.correct_frac() * 100.0,
//!     result.stats.incorrect_frac() * 100.0,
//! );
//! # Ok::<(), reactive_speculation::control::InvalidParamsError>(())
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use rsc_control as control;
pub use rsc_mssp as mssp;
pub use rsc_profile as profile;
pub use rsc_trace as trace;
