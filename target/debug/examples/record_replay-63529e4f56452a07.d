/root/repo/target/debug/examples/record_replay-63529e4f56452a07.d: examples/record_replay.rs Cargo.toml

/root/repo/target/debug/examples/librecord_replay-63529e4f56452a07.rmeta: examples/record_replay.rs Cargo.toml

examples/record_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
