/root/repo/target/debug/examples/adaptive_jit-01cf1d739291b0cd.d: examples/adaptive_jit.rs

/root/repo/target/debug/examples/adaptive_jit-01cf1d739291b0cd: examples/adaptive_jit.rs

examples/adaptive_jit.rs:
