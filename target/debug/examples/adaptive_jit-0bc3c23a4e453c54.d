/root/repo/target/debug/examples/adaptive_jit-0bc3c23a4e453c54.d: examples/adaptive_jit.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_jit-0bc3c23a4e453c54.rmeta: examples/adaptive_jit.rs Cargo.toml

examples/adaptive_jit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
