/root/repo/target/debug/examples/input_shift-e4509453c435aa57.d: examples/input_shift.rs Cargo.toml

/root/repo/target/debug/examples/libinput_shift-e4509453c435aa57.rmeta: examples/input_shift.rs Cargo.toml

examples/input_shift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
