/root/repo/target/debug/examples/record_replay-ec20c161ddf0109c.d: examples/record_replay.rs

/root/repo/target/debug/examples/record_replay-ec20c161ddf0109c: examples/record_replay.rs

examples/record_replay.rs:
