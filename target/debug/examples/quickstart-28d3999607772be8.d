/root/repo/target/debug/examples/quickstart-28d3999607772be8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-28d3999607772be8: examples/quickstart.rs

examples/quickstart.rs:
