/root/repo/target/debug/examples/value_speculation-2172b05bde9c7950.d: examples/value_speculation.rs Cargo.toml

/root/repo/target/debug/examples/libvalue_speculation-2172b05bde9c7950.rmeta: examples/value_speculation.rs Cargo.toml

examples/value_speculation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
