/root/repo/target/debug/examples/mssp_speedup-09c55e31c234b3ac.d: examples/mssp_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libmssp_speedup-09c55e31c234b3ac.rmeta: examples/mssp_speedup.rs Cargo.toml

examples/mssp_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
