/root/repo/target/debug/examples/value_speculation-640f6e7b9d9e04fb.d: examples/value_speculation.rs

/root/repo/target/debug/examples/value_speculation-640f6e7b9d9e04fb: examples/value_speculation.rs

examples/value_speculation.rs:
