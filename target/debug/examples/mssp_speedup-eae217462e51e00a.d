/root/repo/target/debug/examples/mssp_speedup-eae217462e51e00a.d: examples/mssp_speedup.rs

/root/repo/target/debug/examples/mssp_speedup-eae217462e51e00a: examples/mssp_speedup.rs

examples/mssp_speedup.rs:
