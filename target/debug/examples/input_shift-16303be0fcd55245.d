/root/repo/target/debug/examples/input_shift-16303be0fcd55245.d: examples/input_shift.rs

/root/repo/target/debug/examples/input_shift-16303be0fcd55245: examples/input_shift.rs

examples/input_shift.rs:
