/root/repo/target/debug/examples/quickstart-aa9d7262307749b7.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-aa9d7262307749b7.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
