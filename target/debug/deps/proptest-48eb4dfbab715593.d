/root/repo/target/debug/deps/proptest-48eb4dfbab715593.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-48eb4dfbab715593.rmeta: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs Cargo.toml

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
