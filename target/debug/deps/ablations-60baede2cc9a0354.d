/root/repo/target/debug/deps/ablations-60baede2cc9a0354.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-60baede2cc9a0354.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
