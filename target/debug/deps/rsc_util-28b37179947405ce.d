/root/repo/target/debug/deps/rsc_util-28b37179947405ce.d: crates/util/src/lib.rs crates/util/src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/librsc_util-28b37179947405ce.rmeta: crates/util/src/lib.rs crates/util/src/parallel.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
