/root/repo/target/debug/deps/thread_determinism-101a1f8c67f74377.d: crates/bench/tests/thread_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libthread_determinism-101a1f8c67f74377.rmeta: crates/bench/tests/thread_determinism.rs Cargo.toml

crates/bench/tests/thread_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
