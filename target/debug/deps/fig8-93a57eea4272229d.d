/root/repo/target/debug/deps/fig8-93a57eea4272229d.d: crates/bench/benches/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-93a57eea4272229d.rmeta: crates/bench/benches/fig8.rs Cargo.toml

crates/bench/benches/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
