/root/repo/target/debug/deps/fig7-2f7d055023b83d2b.d: crates/bench/benches/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-2f7d055023b83d2b.rmeta: crates/bench/benches/fig7.rs Cargo.toml

crates/bench/benches/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
