/root/repo/target/debug/deps/reactive_speculation-288997bf616afa45.d: src/lib.rs

/root/repo/target/debug/deps/reactive_speculation-288997bf616afa45: src/lib.rs

src/lib.rs:
