/root/repo/target/debug/deps/rsc_conformance-68547f4946d18d3e.d: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

/root/repo/target/debug/deps/librsc_conformance-68547f4946d18d3e.rlib: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

/root/repo/target/debug/deps/librsc_conformance-68547f4946d18d3e.rmeta: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

crates/conformance/src/lib.rs:
crates/conformance/src/artifact.rs:
crates/conformance/src/campaign.rs:
crates/conformance/src/differ.rs:
crates/conformance/src/fault.rs:
crates/conformance/src/json.rs:
crates/conformance/src/shrink.rs:
