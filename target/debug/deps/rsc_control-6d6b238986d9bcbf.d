/root/repo/target/debug/deps/rsc_control-6d6b238986d9bcbf.d: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs Cargo.toml

/root/repo/target/debug/deps/librsc_control-6d6b238986d9bcbf.rmeta: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis/mod.rs:
crates/core/src/analysis/blocks.rs:
crates/core/src/analysis/intervals.rs:
crates/core/src/analysis/transition.rs:
crates/core/src/confidence.rs:
crates/core/src/controller.rs:
crates/core/src/counter.rs:
crates/core/src/engine.rs:
crates/core/src/params.rs:
crates/core/src/reference.rs:
crates/core/src/stats.rs:
crates/core/src/translog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
