/root/repo/target/debug/deps/fig5-10fe128b232cd3f8.d: crates/bench/benches/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-10fe128b232cd3f8.rmeta: crates/bench/benches/fig5.rs Cargo.toml

crates/bench/benches/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
