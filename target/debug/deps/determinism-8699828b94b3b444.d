/root/repo/target/debug/deps/determinism-8699828b94b3b444.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-8699828b94b3b444.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
