/root/repo/target/debug/deps/repro-9f85cf9ce3f7c540.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librepro-9f85cf9ce3f7c540.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
