/root/repo/target/debug/deps/rsc_util-6de95bad935ac76f.d: crates/util/src/lib.rs crates/util/src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/librsc_util-6de95bad935ac76f.rmeta: crates/util/src/lib.rs crates/util/src/parallel.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
