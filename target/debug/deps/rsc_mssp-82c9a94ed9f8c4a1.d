/root/repo/target/debug/deps/rsc_mssp-82c9a94ed9f8c4a1.d: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/librsc_mssp-82c9a94ed9f8c4a1.rmeta: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs Cargo.toml

crates/mssp/src/lib.rs:
crates/mssp/src/cache.rs:
crates/mssp/src/config.rs:
crates/mssp/src/distill.rs:
crates/mssp/src/machine.rs:
crates/mssp/src/predictor.rs:
crates/mssp/src/program.rs:
crates/mssp/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
