/root/repo/target/debug/deps/proptest-ac69be931f587929.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-ac69be931f587929: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
