/root/repo/target/debug/deps/substrates-5d3118e00948a09a.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-5d3118e00948a09a.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
