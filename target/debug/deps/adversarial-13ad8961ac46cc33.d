/root/repo/target/debug/deps/adversarial-13ad8961ac46cc33.d: crates/core/tests/adversarial.rs Cargo.toml

/root/repo/target/debug/deps/libadversarial-13ad8961ac46cc33.rmeta: crates/core/tests/adversarial.rs Cargo.toml

crates/core/tests/adversarial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
