/root/repo/target/debug/deps/fig3-8fb3b915a1383a31.d: crates/bench/benches/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-8fb3b915a1383a31.rmeta: crates/bench/benches/fig3.rs Cargo.toml

crates/bench/benches/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
