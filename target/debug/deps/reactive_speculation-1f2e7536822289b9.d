/root/repo/target/debug/deps/reactive_speculation-1f2e7536822289b9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreactive_speculation-1f2e7536822289b9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
