/root/repo/target/debug/deps/reactive_speculation-aa9a1caa4c302781.d: src/lib.rs

/root/repo/target/debug/deps/libreactive_speculation-aa9a1caa4c302781.rlib: src/lib.rs

/root/repo/target/debug/deps/libreactive_speculation-aa9a1caa4c302781.rmeta: src/lib.rs

src/lib.rs:
