/root/repo/target/debug/deps/repro-31481061907ecf53.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-31481061907ecf53: crates/bench/src/main.rs

crates/bench/src/main.rs:
