/root/repo/target/debug/deps/rsc_mssp-fd662a7e8e5c09b5.d: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

/root/repo/target/debug/deps/rsc_mssp-fd662a7e8e5c09b5: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

crates/mssp/src/lib.rs:
crates/mssp/src/cache.rs:
crates/mssp/src/config.rs:
crates/mssp/src/distill.rs:
crates/mssp/src/machine.rs:
crates/mssp/src/predictor.rs:
crates/mssp/src/program.rs:
crates/mssp/src/timing.rs:
