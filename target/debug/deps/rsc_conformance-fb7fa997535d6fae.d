/root/repo/target/debug/deps/rsc_conformance-fb7fa997535d6fae.d: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

/root/repo/target/debug/deps/rsc_conformance-fb7fa997535d6fae: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

crates/conformance/src/lib.rs:
crates/conformance/src/artifact.rs:
crates/conformance/src/campaign.rs:
crates/conformance/src/differ.rs:
crates/conformance/src/fault.rs:
crates/conformance/src/json.rs:
crates/conformance/src/shrink.rs:
