/root/repo/target/debug/deps/thread_determinism-98de20ae459b1d64.d: crates/bench/tests/thread_determinism.rs

/root/repo/target/debug/deps/thread_determinism-98de20ae459b1d64: crates/bench/tests/thread_determinism.rs

crates/bench/tests/thread_determinism.rs:
