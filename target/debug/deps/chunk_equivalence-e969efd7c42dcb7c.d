/root/repo/target/debug/deps/chunk_equivalence-e969efd7c42dcb7c.d: tests/chunk_equivalence.rs

/root/repo/target/debug/deps/chunk_equivalence-e969efd7c42dcb7c: tests/chunk_equivalence.rs

tests/chunk_equivalence.rs:
