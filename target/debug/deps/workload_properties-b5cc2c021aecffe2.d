/root/repo/target/debug/deps/workload_properties-b5cc2c021aecffe2.d: crates/trace/tests/workload_properties.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_properties-b5cc2c021aecffe2.rmeta: crates/trace/tests/workload_properties.rs Cargo.toml

crates/trace/tests/workload_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
