/root/repo/target/debug/deps/rsc_mssp-9d5b091264e05ab0.d: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/librsc_mssp-9d5b091264e05ab0.rmeta: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs Cargo.toml

crates/mssp/src/lib.rs:
crates/mssp/src/cache.rs:
crates/mssp/src/config.rs:
crates/mssp/src/distill.rs:
crates/mssp/src/machine.rs:
crates/mssp/src/predictor.rs:
crates/mssp/src/program.rs:
crates/mssp/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
