/root/repo/target/debug/deps/proptest-692c911273392a3d.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-692c911273392a3d.rmeta: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs Cargo.toml

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
