/root/repo/target/debug/deps/rsc_profile-a51f2b7a3072bca6.d: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs Cargo.toml

/root/repo/target/debug/deps/librsc_profile-a51f2b7a3072bca6.rmeta: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs Cargo.toml

crates/profile/src/lib.rs:
crates/profile/src/evaluate.rs:
crates/profile/src/initial.rs:
crates/profile/src/offline.rs:
crates/profile/src/pareto.rs:
crates/profile/src/profile.rs:
crates/profile/src/select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
