/root/repo/target/debug/deps/fig9-b5f8ec7c0bd6109a.d: crates/bench/benches/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-b5f8ec7c0bd6109a.rmeta: crates/bench/benches/fig9.rs Cargo.toml

crates/bench/benches/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
