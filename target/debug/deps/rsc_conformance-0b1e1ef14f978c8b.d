/root/repo/target/debug/deps/rsc_conformance-0b1e1ef14f978c8b.d: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs Cargo.toml

/root/repo/target/debug/deps/librsc_conformance-0b1e1ef14f978c8b.rmeta: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs Cargo.toml

crates/conformance/src/lib.rs:
crates/conformance/src/artifact.rs:
crates/conformance/src/campaign.rs:
crates/conformance/src/differ.rs:
crates/conformance/src/fault.rs:
crates/conformance/src/json.rs:
crates/conformance/src/shrink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
