/root/repo/target/debug/deps/paper_claims-a6e621bee7f156fc.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-a6e621bee7f156fc: tests/paper_claims.rs

tests/paper_claims.rs:
