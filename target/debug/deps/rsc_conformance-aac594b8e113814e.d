/root/repo/target/debug/deps/rsc_conformance-aac594b8e113814e.d: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs Cargo.toml

/root/repo/target/debug/deps/librsc_conformance-aac594b8e113814e.rmeta: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs Cargo.toml

crates/conformance/src/lib.rs:
crates/conformance/src/artifact.rs:
crates/conformance/src/campaign.rs:
crates/conformance/src/differ.rs:
crates/conformance/src/fault.rs:
crates/conformance/src/json.rs:
crates/conformance/src/shrink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
