/root/repo/target/debug/deps/rsc_control-cbfc8fb7a00aecfa.d: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

/root/repo/target/debug/deps/rsc_control-cbfc8fb7a00aecfa: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

crates/core/src/lib.rs:
crates/core/src/analysis/mod.rs:
crates/core/src/analysis/blocks.rs:
crates/core/src/analysis/intervals.rs:
crates/core/src/analysis/transition.rs:
crates/core/src/confidence.rs:
crates/core/src/controller.rs:
crates/core/src/counter.rs:
crates/core/src/engine.rs:
crates/core/src/params.rs:
crates/core/src/reference.rs:
crates/core/src/stats.rs:
crates/core/src/translog.rs:
