/root/repo/target/debug/deps/fig6-b29852696684da99.d: crates/bench/benches/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-b29852696684da99.rmeta: crates/bench/benches/fig6.rs Cargo.toml

crates/bench/benches/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
