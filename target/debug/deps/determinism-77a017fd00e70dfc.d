/root/repo/target/debug/deps/determinism-77a017fd00e70dfc.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-77a017fd00e70dfc: tests/determinism.rs

tests/determinism.rs:
