/root/repo/target/debug/deps/machine_properties-11eb70d5d2ce53c2.d: crates/mssp/tests/machine_properties.rs

/root/repo/target/debug/deps/machine_properties-11eb70d5d2ce53c2: crates/mssp/tests/machine_properties.rs

crates/mssp/tests/machine_properties.rs:
