/root/repo/target/debug/deps/rsc_profile-7d080922d6962f59.d: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

/root/repo/target/debug/deps/librsc_profile-7d080922d6962f59.rlib: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

/root/repo/target/debug/deps/librsc_profile-7d080922d6962f59.rmeta: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

crates/profile/src/lib.rs:
crates/profile/src/evaluate.rs:
crates/profile/src/initial.rs:
crates/profile/src/offline.rs:
crates/profile/src/pareto.rs:
crates/profile/src/profile.rs:
crates/profile/src/select.rs:
