/root/repo/target/debug/deps/rsc_trace-ffd30231aacc2437.d: crates/trace/src/lib.rs crates/trace/src/adversary.rs crates/trace/src/alias.rs crates/trace/src/behavior.rs crates/trace/src/branch.rs crates/trace/src/group.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/population.rs crates/trace/src/record.rs crates/trace/src/rng.rs crates/trace/src/spec2000.rs crates/trace/src/stats.rs crates/trace/src/value.rs crates/trace/src/workload.rs crates/trace/src/zipf.rs

/root/repo/target/debug/deps/librsc_trace-ffd30231aacc2437.rlib: crates/trace/src/lib.rs crates/trace/src/adversary.rs crates/trace/src/alias.rs crates/trace/src/behavior.rs crates/trace/src/branch.rs crates/trace/src/group.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/population.rs crates/trace/src/record.rs crates/trace/src/rng.rs crates/trace/src/spec2000.rs crates/trace/src/stats.rs crates/trace/src/value.rs crates/trace/src/workload.rs crates/trace/src/zipf.rs

/root/repo/target/debug/deps/librsc_trace-ffd30231aacc2437.rmeta: crates/trace/src/lib.rs crates/trace/src/adversary.rs crates/trace/src/alias.rs crates/trace/src/behavior.rs crates/trace/src/branch.rs crates/trace/src/group.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/population.rs crates/trace/src/record.rs crates/trace/src/rng.rs crates/trace/src/spec2000.rs crates/trace/src/stats.rs crates/trace/src/value.rs crates/trace/src/workload.rs crates/trace/src/zipf.rs

crates/trace/src/lib.rs:
crates/trace/src/adversary.rs:
crates/trace/src/alias.rs:
crates/trace/src/behavior.rs:
crates/trace/src/branch.rs:
crates/trace/src/group.rs:
crates/trace/src/ids.rs:
crates/trace/src/io.rs:
crates/trace/src/model.rs:
crates/trace/src/population.rs:
crates/trace/src/record.rs:
crates/trace/src/rng.rs:
crates/trace/src/spec2000.rs:
crates/trace/src/stats.rs:
crates/trace/src/value.rs:
crates/trace/src/workload.rs:
crates/trace/src/zipf.rs:
