/root/repo/target/debug/deps/repro-dfd30dc8fe19e26a.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librepro-dfd30dc8fe19e26a.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
