/root/repo/target/debug/deps/rsc_bench-1b19a50ab75adc09.d: crates/bench/src/lib.rs crates/bench/src/conformance_cli.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/clustering.rs crates/bench/src/experiments/confidence.rs crates/bench/src/experiments/dynamo.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/oscillation.rs crates/bench/src/experiments/perf.rs crates/bench/src/experiments/regions.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/experiments/variance.rs crates/bench/src/export.rs crates/bench/src/options.rs crates/bench/src/parallel.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/librsc_bench-1b19a50ab75adc09.rmeta: crates/bench/src/lib.rs crates/bench/src/conformance_cli.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/clustering.rs crates/bench/src/experiments/confidence.rs crates/bench/src/experiments/dynamo.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/oscillation.rs crates/bench/src/experiments/perf.rs crates/bench/src/experiments/regions.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/experiments/variance.rs crates/bench/src/export.rs crates/bench/src/options.rs crates/bench/src/parallel.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/conformance_cli.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/clustering.rs:
crates/bench/src/experiments/confidence.rs:
crates/bench/src/experiments/dynamo.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/oscillation.rs:
crates/bench/src/experiments/perf.rs:
crates/bench/src/experiments/regions.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/table5.rs:
crates/bench/src/experiments/variance.rs:
crates/bench/src/export.rs:
crates/bench/src/options.rs:
crates/bench/src/parallel.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
