/root/repo/target/debug/deps/acceptance-07998cdad1012f62.d: crates/conformance/tests/acceptance.rs

/root/repo/target/debug/deps/acceptance-07998cdad1012f62: crates/conformance/tests/acceptance.rs

crates/conformance/tests/acceptance.rs:
