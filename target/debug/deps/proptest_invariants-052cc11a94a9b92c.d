/root/repo/target/debug/deps/proptest_invariants-052cc11a94a9b92c.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-052cc11a94a9b92c: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
