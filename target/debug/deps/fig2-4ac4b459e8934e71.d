/root/repo/target/debug/deps/fig2-4ac4b459e8934e71.d: crates/bench/benches/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-4ac4b459e8934e71.rmeta: crates/bench/benches/fig2.rs Cargo.toml

crates/bench/benches/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
