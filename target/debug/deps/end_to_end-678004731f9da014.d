/root/repo/target/debug/deps/end_to_end-678004731f9da014.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-678004731f9da014: tests/end_to_end.rs

tests/end_to_end.rs:
