/root/repo/target/debug/deps/workload_properties-9966c93c0de2b119.d: crates/trace/tests/workload_properties.rs

/root/repo/target/debug/deps/workload_properties-9966c93c0de2b119: crates/trace/tests/workload_properties.rs

crates/trace/tests/workload_properties.rs:
