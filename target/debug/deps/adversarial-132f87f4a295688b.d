/root/repo/target/debug/deps/adversarial-132f87f4a295688b.d: crates/core/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-132f87f4a295688b: crates/core/tests/adversarial.rs

crates/core/tests/adversarial.rs:
