/root/repo/target/debug/deps/proptest_invariants-31184ae681986b66.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-31184ae681986b66.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
