/root/repo/target/debug/deps/proptest-ef946e19070c0aa2.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-ef946e19070c0aa2.rlib: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-ef946e19070c0aa2.rmeta: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
