/root/repo/target/debug/deps/rsc_util-586af2b579978489.d: crates/util/src/lib.rs crates/util/src/parallel.rs

/root/repo/target/debug/deps/rsc_util-586af2b579978489: crates/util/src/lib.rs crates/util/src/parallel.rs

crates/util/src/lib.rs:
crates/util/src/parallel.rs:
