/root/repo/target/debug/deps/rsc_control-807e57070506078d.d: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

/root/repo/target/debug/deps/librsc_control-807e57070506078d.rlib: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

/root/repo/target/debug/deps/librsc_control-807e57070506078d.rmeta: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

crates/core/src/lib.rs:
crates/core/src/analysis/mod.rs:
crates/core/src/analysis/blocks.rs:
crates/core/src/analysis/intervals.rs:
crates/core/src/analysis/transition.rs:
crates/core/src/confidence.rs:
crates/core/src/controller.rs:
crates/core/src/counter.rs:
crates/core/src/engine.rs:
crates/core/src/params.rs:
crates/core/src/reference.rs:
crates/core/src/stats.rs:
crates/core/src/translog.rs:
