/root/repo/target/debug/deps/rsc_mssp-2564a93dc6a0ee0f.d: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

/root/repo/target/debug/deps/librsc_mssp-2564a93dc6a0ee0f.rlib: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

/root/repo/target/debug/deps/librsc_mssp-2564a93dc6a0ee0f.rmeta: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

crates/mssp/src/lib.rs:
crates/mssp/src/cache.rs:
crates/mssp/src/config.rs:
crates/mssp/src/distill.rs:
crates/mssp/src/machine.rs:
crates/mssp/src/predictor.rs:
crates/mssp/src/program.rs:
crates/mssp/src/timing.rs:
