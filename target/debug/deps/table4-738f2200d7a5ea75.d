/root/repo/target/debug/deps/table4-738f2200d7a5ea75.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-738f2200d7a5ea75.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
