/root/repo/target/debug/deps/reactive_speculation-ad741d23a7f7d6e5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreactive_speculation-ad741d23a7f7d6e5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
