/root/repo/target/debug/deps/paper_claims-3dc6b42ffb1fa866.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-3dc6b42ffb1fa866.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
