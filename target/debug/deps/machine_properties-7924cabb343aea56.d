/root/repo/target/debug/deps/machine_properties-7924cabb343aea56.d: crates/mssp/tests/machine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmachine_properties-7924cabb343aea56.rmeta: crates/mssp/tests/machine_properties.rs Cargo.toml

crates/mssp/tests/machine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
