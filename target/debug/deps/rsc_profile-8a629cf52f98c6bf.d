/root/repo/target/debug/deps/rsc_profile-8a629cf52f98c6bf.d: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

/root/repo/target/debug/deps/rsc_profile-8a629cf52f98c6bf: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

crates/profile/src/lib.rs:
crates/profile/src/evaluate.rs:
crates/profile/src/initial.rs:
crates/profile/src/offline.rs:
crates/profile/src/pareto.rs:
crates/profile/src/profile.rs:
crates/profile/src/select.rs:
