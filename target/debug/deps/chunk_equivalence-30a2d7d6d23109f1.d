/root/repo/target/debug/deps/chunk_equivalence-30a2d7d6d23109f1.d: tests/chunk_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libchunk_equivalence-30a2d7d6d23109f1.rmeta: tests/chunk_equivalence.rs Cargo.toml

tests/chunk_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
