/root/repo/target/debug/deps/acceptance-af0810b37432e77a.d: crates/conformance/tests/acceptance.rs Cargo.toml

/root/repo/target/debug/deps/libacceptance-af0810b37432e77a.rmeta: crates/conformance/tests/acceptance.rs Cargo.toml

crates/conformance/tests/acceptance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
