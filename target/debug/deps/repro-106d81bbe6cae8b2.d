/root/repo/target/debug/deps/repro-106d81bbe6cae8b2.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-106d81bbe6cae8b2: crates/bench/src/main.rs

crates/bench/src/main.rs:
