/root/repo/target/debug/deps/substrates-8135430c351fc7fa.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-8135430c351fc7fa.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
