/root/repo/target/debug/deps/rsc_util-3b33583e663ce2cf.d: crates/util/src/lib.rs crates/util/src/parallel.rs

/root/repo/target/debug/deps/librsc_util-3b33583e663ce2cf.rlib: crates/util/src/lib.rs crates/util/src/parallel.rs

/root/repo/target/debug/deps/librsc_util-3b33583e663ce2cf.rmeta: crates/util/src/lib.rs crates/util/src/parallel.rs

crates/util/src/lib.rs:
crates/util/src/parallel.rs:
