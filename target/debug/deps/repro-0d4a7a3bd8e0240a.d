/root/repo/target/debug/deps/repro-0d4a7a3bd8e0240a.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-0d4a7a3bd8e0240a: crates/bench/src/main.rs

crates/bench/src/main.rs:
