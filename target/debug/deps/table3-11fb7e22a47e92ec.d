/root/repo/target/debug/deps/table3-11fb7e22a47e92ec.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-11fb7e22a47e92ec.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
