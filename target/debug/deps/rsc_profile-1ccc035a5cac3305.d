/root/repo/target/debug/deps/rsc_profile-1ccc035a5cac3305.d: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs Cargo.toml

/root/repo/target/debug/deps/librsc_profile-1ccc035a5cac3305.rmeta: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs Cargo.toml

crates/profile/src/lib.rs:
crates/profile/src/evaluate.rs:
crates/profile/src/initial.rs:
crates/profile/src/offline.rs:
crates/profile/src/pareto.rs:
crates/profile/src/profile.rs:
crates/profile/src/select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
