/root/repo/target/release/examples/adaptive_jit-42d84dbdb45fd54a.d: examples/adaptive_jit.rs

/root/repo/target/release/examples/adaptive_jit-42d84dbdb45fd54a: examples/adaptive_jit.rs

examples/adaptive_jit.rs:
