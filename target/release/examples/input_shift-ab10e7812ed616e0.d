/root/repo/target/release/examples/input_shift-ab10e7812ed616e0.d: examples/input_shift.rs

/root/repo/target/release/examples/input_shift-ab10e7812ed616e0: examples/input_shift.rs

examples/input_shift.rs:
