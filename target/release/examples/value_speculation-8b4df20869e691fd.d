/root/repo/target/release/examples/value_speculation-8b4df20869e691fd.d: examples/value_speculation.rs

/root/repo/target/release/examples/value_speculation-8b4df20869e691fd: examples/value_speculation.rs

examples/value_speculation.rs:
