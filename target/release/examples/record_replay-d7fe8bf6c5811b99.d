/root/repo/target/release/examples/record_replay-d7fe8bf6c5811b99.d: examples/record_replay.rs

/root/repo/target/release/examples/record_replay-d7fe8bf6c5811b99: examples/record_replay.rs

examples/record_replay.rs:
