/root/repo/target/release/examples/mssp_speedup-ac5cc14bebf2c63a.d: examples/mssp_speedup.rs

/root/repo/target/release/examples/mssp_speedup-ac5cc14bebf2c63a: examples/mssp_speedup.rs

examples/mssp_speedup.rs:
