/root/repo/target/release/examples/quickstart-1892f8e33e4a650e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1892f8e33e4a650e: examples/quickstart.rs

examples/quickstart.rs:
