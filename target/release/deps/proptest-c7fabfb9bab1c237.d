/root/repo/target/release/deps/proptest-c7fabfb9bab1c237.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c7fabfb9bab1c237.rlib: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c7fabfb9bab1c237.rmeta: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
