/root/repo/target/release/deps/rsc_mssp-ba61fdca4688ac3e.d: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

/root/repo/target/release/deps/librsc_mssp-ba61fdca4688ac3e.rlib: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

/root/repo/target/release/deps/librsc_mssp-ba61fdca4688ac3e.rmeta: crates/mssp/src/lib.rs crates/mssp/src/cache.rs crates/mssp/src/config.rs crates/mssp/src/distill.rs crates/mssp/src/machine.rs crates/mssp/src/predictor.rs crates/mssp/src/program.rs crates/mssp/src/timing.rs

crates/mssp/src/lib.rs:
crates/mssp/src/cache.rs:
crates/mssp/src/config.rs:
crates/mssp/src/distill.rs:
crates/mssp/src/machine.rs:
crates/mssp/src/predictor.rs:
crates/mssp/src/program.rs:
crates/mssp/src/timing.rs:
