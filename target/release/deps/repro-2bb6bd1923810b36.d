/root/repo/target/release/deps/repro-2bb6bd1923810b36.d: crates/bench/src/main.rs

/root/repo/target/release/deps/repro-2bb6bd1923810b36: crates/bench/src/main.rs

crates/bench/src/main.rs:
