/root/repo/target/release/deps/reactive_speculation-3f08fa49e3df8810.d: src/lib.rs

/root/repo/target/release/deps/reactive_speculation-3f08fa49e3df8810: src/lib.rs

src/lib.rs:
