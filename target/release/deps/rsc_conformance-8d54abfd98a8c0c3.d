/root/repo/target/release/deps/rsc_conformance-8d54abfd98a8c0c3.d: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

/root/repo/target/release/deps/librsc_conformance-8d54abfd98a8c0c3.rlib: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

/root/repo/target/release/deps/librsc_conformance-8d54abfd98a8c0c3.rmeta: crates/conformance/src/lib.rs crates/conformance/src/artifact.rs crates/conformance/src/campaign.rs crates/conformance/src/differ.rs crates/conformance/src/fault.rs crates/conformance/src/json.rs crates/conformance/src/shrink.rs

crates/conformance/src/lib.rs:
crates/conformance/src/artifact.rs:
crates/conformance/src/campaign.rs:
crates/conformance/src/differ.rs:
crates/conformance/src/fault.rs:
crates/conformance/src/json.rs:
crates/conformance/src/shrink.rs:
