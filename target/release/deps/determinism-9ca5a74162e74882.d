/root/repo/target/release/deps/determinism-9ca5a74162e74882.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-9ca5a74162e74882: tests/determinism.rs

tests/determinism.rs:
