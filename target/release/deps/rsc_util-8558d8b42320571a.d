/root/repo/target/release/deps/rsc_util-8558d8b42320571a.d: crates/util/src/lib.rs crates/util/src/parallel.rs

/root/repo/target/release/deps/librsc_util-8558d8b42320571a.rlib: crates/util/src/lib.rs crates/util/src/parallel.rs

/root/repo/target/release/deps/librsc_util-8558d8b42320571a.rmeta: crates/util/src/lib.rs crates/util/src/parallel.rs

crates/util/src/lib.rs:
crates/util/src/parallel.rs:
