/root/repo/target/release/deps/rsc_control-887781f7c9e59743.d: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

/root/repo/target/release/deps/librsc_control-887781f7c9e59743.rlib: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

/root/repo/target/release/deps/librsc_control-887781f7c9e59743.rmeta: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/blocks.rs crates/core/src/analysis/intervals.rs crates/core/src/analysis/transition.rs crates/core/src/confidence.rs crates/core/src/controller.rs crates/core/src/counter.rs crates/core/src/engine.rs crates/core/src/params.rs crates/core/src/reference.rs crates/core/src/stats.rs crates/core/src/translog.rs

crates/core/src/lib.rs:
crates/core/src/analysis/mod.rs:
crates/core/src/analysis/blocks.rs:
crates/core/src/analysis/intervals.rs:
crates/core/src/analysis/transition.rs:
crates/core/src/confidence.rs:
crates/core/src/controller.rs:
crates/core/src/counter.rs:
crates/core/src/engine.rs:
crates/core/src/params.rs:
crates/core/src/reference.rs:
crates/core/src/stats.rs:
crates/core/src/translog.rs:
