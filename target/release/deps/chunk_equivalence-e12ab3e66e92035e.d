/root/repo/target/release/deps/chunk_equivalence-e12ab3e66e92035e.d: tests/chunk_equivalence.rs

/root/repo/target/release/deps/chunk_equivalence-e12ab3e66e92035e: tests/chunk_equivalence.rs

tests/chunk_equivalence.rs:
