/root/repo/target/release/deps/reactive_speculation-66f4930fd8767582.d: src/lib.rs

/root/repo/target/release/deps/libreactive_speculation-66f4930fd8767582.rlib: src/lib.rs

/root/repo/target/release/deps/libreactive_speculation-66f4930fd8767582.rmeta: src/lib.rs

src/lib.rs:
