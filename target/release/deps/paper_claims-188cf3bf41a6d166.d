/root/repo/target/release/deps/paper_claims-188cf3bf41a6d166.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-188cf3bf41a6d166: tests/paper_claims.rs

tests/paper_claims.rs:
