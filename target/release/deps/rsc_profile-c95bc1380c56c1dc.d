/root/repo/target/release/deps/rsc_profile-c95bc1380c56c1dc.d: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

/root/repo/target/release/deps/librsc_profile-c95bc1380c56c1dc.rlib: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

/root/repo/target/release/deps/librsc_profile-c95bc1380c56c1dc.rmeta: crates/profile/src/lib.rs crates/profile/src/evaluate.rs crates/profile/src/initial.rs crates/profile/src/offline.rs crates/profile/src/pareto.rs crates/profile/src/profile.rs crates/profile/src/select.rs

crates/profile/src/lib.rs:
crates/profile/src/evaluate.rs:
crates/profile/src/initial.rs:
crates/profile/src/offline.rs:
crates/profile/src/pareto.rs:
crates/profile/src/profile.rs:
crates/profile/src/select.rs:
