/root/repo/target/release/deps/end_to_end-87324d07a2c7dbcb.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-87324d07a2c7dbcb: tests/end_to_end.rs

tests/end_to_end.rs:
