/root/repo/target/release/deps/proptest_invariants-509d85cb7aa2de4e.d: tests/proptest_invariants.rs

/root/repo/target/release/deps/proptest_invariants-509d85cb7aa2de4e: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
