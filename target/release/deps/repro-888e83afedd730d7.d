/root/repo/target/release/deps/repro-888e83afedd730d7.d: crates/bench/src/main.rs

/root/repo/target/release/deps/repro-888e83afedd730d7: crates/bench/src/main.rs

crates/bench/src/main.rs:
