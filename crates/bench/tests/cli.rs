//! End-to-end checks of the `repro` binary's top-level argument
//! handling: bad or missing flag values must produce a usage message on
//! stderr and exit status 2, never a panic.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn assert_usage_error(out: &Output, needle: &str) {
    assert_eq!(out.status.code(), Some(2), "exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(needle),
        "stderr should mention {needle:?}: {err}"
    );
    assert!(
        err.contains("usage: repro"),
        "stderr should print usage: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "usage errors must not panic: {err}"
    );
}

#[test]
fn non_integer_flag_value_is_a_usage_error() {
    let out = repro(&["perf", "--events", "lots"]);
    assert_usage_error(&out, "--events");
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    let out = repro(&["perf", "--shards"]);
    assert_usage_error(&out, "--shards needs a value");
}

#[test]
fn zero_shards_is_a_usage_error() {
    let out = repro(&["perf", "--shards", "0"]);
    assert_usage_error(&out, "--shards must be at least 1");
}

#[test]
fn unknown_option_is_a_usage_error() {
    let out = repro(&["--bogus"]);
    assert_usage_error(&out, "unknown option: --bogus");
}

#[test]
fn unknown_experiment_still_exits_2() {
    let out = repro(&["definitely-not-an-experiment"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
}

#[test]
fn fuzz_non_integer_iters_is_a_usage_error() {
    let out = repro(&["fuzz", "--iters", "lots"]);
    assert_usage_error(&out, "--iters needs an integer");
}

#[test]
fn fuzz_missing_flag_value_is_a_usage_error() {
    let out = repro(&["fuzz", "--corpus-dir"]);
    assert_usage_error(&out, "--corpus-dir needs a value");
}

#[test]
fn fuzz_zero_iters_is_a_usage_error() {
    let out = repro(&["fuzz", "--iters", "0"]);
    assert_usage_error(&out, "--iters must be at least 1");
}

#[test]
fn fuzz_unknown_option_is_a_usage_error() {
    let out = repro(&["fuzz", "--bogus"]);
    assert_usage_error(&out, "unknown fuzz option: --bogus");
}

#[test]
fn fuzz_smoke_run_writes_corpus_artifacts_and_exits_zero() {
    let dir = std::env::temp_dir().join("rsc_repro_fuzz_e2e");
    std::fs::remove_dir_all(&dir).ok();
    let out = repro(&[
        "fuzz",
        "--iters",
        "10",
        "--seed",
        "42",
        "--events",
        "600",
        "--analytic-check",
        "--corpus-dir",
        dir.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("coverage: baseline"), "{stdout}");
    assert!(dir.join("report.json").exists());
    assert!(dir.join("entry-000.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}
