//! End-to-end checks of the `repro` binary's top-level argument
//! handling: bad or missing flag values must produce a usage message on
//! stderr and exit status 2, never a panic.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn assert_usage_error(out: &Output, needle: &str) {
    assert_eq!(out.status.code(), Some(2), "exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(needle),
        "stderr should mention {needle:?}: {err}"
    );
    assert!(
        err.contains("usage: repro"),
        "stderr should print usage: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "usage errors must not panic: {err}"
    );
}

#[test]
fn non_integer_flag_value_is_a_usage_error() {
    let out = repro(&["perf", "--events", "lots"]);
    assert_usage_error(&out, "--events");
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    let out = repro(&["perf", "--shards"]);
    assert_usage_error(&out, "--shards needs a value");
}

#[test]
fn zero_shards_is_a_usage_error() {
    let out = repro(&["perf", "--shards", "0"]);
    assert_usage_error(&out, "--shards must be at least 1");
}

#[test]
fn unknown_option_is_a_usage_error() {
    let out = repro(&["--bogus"]);
    assert_usage_error(&out, "unknown option: --bogus");
}

#[test]
fn unknown_experiment_still_exits_2() {
    let out = repro(&["definitely-not-an-experiment"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
}

#[test]
fn fuzz_non_integer_iters_is_a_usage_error() {
    let out = repro(&["fuzz", "--iters", "lots"]);
    assert_usage_error(&out, "--iters needs an integer");
}

#[test]
fn fuzz_missing_flag_value_is_a_usage_error() {
    let out = repro(&["fuzz", "--corpus-dir"]);
    assert_usage_error(&out, "--corpus-dir needs a value");
}

#[test]
fn fuzz_zero_iters_is_a_usage_error() {
    let out = repro(&["fuzz", "--iters", "0"]);
    assert_usage_error(&out, "--iters must be at least 1");
}

#[test]
fn fuzz_unknown_option_is_a_usage_error() {
    let out = repro(&["fuzz", "--bogus"]);
    assert_usage_error(&out, "unknown fuzz option: --bogus");
}

#[test]
fn resilience_non_integer_events_is_a_usage_error() {
    let out = repro(&["resilience", "--events", "lots"]);
    assert_usage_error(&out, "--events needs an integer");
}

#[test]
fn resilience_missing_flag_value_is_a_usage_error() {
    let out = repro(&["resilience", "--out"]);
    assert_usage_error(&out, "--out needs a value");
}

#[test]
fn resilience_unknown_option_is_a_usage_error() {
    let out = repro(&["resilience", "--bogus"]);
    assert_usage_error(&out, "unknown resilience option: --bogus");
}

#[test]
fn observe_non_integer_seed_is_a_usage_error() {
    let out = repro(&["observe", "--seed", "lots"]);
    assert_usage_error(&out, "--seed needs an integer");
}

#[test]
fn observe_missing_flag_value_is_a_usage_error() {
    let out = repro(&["observe", "--metrics-out"]);
    assert_usage_error(&out, "--metrics-out needs a value");
}

#[test]
fn observe_unknown_benchmark_is_a_usage_error() {
    let out = repro(&["observe", "--bench", "nonesuch"]);
    assert_usage_error(&out, "unknown benchmark");
}

#[test]
fn observe_unknown_option_is_a_usage_error() {
    let out = repro(&["observe", "--bogus"]);
    assert_usage_error(&out, "unknown observe option: --bogus");
}

#[test]
fn serve_zero_queue_depth_is_a_usage_error() {
    let out = repro(&["serve", "--queue-depth", "0"]);
    assert_usage_error(&out, "--queue-depth must be at least 1");
}

#[test]
fn serve_unknown_chaos_profile_is_a_usage_error() {
    let out = repro(&["serve", "--chaos", "apocalyptic"]);
    assert_usage_error(&out, "apocalyptic");
}

#[test]
fn serve_conflicting_endpoints_are_a_usage_error() {
    let out = repro(&["serve", "--addr", "a:1", "--unix", "s.sock"]);
    assert_usage_error(&out, "--addr and --unix are mutually exclusive");
}

#[test]
fn serve_unknown_option_is_a_usage_error() {
    let out = repro(&["serve", "--bogus"]);
    assert_usage_error(&out, "unknown serve option: --bogus");
}

#[test]
fn load_zero_clients_is_a_usage_error() {
    let out = repro(&["load", "--clients", "0"]);
    assert_usage_error(&out, "--clients must be at least 1");
}

#[test]
fn load_missing_flag_value_is_a_usage_error() {
    let out = repro(&["load", "--seed"]);
    assert_usage_error(&out, "--seed needs a value");
}

#[test]
fn load_unknown_option_is_a_usage_error() {
    let out = repro(&["load", "--bogus"]);
    assert_usage_error(&out, "unknown load option: --bogus");
}

/// Kills the serve child if the test panics before its clean exit.
struct ServeGuard(std::process::Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_load_drain_roundtrip_over_the_real_binary() {
    let dir = std::env::temp_dir().join("rsc_repro_serve_e2e");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let port_file = dir.join("port");
    let bench_json = dir.join("BENCH_serve.json");
    let state = dir.join("state");

    let child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--checkpoint-dir",
            state.to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");
    let mut guard = ServeGuard(child);

    // The daemon writes the bound address atomically once it listens.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            break addr;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "serve never wrote {}",
            port_file.display()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    };

    let out = repro(&[
        "load",
        "--addr",
        addr.trim(),
        "--clients",
        "2",
        "--tenants",
        "6",
        "--frames",
        "2",
        "--events",
        "200",
        "--seed",
        "7",
        "--out",
        bench_json.to_str().unwrap(),
        "--drain",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "load stdout: {stdout}");
    assert!(stdout.contains("frames sent"), "{stdout}");
    assert!(stdout.contains("drain:"), "{stdout}");
    let report = rsc_conformance::json::Json::parse(
        &std::fs::read_to_string(&bench_json).expect("BENCH_serve.json written"),
    )
    .expect("report parses");
    let get = |k: &str| report.get(k).and_then(rsc_conformance::json::Json::as_u64);
    assert_eq!(get("failed_requests"), Some(0), "{report}");
    assert_eq!(get("frames_acked"), Some(12), "{report}");
    assert_eq!(get("events_acked"), Some(2400), "{report}");
    let drain = report.get("drain").expect("drain section");
    assert_eq!(
        drain
            .get("failed")
            .and_then(rsc_conformance::json::Json::as_u64),
        Some(0),
        "{report}"
    );

    // The client-requested drain shuts the daemon down by itself, exit 0.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let status = loop {
        if let Some(status) = guard.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "serve did not exit after the drain"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    };
    assert!(status.success(), "serve exit: {status:?}");
    // Drained tenants persisted under the checkpoint dir.
    let records = std::fs::read_dir(&state).unwrap().count();
    assert!(records >= 6, "expected >= 6 tenant records, got {records}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_smoke_run_writes_corpus_artifacts_and_exits_zero() {
    let dir = std::env::temp_dir().join("rsc_repro_fuzz_e2e");
    std::fs::remove_dir_all(&dir).ok();
    let out = repro(&[
        "fuzz",
        "--iters",
        "10",
        "--seed",
        "42",
        "--events",
        "600",
        "--analytic-check",
        "--corpus-dir",
        dir.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("coverage: baseline"), "{stdout}");
    assert!(dir.join("report.json").exists());
    assert!(dir.join("entry-000.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}
