//! End-to-end checks of the `repro` binary's top-level argument
//! handling: bad or missing flag values must produce a usage message on
//! stderr and exit status 2, never a panic.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn assert_usage_error(out: &Output, needle: &str) {
    assert_eq!(out.status.code(), Some(2), "exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(needle),
        "stderr should mention {needle:?}: {err}"
    );
    assert!(
        err.contains("usage: repro"),
        "stderr should print usage: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "usage errors must not panic: {err}"
    );
}

#[test]
fn non_integer_flag_value_is_a_usage_error() {
    let out = repro(&["perf", "--events", "lots"]);
    assert_usage_error(&out, "--events");
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    let out = repro(&["perf", "--shards"]);
    assert_usage_error(&out, "--shards needs a value");
}

#[test]
fn zero_shards_is_a_usage_error() {
    let out = repro(&["perf", "--shards", "0"]);
    assert_usage_error(&out, "--shards must be at least 1");
}

#[test]
fn unknown_option_is_a_usage_error() {
    let out = repro(&["--bogus"]);
    assert_usage_error(&out, "unknown option: --bogus");
}

#[test]
fn unknown_experiment_still_exits_2() {
    let out = repro(&["definitely-not-an-experiment"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
}
