//! Multi-seed and multi-thread determinism: controller runs are pure
//! functions of their seeds, and the `--threads` knob only changes *how*
//! the experiment fan-out is scheduled, never *what* it computes.
//!
//! `set_max_threads` is process-global, so everything lives in one test
//! function — Rust's default parallel test runner would otherwise race on
//! the cap.

use rsc_bench::experiments::table3;
use rsc_bench::options::ExpOptions;
use rsc_bench::parallel::set_max_threads;
use rsc_control::{engine, ControlStats, ControllerParams};
use rsc_profile::offline;
use rsc_trace::{spec2000, InputId};

const EVENTS: u64 = 120_000;

#[test]
fn seeds_and_thread_counts_are_deterministic() {
    // Part 1: same seed → bit-identical run (stats AND full transition
    // log), different seed → different outcome, across several seeds.
    let pop = spec2000::benchmark("vortex").unwrap().population(EVENTS);
    let run = |seed| {
        engine::run_population(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            EVENTS,
            seed,
        )
        .unwrap()
    };
    let mut per_seed = Vec::new();
    for seed in [7u64, 42, 1234] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.stats, b.stats, "seed {seed}: stats");
        assert_eq!(a.transitions, b.transitions, "seed {seed}: transitions");
        per_seed.push(a.stats);
    }
    assert_ne!(per_seed[0], per_seed[1], "seeds 7 and 42 should differ");
    assert_ne!(per_seed[1], per_seed[2], "seeds 42 and 1234 should differ");

    // Part 2: the experiment fan-out (`repro --threads N` routes to
    // `set_max_threads`) must yield identical `ControlStats` for every
    // thread count, including the sequential baseline.
    let opts = ExpOptions::small().with_events(EVENTS);
    let stats_at = |threads: usize| -> Vec<(&'static str, ControlStats)> {
        set_max_threads(threads);
        let rows = table3::run(&opts);
        set_max_threads(0);
        rows.into_iter().map(|r| (r.name, r.stats)).collect()
    };
    let sequential = stats_at(1);
    assert_eq!(sequential.len(), spec2000::NAMES.len());
    for threads in [2, 4, 8] {
        assert_eq!(
            sequential,
            stats_at(threads),
            "--threads {threads} changed experiment results"
        );
    }

    // Part 3: the sharded profiler merges shards in seed order, so the
    // averaged profile is also thread-count independent.
    let profile_at = |threads: usize| {
        set_max_threads(threads);
        let p = offline::averaged_profile(&pop, EVENTS, 100, 6);
        set_max_threads(0);
        p
    };
    let one = profile_at(1);
    for threads in [3, 6] {
        assert_eq!(
            one,
            profile_at(threads),
            "--threads {threads} changed the averaged profile"
        );
    }
}
