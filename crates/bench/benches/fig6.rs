//! Criterion bench for the Figure 6 analysis: post-eviction misprediction
//! windows.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_control::analysis::transition;
use rsc_control::ControllerParams;
use rsc_trace::{spec2000, InputId};

fn bench_fig6(c: &mut Criterion) {
    let events = 500_000;
    let pop = spec2000::benchmark("mcf").unwrap().population(events);

    c.bench_function("fig6/eviction_windows", |b| {
        b.iter(|| {
            transition::eviction_windows(
                ControllerParams::scaled(),
                pop.trace(InputId::Eval, events, 1),
                64,
            )
            .unwrap()
            .len()
        })
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
