//! Criterion bench for the Table 3 pipeline: a full baseline controller
//! run over one benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_control::{engine, ControllerParams};
use rsc_trace::{spec2000, InputId};

fn bench_table3(c: &mut Criterion) {
    let events = 500_000;
    let mut g = c.benchmark_group("table3");
    g.sample_size(20);
    for name in ["gcc", "mcf", "vortex"] {
        let pop = spec2000::benchmark(name).unwrap().population(events);
        g.bench_function(name, |b| {
            b.iter(|| {
                engine::run_population(ControllerParams::scaled(), &pop, InputId::Eval, events, 1)
                    .unwrap()
                    .stats
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
