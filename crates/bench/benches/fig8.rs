//! Criterion bench for the Figure 8 pipeline: MSSP under different
//! re-optimization latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_control::ControllerParams;
use rsc_mssp::{machine, MsspParams};
use rsc_trace::{spec2000, InputId};

fn bench_fig8(c: &mut Criterion) {
    let events = 200_000;
    let pop = spec2000::benchmark("twolf").unwrap().population(events);

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for lat in [0u64, 10_000, 100_000] {
        let params =
            MsspParams::new().with_controller(ControllerParams::scaled().with_latency(lat));
        g.bench_function(&format!("latency_{lat}"), |b| {
            b.iter(|| machine::run_mssp_only(&pop, InputId::Eval, events, 1, &params).mssp_cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
