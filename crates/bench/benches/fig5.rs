//! Criterion bench for the Figure 5 pipeline: reactive controller runs
//! against the self-training reference.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_control::{engine, ControllerParams};
use rsc_trace::{spec2000, InputId};

fn bench_fig5(c: &mut Criterion) {
    let events = 500_000;
    let pop = spec2000::benchmark("gzip").unwrap().population(events);

    let mut g = c.benchmark_group("fig5");
    for (name, params) in [
        ("baseline", ControllerParams::scaled()),
        ("no_eviction", ControllerParams::scaled().without_eviction()),
        ("no_revisit", ControllerParams::scaled().without_revisit()),
        (
            "sampling_monitor",
            ControllerParams::scaled().with_monitor_sampling(8),
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                engine::run_population(params, &pop, InputId::Eval, events, 1)
                    .unwrap()
                    .stats
                    .correct
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
