//! Criterion bench for the Table 4 pipeline: the seven sensitivity
//! configurations on one benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_bench::experiments::table4;
use rsc_control::{engine, ControllerParams};
use rsc_trace::{spec2000, InputId};

fn bench_table4(c: &mut Criterion) {
    let events = 300_000;
    let pop = spec2000::benchmark("bzip2").unwrap().population(events);

    let mut g = c.benchmark_group("table4");
    for name in table4::CONFIG_NAMES {
        let params = table4::config(ControllerParams::scaled(), name);
        g.bench_function(&name.replace(' ', "_"), |b| {
            b.iter(|| {
                engine::run_population(params, &pop, InputId::Eval, events, 1)
                    .unwrap()
                    .stats
                    .incorrect
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
