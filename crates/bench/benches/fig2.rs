//! Criterion bench for the Figure 2 pipeline: self-training Pareto curve,
//! threshold knee, cross-input point, and initial-behavior points.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rsc_bench::experiments::fig2;
use rsc_bench::options::ExpOptions;
use rsc_profile::{initial, offline, pareto, BranchProfile};
use rsc_trace::{spec2000, InputId};

fn bench_fig2(c: &mut Criterion) {
    let events = 300_000;
    let pop = spec2000::benchmark("gzip").unwrap().population(events);

    c.bench_function("fig2/self_training_curve", |b| {
        b.iter_batched(
            || BranchProfile::from_trace(pop.trace(InputId::Eval, events, 1)),
            |profile| {
                let curve = pareto::curve(&profile);
                let knee = pareto::threshold_point(&profile, 0.99);
                (curve.len(), knee)
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("fig2/cross_input_experiment", |b| {
        b.iter(|| offline::cross_input_experiment(&pop, events, 1, 0.99, 32))
    });

    c.bench_function("fig2/initial_behavior_profile", |b| {
        b.iter(|| initial::initial_profile(pop.trace(InputId::Eval, events, 1), 1_000))
    });

    let mut slow = c.benchmark_group("fig2/full");
    slow.sample_size(10);
    slow.bench_function("one_benchmark_marks", |b| {
        b.iter(|| fig2::run(&ExpOptions::small().with_events(100_000)).len())
    });
    slow.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
