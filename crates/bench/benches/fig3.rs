//! Criterion bench for the Figure 3 analysis: block-bias series of
//! behavior-changing branches.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_control::analysis::blocks;
use rsc_trace::{spec2000, InputId};

fn bench_fig3(c: &mut Criterion) {
    let events = 500_000;
    let pop = spec2000::benchmark("gap").unwrap().population(events);
    let ids = blocks::changing_branches(&pop, 5);

    c.bench_function("fig3/changing_branch_selection", |b| {
        b.iter(|| blocks::changing_branches(&pop, 5).len())
    });

    c.bench_function("fig3/block_bias_series", |b| {
        b.iter(|| blocks::block_bias_series(pop.trace(InputId::Eval, events, 1), &ids, 1000).len())
    });
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
