//! Criterion bench for the Figure 7 pipeline: closed- vs open-loop MSSP
//! timing simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_control::ControllerParams;
use rsc_mssp::{machine, MsspParams};
use rsc_trace::{spec2000, InputId};

fn bench_fig7(c: &mut Criterion) {
    let events = 200_000;
    let pop = spec2000::benchmark("gzip").unwrap().population(events);

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("superscalar_baseline", |b| {
        b.iter(|| machine::run_baseline(&pop, InputId::Eval, events, 1, &MsspParams::new().machine))
    });
    g.bench_function("mssp_closed_loop", |b| {
        b.iter(|| {
            machine::run_mssp_only(&pop, InputId::Eval, events, 1, &MsspParams::new()).mssp_cycles
        })
    });
    g.bench_function("mssp_open_loop", |b| {
        let params =
            MsspParams::new().with_controller(ControllerParams::scaled().without_eviction());
        b.iter(|| machine::run_mssp_only(&pop, InputId::Eval, events, 1, &params).mssp_cycles)
    });
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
