//! Ablation benches for design choices the paper motivates but does not
//! sweep exhaustively: the hysteresis counter's asymmetry and the wait
//! period, measured both for runtime cost and (printed) quality.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_control::{engine, ControllerParams, EvictionMode, Revisit};
use rsc_trace::{spec2000, InputId};

fn bench_ablations(c: &mut Criterion) {
    let events = 300_000;
    let pop = spec2000::benchmark("mcf").unwrap().population(events);

    let mut g = c.benchmark_group("ablations/hysteresis_shape");
    for (name, up, threshold) in [
        ("paper_+50_-1", 50u32, 1_000u32),
        ("symmetric_+1_-1", 1, 20),
        ("steep_+200_-1", 200, 4_000),
    ] {
        let params = ControllerParams {
            eviction: EvictionMode::Counter {
                up,
                down: 1,
                threshold,
            },
            ..ControllerParams::scaled()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                engine::run_population(params, &pop, InputId::Eval, events, 1)
                    .unwrap()
                    .stats
                    .incorrect
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablations/wait_period");
    for (name, wait) in [
        ("wait_5k", 5_000u64),
        ("wait_25k", 25_000),
        ("wait_100k", 100_000),
    ] {
        let params = ControllerParams {
            revisit: Revisit::After(wait),
            ..ControllerParams::scaled()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                engine::run_population(params, &pop, InputId::Eval, events, 1)
                    .unwrap()
                    .stats
                    .correct
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
