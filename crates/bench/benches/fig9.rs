//! Criterion bench for the Figure 9 analysis: biased-interval extraction
//! and correlation clustering on vortex.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rsc_control::analysis::intervals;
use rsc_control::{engine, ControllerParams};
use rsc_trace::{spec2000, InputId};

fn bench_fig9(c: &mut Criterion) {
    let events = 500_000;
    let pop = spec2000::benchmark("vortex").unwrap().population(events);
    let run =
        engine::run_population(ControllerParams::scaled(), &pop, InputId::Eval, events, 1).unwrap();

    c.bench_function("fig9/interval_extraction", |b| {
        b.iter(|| intervals::biased_intervals(&run.transitions, events).len())
    });

    let ivs = intervals::biased_intervals(&run.transitions, events);
    c.bench_function("fig9/correlation_clustering", |b| {
        b.iter_batched(
            || intervals::flipping_branches(&ivs, events),
            |flipping| intervals::correlated_clusters(&flipping, events / 50).len(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
