//! Micro-benchmarks of the substrates: trace generation throughput,
//! controller observe throughput, cache and predictor operations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rsc_control::{ControllerParams, ReactiveController, TransitionLogPolicy};
use rsc_mssp::cache::Cache;
use rsc_mssp::predictor::Gshare;
use rsc_trace::{spec2000, InputId};

fn bench_substrates(c: &mut Criterion) {
    let events = 1_000_000;
    let pop = spec2000::benchmark("gcc").unwrap().population(events);

    let mut g = c.benchmark_group("substrates");
    g.throughput(Throughput::Elements(events));
    g.sample_size(10);
    g.bench_function("trace_generation_1M_events", |b| {
        b.iter(|| pop.trace(InputId::Eval, events, 1).count())
    });
    g.bench_function("controller_observe_1M_events", |b| {
        b.iter(|| {
            let mut ctl = ReactiveController::builder(ControllerParams::scaled())
                .log_policy(TransitionLogPolicy::CountsOnly)
                .build()
                .unwrap();
            for r in pop.trace(InputId::Eval, events, 1) {
                ctl.observe(&r);
            }
            ctl.stats().correct
        })
    });
    g.finish();

    let mut g = c.benchmark_group("substrates/micro");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("cache_access_100k", |b| {
        b.iter(|| {
            let mut cache = Cache::new(64, 2, 64);
            for i in 0..100_000u64 {
                cache.access(i * 37 % (1 << 20));
            }
            cache.misses()
        })
    });
    g.bench_function("gshare_100k", |b| {
        b.iter(|| {
            let mut gs = Gshare::new(4096);
            let mut correct = 0u64;
            for i in 0..100_000u64 {
                correct += u64::from(gs.predict_and_update(i % 64 * 4, i % 3 == 0));
            }
            correct
        })
    });
    g.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
