//! Top-level argument parsing for the `repro` binary.
//!
//! The experiment flags (`--events`, `--seed`, `--threads`, …) used to be
//! parsed inline in `main` with `.expect()`, so a typo like
//! `--events lots` tore the process down with a panic and a backtrace
//! instead of a usage message. [`parse`] is side-effect free and returns
//! `Err` with a one-line diagnostic; `main` prints it together with
//! [`USAGE`] and exits with status 2, matching the subcommands'
//! usage-error convention.

use crate::options::ExpOptions;
use std::path::PathBuf;

/// Usage text printed (to stderr) alongside any top-level parse error.
pub const USAGE: &str = "\
usage: repro [SUBCOMMAND | EXPERIMENT...] [FLAGS]

subcommands (own their argument lists):
  conformance     differential fuzzing campaign / artifact replay
  resilience      resilient-runtime drills
  observe         metrics exposition smoke
  fuzz            coverage-guided scenario fuzzing with analytic oracle
  serve           multi-tenant controller daemon (quotas, drain, chaos)
  load            seeded load/chaos storm against a serve daemon
  pareto          benefit-vs-misspeculation sweeps across the policy zoo

experiments: table1 table2 table3 table4 table5 fig2 fig3 fig5 fig6
  fig7 fig8 fig9 oscillation dynamo confidence regions variance
  clustering perf all   (default: all)

flags:
  --events N      dynamic branch events per run (default 16000000)
  --full          shorthand for --events 40000000
  --seed N        root trace seed (default 42)
  --threads N     worker-thread cap for parallel stages (N >= 1)
  --shards N      (perf) also measure sharded controller scaling, 1..=N
  --csv DIR       write CSV/JSON outputs under DIR
  --metrics-out F write a Prometheus exposition of the perf run to F";

/// Everything the top-level `repro` invocation decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopArgs {
    /// Experiment options (`--events`, `--seed`, `--full`).
    pub opts: ExpOptions,
    /// `--csv` output directory.
    pub csv_dir: Option<PathBuf>,
    /// `--metrics-out` exposition path.
    pub metrics_out: Option<PathBuf>,
    /// `--threads` cap; `main` applies it to the parallel runtime.
    pub threads: Option<usize>,
    /// `--shards` ceiling for the perf scaling sweep.
    pub shards: Option<usize>,
    /// Experiment names, in order. Empty means "all".
    pub which: Vec<String>,
}

/// Parses the argument list (everything after the program name). Pure:
/// no printing, no process exit, no global state.
///
/// # Errors
///
/// Returns a one-line diagnostic for a missing flag value, a
/// non-numeric value, a zero where at least 1 is required, or an
/// unknown `--flag`.
pub fn parse(args: &[String]) -> Result<TopArgs, String> {
    let mut top = TopArgs {
        opts: ExpOptions::new(),
        csv_dir: None,
        metrics_out: None,
        threads: None,
        shards: None,
        which: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--events" => top.opts.events = number(&mut it, "--events")?,
            "--seed" => top.opts.seed = number(&mut it, "--seed")?,
            "--full" => top.opts.events = 40_000_000,
            "--threads" => {
                top.threads = Some(at_least_one(number(&mut it, "--threads")?, "--threads")?)
            }
            "--shards" => {
                top.shards = Some(at_least_one(number(&mut it, "--shards")?, "--shards")?)
            }
            "--csv" => top.csv_dir = Some(PathBuf::from(value(&mut it, "--csv")?)),
            "--metrics-out" => {
                top.metrics_out = Some(PathBuf::from(value(&mut it, "--metrics-out")?))
            }
            other if other.starts_with('-') => return Err(format!("unknown option: {other}")),
            other => top.which.push(other.to_string()),
        }
    }
    Ok(top)
}

/// Pulls the next argument as `flag`'s value. Shared by every
/// subcommand's parser so the diagnostics stay word-for-word identical.
pub(crate) fn value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a str, String> {
    match it.next() {
        Some(v) => Ok(v),
        None => Err(format!("{flag} needs a value")),
    }
}

/// Pulls and parses the next argument as an integer value for `flag`.
pub(crate) fn number<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let v = value(it, flag)?;
    v.parse()
        .map_err(|_| format!("{flag} needs an integer, got {v:?}"))
}

/// Rejects zero for flags where it would be meaningless.
pub(crate) fn at_least_one<T: PartialOrd + From<u8>>(n: T, flag: &str) -> Result<T, String> {
    if n < T::from(1u8) {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_exp_options() {
        let top = parse(&[]).unwrap();
        assert_eq!(top.opts, ExpOptions::new());
        assert!(top.which.is_empty());
        assert_eq!(top.threads, None);
        assert_eq!(top.shards, None);
    }

    #[test]
    fn flags_and_experiments_parse_together() {
        let top = parse(&argv(&[
            "perf",
            "--events",
            "1234",
            "--seed",
            "9",
            "--threads",
            "2",
            "--shards",
            "4",
            "--csv",
            "out",
            "--metrics-out",
            "m.prom",
        ]))
        .unwrap();
        assert_eq!(top.which, vec!["perf"]);
        assert_eq!(top.opts.events, 1234);
        assert_eq!(top.opts.seed, 9);
        assert_eq!(top.threads, Some(2));
        assert_eq!(top.shards, Some(4));
        assert_eq!(top.csv_dir.as_deref(), Some(std::path::Path::new("out")));
        assert_eq!(
            top.metrics_out.as_deref(),
            Some(std::path::Path::new("m.prom"))
        );
    }

    #[test]
    fn full_raises_events() {
        assert_eq!(parse(&argv(&["--full"])).unwrap().opts.events, 40_000_000);
    }

    #[test]
    fn bad_values_are_diagnosed_not_panicked() {
        assert_eq!(
            parse(&argv(&["--events"])).unwrap_err(),
            "--events needs a value"
        );
        assert_eq!(
            parse(&argv(&["--events", "lots"])).unwrap_err(),
            "--events needs an integer, got \"lots\""
        );
        assert_eq!(
            parse(&argv(&["--shards", "0"])).unwrap_err(),
            "--shards must be at least 1"
        );
        assert_eq!(
            parse(&argv(&["--threads", "0"])).unwrap_err(),
            "--threads must be at least 1"
        );
        assert_eq!(
            parse(&argv(&["--bogus"])).unwrap_err(),
            "unknown option: --bogus"
        );
    }
}
