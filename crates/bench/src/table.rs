//! Minimal fixed-width text-table formatting for experiment output.

/// A simple left-padded text table builder.
///
/// # Examples
///
/// ```
/// use rsc_bench::table::TextTable;
/// let mut t = TextTable::new(vec!["bmark", "value"]);
/// t.row(vec!["gcc".into(), "66.3".into()]);
/// let s = t.render();
/// assert!(s.contains("gcc"));
/// assert!(s.contains("66.3"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Shorter rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells that contain
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let line = |cells: &[String]| -> String {
            cells.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
        };
        let mut out = String::new();
        out.push_str(&line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (w, h) in widths.iter_mut().zip(&self.headers) {
            *w = (*w).max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width.saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with the given decimals.
pub fn pct(x: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, x * 100.0)
}

/// Formats an optional count, printing `-` for `None`.
pub fn opt_u64(x: Option<u64>) -> String {
    x.map_or_else(|| "-".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.4481, 1), "44.8%");
        assert_eq!(opt_u64(None), "-");
        assert_eq!(opt_u64(Some(12)), "12");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["plain".into(), "with,comma".into()]);
        t.row(vec!["quote\"d".into(), "multi\nline".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.split('\n').collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert!(lines[2].starts_with("\"quote\"\"d\""));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
