//! The `repro fuzz` subcommand: coverage-guided scenario fuzzing of the
//! reactive controller with an analytic misspeculation oracle.
//!
//! Exit status encodes the verdict for CI:
//!
//! * `0` — campaign ran; every analytically-checked corpus entry agreed
//!   with simulation (or the oracle was off);
//! * `1` — at least one corpus entry diverged from the Markov model
//!   beyond the documented tolerance (the divergence is written as a
//!   structured artifact, never a silent pass);
//! * `2` — usage error.

use crate::cli::{at_least_one, number, value};
use rsc_conformance::json::Json;
use rsc_conformance::params_to_json;
use rsc_fuzz::corpus::save_entries;
use rsc_fuzz::{fuzz, AnalyticCheck, FuzzConfig, FuzzReport};
use std::path::{Path, PathBuf};

/// Usage text printed (to stderr) alongside any parse error.
pub const USAGE: &str = "\
usage: repro fuzz [FLAGS]

flags:
  --iters N         mutation iterations after seeding (default 200, N >= 1)
  --seed N          master seed for mutations and baselines (default 42)
  --events N        events per baseline scenario (default 3000, N >= 1)
  --corpus-dir DIR  write corpus entries, report.json, and the minimized
                    worst case under DIR
  --minimize        ddmin-minimize the worst misspeculation trace
  --analytic-check  cross-check every corpus entry against the analytic
                    Markov oracle; divergence beyond tolerance exits 1";

/// Everything a `repro fuzz` invocation decided.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzArgs {
    /// The campaign configuration.
    pub config: FuzzConfig,
    /// `--corpus-dir` artifact directory.
    pub corpus_dir: Option<PathBuf>,
}

/// Parses the argument list (everything after the literal `fuzz`).
/// Pure: no printing, no process exit.
///
/// # Errors
///
/// Returns a one-line diagnostic for a missing flag value, a
/// non-numeric value, a zero where at least 1 is required, or an
/// unknown flag.
pub fn parse(args: &[String]) -> Result<FuzzArgs, String> {
    let mut out = FuzzArgs {
        config: FuzzConfig {
            // The oracle is opt-in on the command line.
            analytic_check: false,
            ..FuzzConfig::new()
        },
        corpus_dir: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => out.config.iters = at_least_one(number(&mut it, "--iters")?, "--iters")?,
            "--seed" => out.config.seed = number(&mut it, "--seed")?,
            "--events" => {
                out.config.events = at_least_one(number(&mut it, "--events")?, "--events")?
            }
            "--corpus-dir" => out.corpus_dir = Some(PathBuf::from(value(&mut it, "--corpus-dir")?)),
            "--minimize" => out.config.minimize = true,
            "--analytic-check" => out.config.analytic_check = true,
            other => return Err(format!("unknown fuzz option: {other}")),
        }
    }
    Ok(out)
}

/// Runs the subcommand with its own argument list (everything after the
/// literal `fuzz`). Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return 2;
        }
    };

    println!(
        "fuzz campaign: {} iterations, seed {}, {} events/baseline{}{}",
        parsed.config.iters,
        parsed.config.seed,
        parsed.config.events,
        if parsed.config.minimize {
            ", minimizing worst case"
        } else {
            ""
        },
        if parsed.config.analytic_check {
            ", analytic oracle on"
        } else {
            ""
        },
    );
    let report = fuzz(&parsed.config);

    println!(
        "coverage: baseline {} points (7 hand-written scenarios), fuzz {} points ({})",
        report.baseline_points,
        report.fuzz_points,
        if report.beat_baseline() {
            "fuzzing beat the hand-written campaign"
        } else {
            "no gain over the hand-written campaign"
        },
    );
    println!(
        "corpus: {} entries ({} fuzz finds)",
        report.corpus.len(),
        report.corpus.len().saturating_sub(7),
    );
    if let Some(w) = &report.worst {
        println!(
            "worst case: entry {} ({}), misspec rate {:.5} ({} misses / {} events){}",
            w.entry,
            report.corpus[w.entry].genome.describe(),
            w.misspec_rate,
            w.misses,
            w.events,
            match &w.minimized {
                Some(t) => format!(", minimized to {} events", t.len()),
                None => String::new(),
            },
        );
    }
    for &i in &report.divergences {
        if let AnalyticCheck::Checked {
            predicted,
            simulated,
            ..
        } = &report.corpus[i].analytic
        {
            println!(
                "ANALYTIC DIVERGENCE: entry {i} ({}): predicted {predicted:.5}, \
                 simulated {simulated:.5}",
                report.corpus[i].genome.describe(),
            );
        }
    }

    if let Some(dir) = &parsed.corpus_dir {
        match write_artifacts(dir, &report) {
            Ok(()) => println!("wrote corpus artifacts to {}", dir.display()),
            Err(e) => {
                eprintln!("failed to write corpus artifacts: {e}");
                return 1;
            }
        }
    }

    if report.divergences.is_empty() {
        if parsed.config.analytic_check {
            println!("analytic oracle agrees with simulation on every corpus entry");
        }
        0
    } else {
        println!(
            "FAIL: {} corpus entr{} diverged from the analytic model",
            report.divergences.len(),
            if report.divergences.len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
        1
    }
}

/// Writes `entry-NNN.json` per corpus entry, a campaign `report.json`,
/// and (when minimization ran) `worst-case.json` with the minimized
/// trace, under `dir`.
fn write_artifacts(dir: &Path, report: &FuzzReport) -> std::io::Result<()> {
    save_entries(dir, &report.corpus)?;
    std::fs::write(dir.join("report.json"), report_json(report).to_string())?;
    if let Some(w) = &report.worst {
        if let Some(trace) = &w.minimized {
            let doc = Json::obj([
                ("format", Json::Int(1)),
                ("entry", Json::Int(w.entry as u64)),
                ("misspec_rate", Json::Num(w.misspec_rate)),
                ("params", params_to_json(&report.config.params)),
                (
                    "genome",
                    rsc_fuzz::genome::genome_to_json(&report.corpus[w.entry].genome),
                ),
                (
                    "trace",
                    Json::Arr(
                        trace
                            .iter()
                            .map(|r| {
                                Json::Arr(vec![
                                    Json::Int(r.branch.index() as u64),
                                    Json::Bool(r.taken),
                                    Json::Int(r.instr),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            std::fs::write(dir.join("worst-case.json"), doc.to_string())?;
        }
    }
    Ok(())
}

/// The structured campaign summary (`report.json`).
fn report_json(report: &FuzzReport) -> Json {
    Json::obj([
        ("format", Json::Int(1)),
        ("iters", Json::Int(report.config.iters)),
        ("seed", Json::Int(report.config.seed)),
        ("events", Json::Int(report.config.events)),
        ("params", params_to_json(&report.config.params)),
        (
            "baseline_points",
            Json::Int(u64::from(report.baseline_points)),
        ),
        ("fuzz_points", Json::Int(u64::from(report.fuzz_points))),
        ("beat_baseline", Json::Bool(report.beat_baseline())),
        ("corpus_entries", Json::Int(report.corpus.len() as u64)),
        (
            "kinds_seen",
            Json::Arr(
                report
                    .coverage
                    .kinds_seen()
                    .into_iter()
                    .map(Json::str)
                    .collect(),
            ),
        ),
        (
            "divergences",
            Json::Arr(
                report
                    .divergences
                    .iter()
                    .map(|&i| Json::Int(i as u64))
                    .collect(),
            ),
        ),
        (
            "worst_case",
            match &report.worst {
                Some(w) => Json::obj([
                    ("entry", Json::Int(w.entry as u64)),
                    ("misspec_rate", Json::Num(w.misspec_rate)),
                    ("misses", Json::Int(w.misses)),
                    ("events", Json::Int(w.events)),
                    (
                        "minimized_events",
                        match &w.minimized {
                            Some(t) => Json::Int(t.len() as u64),
                            None => Json::Null,
                        },
                    ),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_fuzz_config_with_oracle_opt_in() {
        let parsed = parse(&[]).unwrap();
        assert_eq!(
            parsed.config,
            FuzzConfig {
                analytic_check: false,
                ..FuzzConfig::new()
            }
        );
        assert_eq!(parsed.corpus_dir, None);
    }

    #[test]
    fn all_flags_parse_together() {
        let parsed = parse(&argv(&[
            "--iters",
            "50",
            "--seed",
            "7",
            "--events",
            "900",
            "--corpus-dir",
            "out",
            "--minimize",
            "--analytic-check",
        ]))
        .unwrap();
        assert_eq!(parsed.config.iters, 50);
        assert_eq!(parsed.config.seed, 7);
        assert_eq!(parsed.config.events, 900);
        assert!(parsed.config.minimize);
        assert!(parsed.config.analytic_check);
        assert_eq!(parsed.corpus_dir.as_deref(), Some(Path::new("out")));
    }

    #[test]
    fn bad_values_are_diagnosed_not_panicked() {
        assert_eq!(
            parse(&argv(&["--iters"])).unwrap_err(),
            "--iters needs a value"
        );
        assert_eq!(
            parse(&argv(&["--iters", "lots"])).unwrap_err(),
            "--iters needs an integer, got \"lots\""
        );
        assert_eq!(
            parse(&argv(&["--iters", "0"])).unwrap_err(),
            "--iters must be at least 1"
        );
        assert_eq!(
            parse(&argv(&["--events", "0"])).unwrap_err(),
            "--events must be at least 1"
        );
        assert_eq!(
            parse(&argv(&["--corpus-dir"])).unwrap_err(),
            "--corpus-dir needs a value"
        );
        assert_eq!(
            parse(&argv(&["--bogus"])).unwrap_err(),
            "unknown fuzz option: --bogus"
        );
    }

    #[test]
    fn tiny_campaign_writes_artifacts_and_exits_zero() {
        let dir = std::env::temp_dir().join("rsc_fuzz_cli_test");
        std::fs::remove_dir_all(&dir).ok();
        let code = run(&argv(&[
            "--iters",
            "10",
            "--events",
            "600",
            "--minimize",
            "--analytic-check",
            "--corpus-dir",
            dir.to_str().unwrap(),
        ]));
        assert_eq!(code, 0, "tiny campaign must agree with the oracle");
        assert!(dir.join("report.json").exists());
        assert!(dir.join("entry-000.json").exists());
        assert!(dir.join("worst-case.json").exists());
        let report =
            Json::parse(&std::fs::read_to_string(dir.join("report.json")).unwrap()).unwrap();
        assert_eq!(report.get("format").and_then(Json::as_u64), Some(1));
        assert!(report
            .get("divergences")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_error_exits_two() {
        assert_eq!(run(&argv(&["--bogus"])), 2);
        assert_eq!(run(&argv(&["--iters", "0"])), 2);
    }
}
