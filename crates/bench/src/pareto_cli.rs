//! The `repro pareto` subcommand: Fig. 2-style benefit-vs-misspeculation
//! sweeps across the controller zoo.
//!
//! Each policy traces one curve: its aggressiveness knob is swept over
//! five settings, each run over a fixed set of adversarial workloads,
//! and the aggregate correct/incorrect speculation counts per 1,000
//! events become one point. Together the curves show what the policy
//! seam buys — how much speculation benefit each control strategy
//! harvests at a given misspeculation budget:
//!
//! * `paper-fsm` and `adaptive-hysteresis` sweep `selection_threshold`
//!   (how biased a branch must look before it is optimized);
//! * `perceptron` sweeps its confidence margin `theta`;
//! * `cost-aware` sweeps the assumed recovery penalty in cycles.
//!
//! Results are written to `BENCH_pareto.json`. `--check` additionally
//! asserts that at least three policies produce *monotone-sane* curves
//! (benefit and misspeculation both non-decreasing as the knob
//! loosens, within slack) — the CI smoke gate for the policy seam.

use rsc_control::{
    AdaptiveHysteresis, ControllerParams, CostAware, PaperFsm, Perceptron, Policy,
    ReactiveController, TransitionLogPolicy, BUILTIN_POLICY_IDS,
};
use rsc_trace::Scenario;
use std::path::PathBuf;
use std::sync::Arc;

/// Events fed per (policy, knob, scenario) cell by default. Large enough
/// that every scenario leaves the monitor state many times at the
/// scaled-model time constants.
const DEFAULT_EVENTS: u64 = 200_000;

/// Chunk size for the bulk-routed fast path.
const CHUNK: usize = 4_096;

/// Relative slack for the `--check` monotonicity gate: adjacent points
/// may regress by up to this fraction before the curve is called
/// non-monotone. Absorbs knee flatness without accepting inversions.
const SLACK: f64 = 0.02;

/// One point on a policy's curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Name of the swept knob.
    pub knob: &'static str,
    /// Knob setting (most conservative first).
    pub value: f64,
    /// Events fed across all scenarios.
    pub events: u64,
    /// Correct speculations across all scenarios.
    pub correct: u64,
    /// Misspeculations across all scenarios.
    pub incorrect: u64,
}

impl ParetoPoint {
    /// Correct speculations per 1,000 events — the benefit axis.
    pub fn benefit_per_1k(&self) -> f64 {
        1_000.0 * self.correct as f64 / self.events.max(1) as f64
    }

    /// Misspeculations per 1,000 events — the cost axis.
    pub fn misspec_per_1k(&self) -> f64 {
        1_000.0 * self.incorrect as f64 / self.events.max(1) as f64
    }
}

/// One policy's swept curve, points ordered most-conservative first.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoCurve {
    /// Policy id (one of [`BUILTIN_POLICY_IDS`]).
    pub policy: &'static str,
    /// Curve points, one per knob setting.
    pub points: Vec<ParetoPoint>,
}

impl ParetoCurve {
    /// Whether the curve is monotone-sane: walking from the most
    /// conservative knob setting to the loosest, benefit and
    /// misspeculation must both be non-decreasing within [`SLACK`].
    pub fn is_monotone_sane(&self) -> bool {
        self.points.windows(2).all(|w| {
            let ok = |a: f64, b: f64| b >= a * (1.0 - SLACK) - 1e-9;
            ok(w[0].benefit_per_1k(), w[1].benefit_per_1k())
                && ok(w[0].misspec_per_1k(), w[1].misspec_per_1k())
        })
    }
}

/// The workloads every cell runs: biased phases that invalidate, a
/// churning hot set, and an unstructured baseline. Periodicities are in
/// scaled-model time constants.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::PhaseFlip {
            branches: 8,
            flip_after: 4_000,
        },
        Scenario::BurstyHotSet {
            hot: 6,
            burst: 2_000,
        },
        Scenario::UniformRandom { branches: 16 },
    ]
}

/// The knob sweep for one policy: (knob name, settings, point builder).
/// Settings are ordered most-conservative first so the emitted curve
/// reads left-to-right along the risk axis.
fn sweep_for(policy: &'static str) -> (&'static str, Vec<f64>) {
    match policy {
        "paper-fsm" | "adaptive-hysteresis" => {
            ("selection_threshold", vec![0.999, 0.99, 0.9, 0.75, 0.55])
        }
        "perceptron" => ("theta", vec![192.0, 96.0, 48.0, 16.0, 4.0]),
        "cost-aware" => ("recovery", vec![1_600.0, 800.0, 400.0, 200.0, 100.0]),
        other => unreachable!("unknown builtin policy {other}"),
    }
}

/// Builds the (params, policy) pair for one cell of the sweep.
fn cell(policy: &'static str, value: f64) -> (ControllerParams, Arc<dyn Policy>) {
    let mut params = ControllerParams::scaled();
    match policy {
        "paper-fsm" => {
            params.selection_threshold = value;
            (params, Arc::new(PaperFsm))
        }
        "adaptive-hysteresis" => {
            params.selection_threshold = value;
            (params, Arc::new(AdaptiveHysteresis))
        }
        "perceptron" => (
            params,
            Arc::new(Perceptron {
                theta: value as u32,
                ..Perceptron::default()
            }),
        ),
        "cost-aware" => (
            params,
            Arc::new(CostAware {
                recovery: value as u32,
                ..CostAware::default()
            }),
        ),
        other => unreachable!("unknown builtin policy {other}"),
    }
}

/// Runs the full sweep: one curve per builtin policy.
pub fn run_sweep(events: u64, seed: u64) -> Vec<ParetoCurve> {
    BUILTIN_POLICY_IDS
        .iter()
        .map(|&policy| {
            let (knob, values) = sweep_for(policy);
            let points = values
                .into_iter()
                .map(|value| {
                    let mut point = ParetoPoint {
                        knob,
                        value,
                        events: 0,
                        correct: 0,
                        incorrect: 0,
                    };
                    for (si, scenario) in scenarios().into_iter().enumerate() {
                        let trace = scenario.generate(events, seed ^ (si as u64) << 8);
                        let (params, policy_arc) = cell(policy, value);
                        let mut ctl = ReactiveController::builder(params)
                            .policy_arc(policy_arc)
                            .log_policy(TransitionLogPolicy::CountsOnly)
                            .build()
                            .expect("scaled params validate");
                        for chunk in trace.chunks(CHUNK) {
                            ctl.observe_chunk(chunk);
                        }
                        let s = ctl.stats();
                        point.events += s.events;
                        point.correct += s.correct;
                        point.incorrect += s.incorrect;
                    }
                    point
                })
                .collect();
            ParetoCurve { policy, points }
        })
        .collect()
}

/// Renders the curves as the `BENCH_pareto.json` document.
pub fn to_json(curves: &[ParetoCurve], events: u64, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"pareto\",\n");
    out.push_str(&format!("  \"events_per_cell\": {events},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"scenarios\": [{}],\n",
        scenarios()
            .iter()
            .map(|s| format!("\"{}\"", s.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"policies\": [\n");
    for (ci, c) in curves.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"policy\": \"{}\",\n", c.policy));
        out.push_str(&format!(
            "      \"monotone_sane\": {},\n",
            c.is_monotone_sane()
        ));
        out.push_str("      \"points\": [\n");
        for (pi, p) in c.points.iter().enumerate() {
            out.push_str("        {");
            out.push_str(&format!(
                "\"knob\": \"{}\", \"value\": {}, \"events\": {}, \
                 \"correct\": {}, \"incorrect\": {}, \
                 \"benefit_per_1k\": {:.3}, \"misspec_per_1k\": {:.3}",
                p.knob,
                p.value,
                p.events,
                p.correct,
                p.incorrect,
                p.benefit_per_1k(),
                p.misspec_per_1k()
            ));
            out.push_str(if pi + 1 == c.points.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if ci + 1 == curves.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable table.
pub fn render(curves: &[ParetoCurve]) -> String {
    let mut out = String::new();
    for c in curves {
        out.push_str(&format!(
            "{} ({}{})\n",
            c.policy,
            c.points.first().map_or("", |p| p.knob),
            if c.is_monotone_sane() {
                ", monotone"
            } else {
                ", NON-MONOTONE"
            }
        ));
        for p in &c.points {
            out.push_str(&format!(
                "  {:>8} -> benefit {:>8.1}/1k  misspec {:>7.3}/1k\n",
                p.value,
                p.benefit_per_1k(),
                p.misspec_per_1k()
            ));
        }
    }
    out
}

/// Runs the subcommand with its own argument list (everything after the
/// literal `pareto`). Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut events = DEFAULT_EVENTS;
    let mut seed = 42u64;
    let mut out = PathBuf::from("BENCH_pareto.json");
    let mut metrics_out: Option<PathBuf> = None;
    let mut check = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let res = match a.as_str() {
            "--events" => crate::cli::number(&mut it, "--events").map(|n| events = n),
            "--seed" => crate::cli::number(&mut it, "--seed").map(|n| seed = n),
            "--out" => crate::cli::value(&mut it, "--out").map(|v| out = PathBuf::from(v)),
            "--metrics-out" => crate::cli::value(&mut it, "--metrics-out")
                .map(|v| metrics_out = Some(PathBuf::from(v))),
            "--check" => {
                check = true;
                Ok(())
            }
            other => Err(format!("unknown pareto option: {other}")),
        };
        if let Err(e) = res {
            eprintln!("{e}");
            return 2;
        }
    }

    println!(
        "== Pareto sweep: benefit vs misspeculation across the policy zoo ==\n\
         {} events/cell, seed {}, policies {}",
        events,
        seed,
        BUILTIN_POLICY_IDS.join(", ")
    );
    let curves = run_sweep(events, seed);
    println!("{}", render(&curves));

    if let Some(dir) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return 1;
        }
    }
    if let Err(e) = std::fs::write(&out, to_json(&curves, events, seed)) {
        eprintln!("cannot write {}: {e}", out.display());
        return 1;
    }
    println!("wrote {}", out.display());

    if let Some(mpath) = &metrics_out {
        export_sweep_metrics(events, seed, mpath);
    }

    if check {
        let sane = curves.iter().filter(|c| c.is_monotone_sane()).count();
        let with_points = curves.iter().filter(|c| !c.points.is_empty()).count();
        println!(
            "check: {with_points}/{} policies produced points, {sane} monotone-sane curves",
            curves.len()
        );
        if with_points < 4 || sane < 3 {
            println!("FAIL: expected points for all 4 policies and >=3 monotone-sane curves");
            return 1;
        }
    }
    0
}

/// The `--metrics-out` payload: one instrumented run of the sweep's
/// first cell, so the exposition carries the `rsc_policy_info` family
/// alongside the usual controller metrics.
fn export_sweep_metrics(events: u64, seed: u64, path: &std::path::Path) {
    let policy = BUILTIN_POLICY_IDS[0];
    let (_, values) = sweep_for(policy);
    let (params, policy_arc) = cell(policy, values[0]);
    let trace = scenarios()[0].generate(events, seed);
    let mut ctl = ReactiveController::builder(params)
        .policy_arc(policy_arc)
        .log_policy(TransitionLogPolicy::CountsOnly)
        .metrics()
        .build()
        .expect("scaled params validate");
    for chunk in trace.chunks(CHUNK) {
        ctl.observe_chunk(chunk);
    }
    let registry = ctl.metrics().expect("metrics were enabled");
    crate::observe_cli::export_metrics(&registry, path);
    println!("wrote {} (policy {policy})", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_policy_is_sweepable() {
        for &policy in BUILTIN_POLICY_IDS.iter() {
            let (knob, values) = sweep_for(policy);
            assert!(!knob.is_empty());
            assert_eq!(values.len(), 5);
            for v in values {
                let (params, arc) = cell(policy, v);
                assert!(params.validate().is_ok());
                assert_eq!(arc.id(), policy);
            }
            assert!(rsc_control::builtin_policy(policy).is_some());
        }
    }

    #[test]
    fn small_sweep_produces_points_for_every_policy() {
        let curves = run_sweep(4_000, 7);
        assert_eq!(curves.len(), BUILTIN_POLICY_IDS.len());
        for c in &curves {
            assert_eq!(c.points.len(), 5, "{}", c.policy);
            for p in &c.points {
                assert_eq!(p.events, 3 * 4_000, "{}", c.policy);
            }
        }
        let json = to_json(&curves, 4_000, 7);
        for id in BUILTIN_POLICY_IDS.iter() {
            assert!(json.contains(&format!("\"policy\": \"{id}\"")));
        }
    }

    #[test]
    fn monotone_gate_accepts_flat_and_rejects_inversion() {
        let mk = |pairs: &[(u64, u64)]| ParetoCurve {
            policy: "paper-fsm",
            points: pairs
                .iter()
                .map(|&(c, i)| ParetoPoint {
                    knob: "selection_threshold",
                    value: 0.9,
                    events: 1_000,
                    correct: c,
                    incorrect: i,
                })
                .collect(),
        };
        assert!(mk(&[(100, 1), (200, 2), (200, 2)]).is_monotone_sane());
        assert!(!mk(&[(500, 5), (100, 1)]).is_monotone_sane());
    }

    #[test]
    fn cli_writes_the_artifact_and_checks() {
        let dir = std::env::temp_dir().join("rsc_pareto_cli_test");
        std::fs::remove_dir_all(&dir).ok();
        let out = dir.join("BENCH_pareto.json");
        let code = run(&[
            "--events".into(),
            "20000".into(),
            "--out".into(),
            out.to_string_lossy().into_owned(),
            "--check".into(),
        ]);
        assert_eq!(code, 0, "check gate must pass at smoke scale");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"policy\": \"cost-aware\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        assert_eq!(run(&["--bogus".into()]), 2);
    }
}
