//! Figure 9 — correlated behavior changes: the vortex branches that flip
//! between biased and unbiased characterization, plotted as biased
//! intervals, change in groups.

use crate::options::ExpOptions;
use crate::table::TextTable;
use rsc_control::analysis::intervals::{self, BiasedIntervals};
use rsc_control::ControllerParams;
use rsc_trace::{spec2000, InputId};

/// Flipping-branch intervals and their correlation clusters.
#[derive(Debug, Clone)]
pub struct Fig9Data {
    /// Total events in the run (the x-axis extent).
    pub total_events: u64,
    /// Intervals of every flipping branch.
    pub flipping: Vec<BiasedIntervals>,
    /// Correlated clusters (branch ids), largest first.
    pub clusters: Vec<Vec<rsc_trace::BranchId>>,
}

/// Runs Figure 9 on vortex.
pub fn run(opts: &ExpOptions) -> Fig9Data {
    run_on("vortex", opts)
}

/// Runs the analysis on any benchmark.
pub fn run_on(benchmark: &str, opts: &ExpOptions) -> Fig9Data {
    let model = spec2000::benchmark(benchmark).expect("known benchmark");
    let pop = model.population(opts.events);
    let result = rsc_control::engine::run_population(
        ControllerParams::scaled(),
        &pop,
        InputId::Eval,
        opts.events,
        opts.seed,
    )
    .expect("valid params");
    let all = intervals::biased_intervals(&result.transitions, opts.events);
    let flipping: Vec<BiasedIntervals> = intervals::flipping_branches(&all, opts.events)
        .into_iter()
        .cloned()
        .collect();
    let refs: Vec<&BiasedIntervals> = flipping.iter().collect();
    // Tolerance: transitions within 2% of the run length count as
    // simultaneous — the same granularity the paper's plot resolves.
    let clusters = intervals::correlated_clusters(&refs, opts.events / 50);
    Fig9Data {
        total_events: opts.events,
        flipping,
        clusters,
    }
}

/// Renders one track per flipping branch (like the paper's horizontal
/// lines), thinned to at most `max_tracks`, plus cluster sizes.
pub fn render(data: &Fig9Data, max_tracks: usize) -> String {
    const COLS: usize = 64;
    let mut out = String::new();
    out.push_str(&format!(
        "flipping branches: {} (paper: 139 in vortex)\n",
        data.flipping.len()
    ));
    let stride = (data.flipping.len() / max_tracks).max(1);
    for iv in data.flipping.iter().step_by(stride) {
        let mut track = vec!['.'; COLS];
        for &(a, b) in &iv.spans {
            let c0 = (a as usize * COLS / data.total_events.max(1) as usize).min(COLS - 1);
            let c1 = (b as usize * COLS / data.total_events.max(1) as usize).clamp(c0 + 1, COLS);
            for cell in track.iter_mut().take(c1).skip(c0) {
                *cell = '━';
            }
        }
        out.push_str(&format!(
            "{:>8} |{}|\n",
            iv.branch.to_string(),
            track.iter().collect::<String>()
        ));
    }
    let mut t = TextTable::new(vec!["cluster", "branches changing together"]);
    for (i, c) in data.clusters.iter().take(12).enumerate() {
        t.row(vec![format!("#{i}"), c.len().to_string()]);
    }
    out.push('\n');
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vortex_has_many_flipping_branches_in_groups() {
        // Full default scale: the correlated group-flip branches need
        // enough executions to classify before they can flip.
        let data = run(&ExpOptions::small().with_events(16_000_000));
        assert!(
            data.flipping.len() >= 60,
            "flipping branches: {}",
            data.flipping.len()
        );
        // Correlation: at least one cluster with several branches moving
        // together.
        assert!(
            data.clusters.first().is_some_and(|c| c.len() >= 5),
            "largest cluster: {:?}",
            data.clusters.first().map(Vec::len)
        );
    }

    #[test]
    fn render_draws_tracks() {
        let data = run(&ExpOptions::small().with_events(2_000_000));
        let s = render(&data, 20);
        assert!(s.contains("flipping branches"));
        assert!(s.contains("cluster"));
    }
}
