//! Figure 8 — performance is insensitive to (re)optimization latency.
//!
//! Closed-loop MSSP with three optimization latencies; the paper reports
//! less than 2% difference between 0, 10^5, and 10^6 cycles on 200M-cycle
//! runs. Our MSSP runs are ~15× shorter, so the swept latencies are scaled
//! by the same factor (0 / 10^4 / 10^5 cycles) — the same fraction of the
//! run the paper's values occupy.

use crate::experiments::fig7::mssp_events;
use crate::options::ExpOptions;
use crate::table::TextTable;
use rsc_control::ControllerParams;
use rsc_mssp::{machine, MsspParams};
use rsc_trace::{spec2000, InputId};

/// The latencies swept (in cycles ≈ instructions at IPC ≈ 1), scaled from
/// the paper's 0 / 10^5 / 10^6 by the run-length ratio.
pub const LATENCIES: [u64; 3] = [0, 10_000, 100_000];

/// Normalized performance at each latency for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Normalized performance, one entry per [`LATENCIES`] value.
    pub perf: [f64; 3],
}

/// Runs the latency sweep over all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// Runs the latency sweep over selected benchmarks.
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    let events = mssp_events(opts);
    crate::parallel::par_map(names.to_vec(), |name| {
        let model = spec2000::benchmark(name).expect("known benchmark");
        let pop = model.population(events);
        let baseline = machine::run_baseline(
            &pop,
            InputId::Eval,
            events,
            opts.seed,
            &MsspParams::new().machine,
        );
        let mut perf = [0.0; 3];
        for (i, &lat) in LATENCIES.iter().enumerate() {
            let params =
                MsspParams::new().with_controller(ControllerParams::scaled().with_latency(lat));
            let r = machine::run_mssp_only(&pop, InputId::Eval, events, opts.seed, &params);
            perf[i] = baseline as f64 / r.mssp_cycles as f64;
        }
        Row {
            name: model.name,
            perf,
        }
    })
}

/// The worst relative deviation from the zero-latency configuration.
pub fn max_sensitivity(rows: &[Row]) -> f64 {
    rows.iter()
        .flat_map(|r| {
            r.perf[1..]
                .iter()
                .map(move |&p| (1.0 - p / r.perf[0]).abs())
        })
        .fold(0.0, f64::max)
}

/// Renders the latency-sweep table.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec!["bmark", "B", "lat 0", "lat 1e4", "lat 1e5"]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            "1.000".to_string(),
            format!("{:.3}", r.perf[0]),
            format!("{:.3}", r.perf[1]),
            format!("{:.3}", r.perf[2]),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nmax latency sensitivity: {:.1}% (paper: <2%)\n",
        max_sensitivity(rows) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_changes_performance_little() {
        let rows = run_subset(
            &ExpOptions::small().with_events(16_000_000),
            &["twolf", "gzip"],
        );
        let s = max_sensitivity(&rows);
        assert!(s < 0.10, "latency sensitivity {s}");
    }

    #[test]
    fn render_reports_sensitivity() {
        let rows = run_subset(&ExpOptions::small().with_events(4_000_000), &["eon"]);
        let s = render(&rows);
        assert!(s.contains("max latency sensitivity"));
    }
}
