//! The paper's Section 4.3 observation: because MSSP speculates at task
//! granularity, multiple branch misspeculations inside one task cost a
//! single task squash — the machine's misspeculation rate is *lower* than
//! the abstract model predicts. The effect grows with task size.

use crate::experiments::fig7::mssp_events;
use crate::options::ExpOptions;
use crate::table::TextTable;
use rsc_mssp::{machine, MsspParams};
use rsc_trace::{spec2000, InputId};

/// Task sizes swept (branch events per task).
pub const TASK_SIZES: [u64; 3] = [16, 64, 256];

/// Clustering data for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `(task size, branch misspecs, task squashes)` per swept size.
    pub sweeps: Vec<(u64, u64, u64)>,
}

impl Row {
    /// Branch-misspeculations per task squash at each task size (≥ 1 when
    /// any squash happened; larger = more clustering).
    pub fn clustering_factors(&self) -> Vec<f64> {
        self.sweeps
            .iter()
            .map(|&(_, b, t)| if t == 0 { 1.0 } else { b as f64 / t as f64 })
            .collect()
    }
}

/// Runs the task-size sweep over selected benchmarks.
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    let events = mssp_events(opts);
    names
        .iter()
        .map(|name| {
            let model = spec2000::benchmark(name).expect("known benchmark");
            let pop = model.population(events);
            let sweeps = TASK_SIZES
                .iter()
                .map(|&task_events| {
                    let mut params = MsspParams::new();
                    params.task_events = task_events;
                    let r = machine::run_mssp_only(&pop, InputId::Eval, events, opts.seed, &params);
                    (task_events, r.branch_misspecs, r.task_misspecs)
                })
                .collect();
            Row {
                name: model.name,
                sweeps,
            }
        })
        .collect()
}

/// Runs all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// Renders misspeculation clustering per task size.
pub fn render(rows: &[Row]) -> String {
    let mut headers = vec!["bmark".to_string()];
    for &t in &TASK_SIZES {
        headers.push(format!("task={t}: br-misspec/squash"));
    }
    let mut t = TextTable::new(headers);
    let mut grows = 0usize;
    for r in rows {
        let factors = r.clustering_factors();
        let mut cells = vec![r.name.to_string()];
        for (i, f) in factors.iter().enumerate() {
            let (_, b, s) = r.sweeps[i];
            cells.push(format!("{b}/{s} ({f:.2}x)"));
        }
        t.row(cells);
        if factors.last() >= factors.first() {
            grows += 1;
        }
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nclustering grows (or holds) with task size on {}/{} benchmarks — \
         the paper's \"multiple failed speculations within one task\" effect\n",
        grows,
        rows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_cluster_branch_misspeculations() {
        let rows = run_subset(
            &ExpOptions::small().with_events(16_000_000),
            &["mcf", "gap"],
        );
        for r in &rows {
            let factors = r.clustering_factors();
            // At least one squash must exist to measure anything.
            assert!(r.sweeps.iter().any(|&(_, _, t)| t > 0), "{}", r.name);
            // Larger tasks absorb at least as many branch misspecs each.
            assert!(
                factors.last().unwrap() >= factors.first().unwrap(),
                "{}: factors {:?}",
                r.name,
                factors
            );
            // Clustering means strictly more than one branch misspec per
            // squash at the largest task size.
            assert!(
                *factors.last().unwrap() > 1.0,
                "{}: no clustering at large tasks: {:?}",
                r.name,
                factors
            );
        }
    }
}
