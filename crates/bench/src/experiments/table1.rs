//! Table 1 — simulation data sets and run lengths: the paper's inputs next
//! to this reproduction's synthetic equivalents.

use crate::options::ExpOptions;
use crate::table::TextTable;
use rsc_trace::{spec2000, InputId};

/// Renders the paper's input pairings alongside our synthetic workloads.
pub fn render(opts: &ExpOptions) -> String {
    let mut t = TextTable::new(vec![
        "bmark",
        "paper profile input",
        "paper eval input",
        "paper len",
        "ours",
    ]);
    for m in spec2000::all() {
        let pop = m.population(opts.events);
        let instr = opts.events * m.instr_per_branch as u64;
        t.row(vec![
            m.name.to_string(),
            m.paper.profile_input.to_string(),
            m.paper.eval_input.to_string(),
            format!("{}B", m.paper.run_len_billions),
            format!(
                "2 synthetic inputs, {} branches, ~{}M instr",
                pop.touched_on(InputId::Eval),
                instr / 1_000_000
            ),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_benchmarks_with_paper_inputs() {
        let s = render(&ExpOptions::small());
        assert!(s.contains("scrabbl.pl"));
        assert!(s.contains("kajiya input"));
        assert!(s.contains("bzip2"));
        assert_eq!(s.lines().count(), 14); // header + rule + 12 rows
    }
}
