//! The paper's Section 4.3 observation on re-optimization batching:
//! "about half of the time it is necessary to re-optimize a code region …
//! there is more than one change to make", because behavior changes of
//! different static branches are correlated (Figure 9).
//!
//! We model code regions as groups of static branches (a distiller region
//! covers a contiguous range of branch ids, mirroring spatial locality in
//! the binary) and measure, for every region re-optimization, how many
//! classification changes it batches: changes to the same region that
//! occur within one re-optimization latency window are served by a single
//! code regeneration.

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::{ControllerParams, TransitionKind};
use rsc_trace::{spec2000, InputId};

/// Batching statistics for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Region re-optimizations performed.
    pub reoptimizations: u64,
    /// Classification changes served by them.
    pub changes: u64,
    /// Fraction of re-optimizations that batched more than one change.
    pub multi_change_frac: f64,
}

/// Branches per region (a distiller region covers a neighborhood of the
/// static code).
pub const REGION_SIZE: u32 = 16;

/// Window (in dynamic instructions) within which changes to the same
/// region share one regeneration — the optimization latency.
fn batching_window(params: &ControllerParams) -> u64 {
    params.optimization_latency.max(1)
}

/// Runs the analysis over selected benchmarks.
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    let params = ControllerParams::scaled();
    let window = batching_window(&params);
    names
        .iter()
        .map(|name| {
            let model = spec2000::benchmark(name).expect("known benchmark");
            let pop = model.population(opts.events);
            let result = rsc_control::engine::run_population(
                params,
                &pop,
                InputId::Eval,
                opts.events,
                opts.seed,
            )
            .expect("valid params");

            // Changes that require code regeneration, per region, in time
            // order (the transition log is already chronological).
            let mut last_regen_at: std::collections::HashMap<u32, u64> =
                std::collections::HashMap::new();
            let mut reoptimizations = 0u64;
            let mut changes = 0u64;
            let mut batched: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            let mut multi = 0u64;
            for t in &result.transitions {
                let needs_regen = matches!(
                    t.kind,
                    TransitionKind::EnterBiased | TransitionKind::ExitBiased
                );
                if !needs_regen {
                    continue;
                }
                changes += 1;
                let region = t.branch.as_u32() / REGION_SIZE;
                match last_regen_at.get(&region) {
                    Some(&at) if t.instr < at + window => {
                        // Served by the in-flight regeneration.
                        let b = batched.entry(region).or_insert(1);
                        *b += 1;
                        if *b == 2 {
                            multi += 1;
                        }
                    }
                    _ => {
                        reoptimizations += 1;
                        last_regen_at.insert(region, t.instr);
                        batched.insert(region, 1);
                    }
                }
            }
            Row {
                name: model.name,
                reoptimizations,
                changes,
                multi_change_frac: if reoptimizations == 0 {
                    0.0
                } else {
                    multi as f64 / reoptimizations as f64
                },
            }
        })
        .collect()
}

/// Runs all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// Renders the batching table.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "bmark",
        "classification changes",
        "region reoptimizations",
        "multi-change fraction",
    ]);
    let mut frac = 0.0;
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            r.changes.to_string(),
            r.reoptimizations.to_string(),
            pct(r.multi_change_frac, 1),
        ]);
        frac += r.multi_change_frac;
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nmean multi-change fraction: {} (paper: ~half of region \
         re-optimizations have more than one change to make)\n",
        pct(frac / rows.len().max(1) as f64, 1)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn some_reoptimizations_batch_multiple_changes() {
        // vortex: the Figure 9 benchmark with strongly correlated changes.
        let rows = run_subset(&ExpOptions::small().with_events(8_000_000), &["vortex"]);
        let r = &rows[0];
        assert!(r.changes > 0);
        assert!(r.reoptimizations > 0);
        assert!(r.reoptimizations <= r.changes);
        assert!(
            r.multi_change_frac > 0.05,
            "vortex should batch correlated changes: {:.3}",
            r.multi_change_frac
        );
    }

    #[test]
    fn batching_never_exceeds_changes() {
        let rows = run_subset(
            &ExpOptions::small().with_events(2_000_000),
            &["gzip", "eon"],
        );
        for r in &rows {
            assert!(r.reoptimizations <= r.changes, "{r:?}");
            assert!((0.0..=1.0).contains(&r.multi_change_frac));
        }
    }
}
