//! Figure 7 — lack of reactivity severely impacts MSSP performance.
//!
//! Four MSSP configurations per benchmark, normalized to a plain
//! superscalar baseline `B = 1.0`:
//!
//! * `c` — closed loop (eviction arc present), 1k-execution monitor;
//! * `o` — open loop (no eviction arc), 1k monitor;
//! * `C` — closed loop, 10k monitor;
//! * `O` — open loop, 10k monitor.
//!
//! The paper reports the open-loop policy trailing the closed-loop one by
//! ~18% (11% with the longer monitor), with some benchmarks dropping below
//! the superscalar baseline.

use crate::options::ExpOptions;
use crate::table::TextTable;
use rsc_control::ControllerParams;
use rsc_mssp::{machine, MsspParams};
use rsc_trace::{spec2000, InputId};

/// Normalized performance of the four configurations for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Closed loop, short monitor (`c`).
    pub closed: f64,
    /// Open loop, short monitor (`o`).
    pub open: f64,
    /// Closed loop, 10× monitor (`C`).
    pub closed_long: f64,
    /// Open loop, 10× monitor (`O`).
    pub open_long: f64,
}

/// MSSP experiments use a fraction of the abstract-model event budget: the
/// timing simulation executes every instruction three times (baseline,
/// master, checker), and the paper's own MSSP runs are short (200M
/// instructions).
pub fn mssp_events(opts: &ExpOptions) -> u64 {
    (opts.events / 8).max(250_000)
}

/// Runs the four configurations over all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// Runs the four configurations over selected benchmarks.
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    let events = mssp_events(opts);
    let base_ctl = ControllerParams::scaled();
    // The paper extends the monitor from 1k to 10k instances; relative to
    // per-branch execution counts at this scale, a 4x extension occupies
    // the same fraction of a branch's lifetime.
    let long_monitor = base_ctl.monitor_period * 4;
    type Assign = fn(&mut Row, f64);
    let configs: [(ControllerParams, Assign); 4] = [
        (base_ctl, |r, v| r.closed = v),
        (base_ctl.without_eviction(), |r, v| r.open = v),
        (base_ctl.with_monitor_period(long_monitor), |r, v| {
            r.closed_long = v
        }),
        (
            base_ctl
                .without_eviction()
                .with_monitor_period(long_monitor),
            |r, v| r.open_long = v,
        ),
    ];
    crate::parallel::par_map(names.to_vec(), |name| {
        let model = spec2000::benchmark(name).expect("known benchmark");
        let pop = model.population(events);
        let baseline = machine::run_baseline(
            &pop,
            InputId::Eval,
            events,
            opts.seed,
            &MsspParams::new().machine,
        );
        let mut row = Row {
            name: model.name,
            closed: 0.0,
            open: 0.0,
            closed_long: 0.0,
            open_long: 0.0,
        };
        for (ctl, set) in configs {
            let params = MsspParams::new().with_controller(ctl);
            let r = machine::run_mssp_only(&pop, InputId::Eval, events, opts.seed, &params);
            set(&mut row, baseline as f64 / r.mssp_cycles as f64);
        }
        row
    })
}

/// Mean open-vs-closed performance gaps `(short monitor, long monitor)`.
pub fn gaps(rows: &[Row]) -> (f64, f64) {
    let n = rows.len().max(1) as f64;
    let short: f64 = rows.iter().map(|r| 1.0 - r.open / r.closed).sum::<f64>() / n;
    let long: f64 = rows
        .iter()
        .map(|r| 1.0 - r.open_long / r.closed_long)
        .sum::<f64>()
        / n;
    (short, long)
}

/// Renders the normalized-performance table.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec!["bmark", "B", "c", "o", "C", "O"]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            "1.000".to_string(),
            format!("{:.3}", r.closed),
            format!("{:.3}", r.open),
            format!("{:.3}", r.closed_long),
            format!("{:.3}", r.open_long),
        ]);
    }
    let (short, long) = gaps(rows);
    let mut out = t.render();
    out.push_str(&format!(
        "\nmean open-loop gap: {:.1}% with short monitor (paper ~18%), \
         {:.1}% with the extended monitor (paper ~11%)\n",
        short * 100.0,
        long * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_trails_closed_loop_on_changing_benchmarks() {
        let rows = run_subset(
            &ExpOptions::small().with_events(16_000_000),
            &["mcf", "crafty"],
        );
        for r in &rows {
            assert!(
                r.open < r.closed,
                "{}: open {} should trail closed {}",
                r.name,
                r.open,
                r.closed
            );
        }
    }

    #[test]
    fn closed_loop_beats_superscalar_baseline() {
        let rows = run_subset(&ExpOptions::small().with_events(16_000_000), &["vortex"]);
        assert!(rows[0].closed > 1.0, "closed loop {}", rows[0].closed);
    }

    #[test]
    fn render_reports_gaps() {
        let rows = run_subset(&ExpOptions::small().with_events(4_000_000), &["gzip"]);
        let s = render(&rows);
        assert!(s.contains("mean open-loop gap"));
        assert!(s.contains("gzip"));
    }
}
