//! Seed sensitivity: the reproduction's headline numbers as mean ± stddev
//! across independent workload seeds, demonstrating that results are not
//! artifacts of one random stream.

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::ControllerParams;
use rsc_trace::{spec2000, InputId};

/// Mean and (sample) standard deviation of a series.
pub fn mean_stddev(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Per-benchmark mean ± stddev of the baseline controller's fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// (mean, stddev) of the correct-speculation fraction.
    pub correct: (f64, f64),
    /// (mean, stddev) of the misspeculation fraction.
    pub incorrect: (f64, f64),
}

/// Runs the baseline controller on each benchmark across `seeds` seeds.
pub fn run_subset(opts: &ExpOptions, names: &[&str], seeds: u64) -> Vec<Row> {
    assert!(seeds > 0, "need at least one seed");
    crate::parallel::par_map(names.to_vec(), |name| {
        let model = spec2000::benchmark(name).expect("known benchmark");
        let pop = model.population(opts.events);
        let mut corrects = Vec::new();
        let mut incorrects = Vec::new();
        for s in 0..seeds {
            let r = rsc_control::engine::run_population(
                ControllerParams::scaled(),
                &pop,
                InputId::Eval,
                opts.events,
                opts.seed + s,
            )
            .expect("valid params");
            corrects.push(r.stats.correct_frac());
            incorrects.push(r.stats.incorrect_frac());
        }
        Row {
            name: model.name,
            correct: mean_stddev(&corrects),
            incorrect: mean_stddev(&incorrects),
        }
    })
}

/// Runs all benchmarks with 3 seeds.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES, 3)
}

/// Renders the seed-variance table.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "bmark",
        "correct (mean ± sd)",
        "incorrect (mean ± sd)",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            format!("{} ± {}", pct(r.correct.0, 1), pct(r.correct.1, 2)),
            format!("{} ± {}", pct(r.incorrect.0, 3), pct(r.incorrect.1, 3)),
        ]);
    }
    let mut out = t.render();
    let max_cv = rows
        .iter()
        .filter(|r| r.correct.0 > 0.0)
        .map(|r| r.correct.1 / r.correct.0)
        .fold(0.0, f64::max);
    out.push_str(&format!(
        "\nmax coefficient of variation of the benefit across seeds: {:.2}%\n",
        max_cv * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_stddev_basics() {
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
        assert_eq!(mean_stddev(&[2.0]), (2.0, 0.0));
        let (m, s) = mean_stddev(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn results_are_stable_across_seeds() {
        let rows = run_subset(
            &ExpOptions::small().with_events(4_000_000),
            &["gzip", "eon"],
            3,
        );
        for r in &rows {
            assert!(r.correct.0 > 0.1, "{}: mean {}", r.name, r.correct.0);
            // The benefit should vary by well under 10% relative.
            assert!(
                r.correct.1 < r.correct.0 * 0.1,
                "{}: sd {} vs mean {}",
                r.name,
                r.correct.1,
                r.correct.0
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        run_subset(&ExpOptions::small(), &["gzip"], 0);
    }
}
