//! Table 2 — model parameters: the paper's values and the scaled preset
//! this reproduction runs by default.

use crate::table::TextTable;
use rsc_control::{ControllerParams, EvictionMode, Revisit};

fn describe(p: &ControllerParams) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    rows.push((
        "Monitor period".into(),
        format!("{} executions", p.monitor_period),
    ));
    rows.push((
        "Selection threshold".into(),
        format!("{:.1} percent", p.selection_threshold * 100.0),
    ));
    match p.eviction {
        EvictionMode::Counter {
            up,
            down,
            threshold,
        } => rows.push((
            "Misspeculation threshold".into(),
            format!("{threshold} (+{up} on misp., -{down} otherwise)"),
        )),
        EvictionMode::Sampling {
            period,
            samples,
            bias_threshold,
        } => rows.push((
            "Eviction".into(),
            format!("sample {samples}/{period}, bias floor {bias_threshold}"),
        )),
        EvictionMode::Never => rows.push(("Eviction".into(), "disabled".into())),
    }
    match p.revisit {
        Revisit::After(n) => rows.push(("Wait period".into(), format!("{n} executions"))),
        Revisit::Never => rows.push(("Wait period".into(), "no revisit".into())),
    }
    rows.push((
        "Oscillation threshold".into(),
        match p.oscillation_limit {
            Some(n) => format!("will not optimize a {} time", ordinal(n + 1)),
            None => "unlimited".into(),
        },
    ));
    rows.push((
        "Optimization latency".into(),
        format!("{} instructions", p.optimization_latency),
    ));
    rows
}

fn ordinal(n: u32) -> String {
    let suffix = match (n % 10, n % 100) {
        (1, 11) | (2, 12) | (3, 13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    };
    format!("{n}{suffix}")
}

/// Renders the paper's Table 2 next to the scaled defaults.
pub fn render() -> String {
    let paper = describe(&ControllerParams::table2());
    let scaled = describe(&ControllerParams::scaled());
    let mut t = TextTable::new(vec!["parameter", "paper (Table 2)", "scaled preset"]);
    for ((name, pv), (_, sv)) in paper.into_iter().zip(scaled) {
        t.row(vec![name, pv, sv]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_values() {
        let s = render();
        assert!(s.contains("10000 executions"));
        assert!(s.contains("10000 (+50 on misp., -1 otherwise)"));
        assert!(s.contains("1000000 instructions"));
        assert!(s.contains("will not optimize a 6th time"));
    }

    #[test]
    fn ordinals() {
        assert_eq!(ordinal(1), "1st");
        assert_eq!(ordinal(2), "2nd");
        assert_eq!(ordinal(3), "3rd");
        assert_eq!(ordinal(6), "6th");
        assert_eq!(ordinal(11), "11th");
    }
}
