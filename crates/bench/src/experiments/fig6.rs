//! Figure 6 — instantaneous misprediction rate when a branch leaves the
//! biased state.
//!
//! The paper reports two dominant exit shapes: softening and perfect
//! reversal, with over half of exits showing original-direction bias below
//! 30% in the transition window and ~20% perfectly reversed.

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::analysis::transition::{self, EvictionWindow, ExitBehaviorSummary};
use rsc_control::ControllerParams;
use rsc_trace::{spec2000, InputId};

/// Captured windows plus the aggregate Figure 6 series.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// All captured eviction windows across benchmarks.
    pub windows: Vec<EvictionWindow>,
    /// Mean misprediction rate by post-eviction offset.
    pub by_offset: Vec<f64>,
    /// Headline fractions.
    pub summary: ExitBehaviorSummary,
}

/// Window length (the paper captures up to 64 executions).
pub const WINDOW: usize = 64;

/// Runs the experiment across all benchmarks.
pub fn run(opts: &ExpOptions) -> Fig6Data {
    let mut windows = Vec::new();
    for model in spec2000::all() {
        let pop = model.population(opts.events);
        let w = transition::eviction_windows(
            ControllerParams::scaled(),
            pop.trace(InputId::Eval, opts.events, opts.seed),
            WINDOW,
        )
        .expect("valid params");
        windows.extend(w);
    }
    let by_offset = transition::mean_misprediction_by_offset(&windows, WINDOW);
    let summary = transition::summarize_exits(&windows);
    Fig6Data {
        windows,
        by_offset,
        summary,
    }
}

/// Renders the offset series and the summary fractions.
pub fn render(data: &Fig6Data) -> String {
    let mut t = TextTable::new(vec!["offset after eviction", "mean misprediction rate"]);
    for (i, &rate) in data.by_offset.iter().enumerate() {
        if i % 8 == 0 || i == data.by_offset.len() - 1 {
            t.row(vec![i.to_string(), pct(rate, 1)]);
        }
    }
    let mut out = t.render();
    out.push('\n');
    out.push_str(&format!(
        "exits captured: {}\n\
         original-direction bias < 30% (paper: >50%): {}\n\
         perfectly reversed (paper: ~20%): {}\n\
         merely softened (bias >= 50%): {}\n",
        data.summary.exits,
        pct(data.summary.strongly_degraded_frac, 1),
        pct(data.summary.reversed_frac, 1),
        pct(data.summary.softened_frac, 1),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_exits_with_mixed_shapes() {
        let data = run(&ExpOptions::small().with_events(2_000_000));
        assert!(data.summary.exits > 10, "exits: {}", data.summary.exits);
        // Both shapes must be present.
        assert!(data.summary.reversed_frac > 0.0);
        assert!(data.summary.softened_frac > 0.0);
        // The transition window shows elevated misprediction.
        let mean: f64 = data.by_offset.iter().sum::<f64>() / data.by_offset.len() as f64;
        assert!(mean > 0.2, "mean transition misprediction {mean}");
    }

    #[test]
    fn render_reports_fractions() {
        let data = run(&ExpOptions::small().with_events(1_000_000));
        let s = render(&data);
        assert!(s.contains("exits captured"));
        assert!(s.contains("perfectly reversed"));
    }
}
