//! Table 4 — model sensitivity: average correct/incorrect speculation
//! fractions for each controller configuration.
//!
//! The paper's headline: only the **no revisit** and **no eviction**
//! configurations truly differ from the baseline; every other knob shifts
//! results slightly along the self-training curve.

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::ControllerParams;
use rsc_trace::{spec2000, InputId};

/// The named configurations of the paper's Table 4, in its row order.
pub const CONFIG_NAMES: [&str; 7] = [
    "no revisit",
    "lower eviction threshold",
    "eviction by sampling",
    "baseline",
    "sampling in monitor",
    "more frequent revisit",
    "no eviction",
];

/// Paper-reported (correct, incorrect) percentages for each configuration.
pub const PAPER_RESULTS: [(f64, f64); 7] = [
    (35.8, 0.007),
    (42.9, 0.015),
    (43.6, 0.021),
    (44.8, 0.023),
    (44.8, 0.025),
    (46.1, 0.033),
    (53.9, 1.979),
];

/// Builds the parameter set for a named configuration from a baseline.
///
/// # Panics
///
/// Panics if `name` is not one of [`CONFIG_NAMES`].
pub fn config(baseline: ControllerParams, name: &str) -> ControllerParams {
    match name {
        "no revisit" => baseline.without_revisit(),
        "lower eviction threshold" => baseline.with_lower_eviction_threshold(),
        "eviction by sampling" => baseline.with_sampled_eviction(),
        "baseline" => baseline,
        "sampling in monitor" => baseline.with_monitor_sampling(8),
        "more frequent revisit" => baseline.with_frequent_revisit(),
        "no eviction" => baseline.without_eviction(),
        other => panic!("unknown Table 4 configuration: {other}"),
    }
}

/// One configuration's measured averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Configuration name.
    pub name: &'static str,
    /// Average correct-speculation fraction across benchmarks.
    pub correct: f64,
    /// Average misspeculation fraction across benchmarks.
    pub incorrect: f64,
    /// Paper-reported values (percent).
    pub paper: (f64, f64),
}

/// Runs all seven configurations over all benchmarks and averages the
/// per-benchmark fractions (as the paper's "ave" row does).
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// Runs the seven configurations over a subset of benchmarks.
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    let models: Vec<_> = names
        .iter()
        .map(|n| spec2000::benchmark(n).expect("known benchmark"))
        .collect();
    let populations: Vec<_> = models.iter().map(|m| m.population(opts.events)).collect();
    CONFIG_NAMES
        .iter()
        .zip(PAPER_RESULTS)
        .map(|(&name, paper)| {
            let params = config(ControllerParams::scaled(), name);
            let fracs = crate::parallel::par_map(populations.iter().collect::<Vec<_>>(), |pop| {
                let r = rsc_control::engine::run_population(
                    params,
                    pop,
                    InputId::Eval,
                    opts.events,
                    opts.seed,
                )
                .expect("valid params");
                (r.stats.correct_frac(), r.stats.incorrect_frac())
            });
            let n = fracs.len() as f64;
            let correct: f64 = fracs.iter().map(|f| f.0).sum::<f64>() / n;
            let incorrect: f64 = fracs.iter().map(|f| f.1).sum::<f64>() / n;
            Row {
                name,
                correct,
                incorrect,
                paper,
            }
        })
        .collect()
}

/// Renders the paper-vs-measured sensitivity table.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "configuration",
        "correct(p)",
        "correct(m)",
        "incorrect(p)",
        "incorrect(m)",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.1}%", r.paper.0),
            pct(r.correct, 1),
            format!("{:.3}%", r.paper.1),
            pct(r.incorrect, 3),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builds_all_names() {
        let base = ControllerParams::scaled();
        for name in CONFIG_NAMES {
            let p = config(base, name);
            assert!(p.validate().is_ok(), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown Table 4 configuration")]
    fn config_rejects_unknown() {
        config(ControllerParams::scaled(), "bogus");
    }

    #[test]
    fn ordering_matches_paper_extremes() {
        // Even at reduced scale the two structural variants must bracket
        // the baseline: no-revisit below in correct, no-eviction above in
        // incorrect (by a lot). Two benchmarks keep the test fast.
        let rows = run_subset(
            &ExpOptions::small().with_events(2_000_000),
            &["bzip2", "mcf"],
        );
        let get = |n: &str| rows.iter().find(|r| r.name == n).copied().unwrap();
        let baseline = get("baseline");
        let no_revisit = get("no revisit");
        let no_evict = get("no eviction");
        assert!(
            no_revisit.correct < baseline.correct,
            "no revisit should lose benefit: {no_revisit:?} vs {baseline:?}"
        );
        assert!(
            no_evict.incorrect > baseline.incorrect * 5.0,
            "no eviction should misspeculate far more: {no_evict:?} vs {baseline:?}"
        );
    }
}
