//! One module per table/figure of the paper.

pub mod clustering;
pub mod confidence;
pub mod dynamo;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod oscillation;
pub mod perf;
pub mod regions;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod variance;
