//! Table 5 — simulation parameters of the MSSP machine.

use crate::table::TextTable;
use rsc_mssp::MachineConfig;

/// Renders the machine configuration in the paper's Table 5 layout.
pub fn render() -> String {
    let m = MachineConfig::table5();
    let mut t = TextTable::new(vec!["parameter", "leading core", "trailing cores"]);
    t.row(vec![
        "Pipeline".into(),
        format!(
            "{}-wide, {}-stage",
            m.leading.width, m.leading.pipeline_depth
        ),
        format!(
            "{}-wide, {}-stage",
            m.trailing.width, m.trailing.pipeline_depth
        ),
    ]);
    t.row(vec![
        "Window".into(),
        format!("{}-entry", m.leading.window),
        format!("{}-entry", m.trailing.window),
    ]);
    t.row(vec![
        "Caches".into(),
        format!(
            "{}KB {}-way SA {}B blocks, {} cycle",
            m.leading.l1_kib, m.leading.l1_assoc, m.block_bytes, m.leading.l1_latency
        ),
        format!(
            "{}KB {}-way, {}B",
            m.trailing.l1_kib, m.trailing.l1_assoc, m.block_bytes
        ),
    ]);
    t.row(vec![
        "Br. Pred.".into(),
        format!(
            "{}Kb gshare, {}-entry RAS, {}-entry indirect",
            m.gshare_counters * 2 / 1024,
            m.ras_entries,
            m.indirect_entries
        ),
        "same".into(),
    ]);
    t.row(vec![
        "L2 cache".into(),
        format!(
            "shared {}MB, {}-way SA, {}-cycle minimum",
            m.l2_kib / 1024,
            m.l2_assoc,
            m.l2_latency
        ),
        "shared".into(),
    ]);
    t.row(vec![
        "Coherence".into(),
        format!("{}-cycle minimum hop", m.coherence_hop),
        format!("{} cores", m.trailing_count),
    ]);
    t.row(vec![
        "Memory".into(),
        format!("{}-cycle latency minimum (after L2)", m.memory_latency),
        "shared".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_values() {
        let s = render();
        assert!(s.contains("4-wide, 12-stage"));
        assert!(s.contains("2-wide, 8-stage"));
        assert!(s.contains("128-entry"));
        assert!(s.contains("64KB 2-way"));
        assert!(s.contains("8Kb gshare"));
        assert!(s.contains("1MB"));
        assert!(s.contains("200-cycle"));
    }
}
