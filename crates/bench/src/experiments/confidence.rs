//! Extension: confidence-bound monitoring vs the paper's fixed window.
//!
//! A fixed monitor window spends the same budget on a perfectly biased
//! branch as on a borderline one. For the same *worst-case* budget,
//! Wilson-bound classification selects clearly biased branches as soon as
//! the evidence clears the threshold (~1.3k perfect samples at 99.5% /
//! z=2.58) and rejects clearly unbiased ones within tens of executions —
//! recovering most of the benefit a long window forfeits, with no extra
//! misspeculation.

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::{ControlStats, ControllerParams};
use rsc_trace::{spec2000, InputId};

/// Fixed-window vs confidence-monitor results for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// The paper's fixed window.
    pub fixed: ControlStats,
    /// Confidence-bound monitor.
    pub confidence: ControlStats,
}

/// Worst-case monitoring budget both monitors get (executions).
pub const BUDGET: u64 = 4_000;

/// The fixed-window comparator: the scaled preset with the whole budget as
/// its window.
pub fn fixed_params() -> ControllerParams {
    ControllerParams::scaled().with_monitor_period(BUDGET)
}

/// The confidence-monitor configuration: 99% intervals, at least 32
/// samples, forced decision at the same budget.
pub fn confidence_params() -> ControllerParams {
    fixed_params().with_confidence_monitor(2.58, 32, BUDGET)
}

/// Runs both monitors over the selected benchmarks.
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    names
        .iter()
        .map(|name| {
            let model = spec2000::benchmark(name).expect("known benchmark");
            let pop = model.population(opts.events);
            let run = |params| {
                rsc_control::engine::run_population(
                    params,
                    &pop,
                    InputId::Eval,
                    opts.events,
                    opts.seed,
                )
                .expect("valid params")
                .stats
            };
            Row {
                name: model.name,
                fixed: run(fixed_params()),
                confidence: run(confidence_params()),
            }
        })
        .collect()
}

/// Runs all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// Renders the comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "bmark",
        "fixed corr/incorr",
        "confidence corr/incorr",
        "benefit gain",
    ]);
    let mut gain = 0.0;
    for r in rows {
        let g = if r.fixed.correct_frac() > 0.0 {
            r.confidence.correct_frac() / r.fixed.correct_frac()
        } else {
            1.0
        };
        gain += g;
        t.row(vec![
            r.name.to_string(),
            format!(
                "{} / {}",
                pct(r.fixed.correct_frac(), 1),
                pct(r.fixed.incorrect_frac(), 3)
            ),
            format!(
                "{} / {}",
                pct(r.confidence.correct_frac(), 1),
                pct(r.confidence.incorrect_frac(), 3)
            ),
            format!("{:.2}x", g),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nmean benefit gain from confidence-bound monitoring: {:.2}x\n",
        gain / rows.len().max(1) as f64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_monitor_gains_benefit_without_misspec_blowup() {
        let rows = run_subset(
            &ExpOptions::small().with_events(4_000_000),
            &["gcc", "vortex"],
        );
        for r in &rows {
            assert!(
                r.confidence.correct_frac() > r.fixed.correct_frac(),
                "{}: confidence {:.3} should beat fixed {:.3}",
                r.name,
                r.confidence.correct_frac(),
                r.fixed.correct_frac()
            );
            assert!(
                r.confidence.incorrect_frac() < r.fixed.incorrect_frac() * 3.0 + 1e-4,
                "{}: confidence incorrect {:.4}% vs fixed {:.4}%",
                r.name,
                r.confidence.incorrect_frac() * 100.0,
                r.fixed.incorrect_frac() * 100.0
            );
        }
    }

    #[test]
    fn params_are_valid() {
        assert!(confidence_params().validate().is_ok());
    }
}
