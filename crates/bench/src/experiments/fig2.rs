//! Figure 2 — the correct/incorrect speculation trade-off:
//!
//! * the self-training Pareto curve (one line per benchmark),
//! * the 99%-threshold knee (●),
//! * the cross-input profile point (△),
//! * initial-behavior points for 5 training lengths (+).

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_profile::{evaluate, initial, offline, pareto, BranchProfile, SpeculationSet};
use rsc_trace::{spec2000, InputId};

/// All Figure 2 marks for one benchmark.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Sampled points of the self-training Pareto curve
    /// `(incorrect, correct)`, thinned for display.
    pub curve: Vec<(f64, f64)>,
    /// Self-training 99%-threshold point (the ● marker).
    pub knee: (f64, f64),
    /// Cross-input profile-guided point (the △ marker).
    pub cross_input: (f64, f64),
    /// Initial-behavior points, one per training length (the + markers):
    /// `(training length, incorrect, correct)`.
    pub initial: Vec<(u64, f64, f64)>,
}

/// Training lengths used for the + markers, scaled from the paper's
/// 1k–1M executions proportionally to the run-length scaling.
pub fn training_lengths(events: u64) -> Vec<u64> {
    // The paper's lengths assume branches that execute many millions of
    // times; at this scale hot branches execute thousands to a couple of
    // million times, so the per-branch training lengths are scaled by ~100x,
    // clamped to sane bounds.
    initial::PAPER_TRAINING_LENGTHS
        .iter()
        .map(|&n| (n / 100).clamp(50, events / 8))
        .collect()
}

/// Runs the Figure 2 experiment for all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    crate::parallel::par_map(spec2000::all(), |model| {
        let pop = model.population(opts.events);
        let eval_profile =
            BranchProfile::from_trace(pop.trace(InputId::Eval, opts.events, opts.seed));

        // Self-training curve and knee.
        let full_curve = pareto::curve(&eval_profile);
        let stride = (full_curve.len() / 16).max(1);
        let curve: Vec<(f64, f64)> = full_curve
            .iter()
            .step_by(stride)
            .map(|p| (p.incorrect, p.correct))
            .collect();
        let knee_pt = pareto::threshold_point(&eval_profile, 0.99);

        // Cross-input profile (the paper's Table 1 pairings).
        let cross = offline::cross_input_experiment(&pop, opts.events, opts.seed, 0.99, 32);
        let cross_input = (
            cross.cross_trained.incorrect_frac(),
            cross.cross_trained.correct_frac(),
        );

        // Initial-behavior training at several lengths.
        let initial_pts = training_lengths(opts.events)
            .into_iter()
            .map(|n| {
                let p =
                    initial::initial_profile(pop.trace(InputId::Eval, opts.events, opts.seed), n);
                let set = SpeculationSet::from_profile(&p, 0.99, n.min(100));
                let out = evaluate::evaluate_after_training(
                    &set,
                    pop.trace(InputId::Eval, opts.events, opts.seed),
                    n,
                );
                (n, out.incorrect_frac(), out.correct_frac())
            })
            .collect();

        Row {
            name: model.name,
            curve,
            knee: (knee_pt.incorrect, knee_pt.correct),
            cross_input,
            initial: initial_pts,
        }
    })
}

/// Renders the Figure 2 marks (curve summarized by its endpoint).
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec!["bmark", "mark", "incorrect", "correct"]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            "self-train knee (99%) ●".to_string(),
            pct(r.knee.0, 3),
            pct(r.knee.1, 1),
        ]);
        t.row(vec![
            String::new(),
            "cross-input profile △".to_string(),
            pct(r.cross_input.0, 3),
            pct(r.cross_input.1, 1),
        ]);
        for (n, inc, cor) in &r.initial {
            t.row(vec![
                String::new(),
                format!("initial behavior + ({n} execs)"),
                pct(*inc, 3),
                pct(*cor, 1),
            ]);
        }
    }
    t.render()
}

/// Aggregate degradation factors across benchmarks (the paper's summary:
/// cross-input loses ~3× benefit and gains ~10× misspeculation).
pub fn cross_input_summary(rows: &[Row]) -> (f64, f64) {
    let mut benefit_loss = 0.0;
    let mut misspec_gain = 0.0;
    let mut n = 0.0;
    for r in rows {
        if r.cross_input.1 > 0.0 && r.knee.0 > 0.0 {
            benefit_loss += r.knee.1 / r.cross_input.1;
            misspec_gain += r.cross_input.0 / r.knee.0.max(1e-9);
            n += 1.0;
        }
    }
    if n == 0.0 {
        (0.0, 0.0)
    } else {
        (benefit_loss / n, misspec_gain / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_lengths_scale_and_clamp() {
        let l = training_lengths(16_000_000);
        assert_eq!(l.len(), 5);
        for w in l.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(l[0] >= 50);
        assert!(*l.last().unwrap() <= 2_000_000);
    }

    #[test]
    fn knee_dominates_cross_input() {
        let rows = run(&ExpOptions::small().with_events(400_000));
        // On average the cross-input point must be strictly worse.
        let (benefit_loss, misspec_gain) = cross_input_summary(&rows);
        assert!(benefit_loss > 1.2, "benefit loss factor {benefit_loss}");
        assert!(misspec_gain > 1.5, "misspec gain factor {misspec_gain}");
    }

    #[test]
    fn curve_points_are_monotone() {
        let rows = run(&ExpOptions::small().with_events(200_000));
        for r in &rows {
            for w in r.curve.windows(2) {
                assert!(w[1].0 >= w[0].0, "{}", r.name);
                assert!(w[1].1 >= w[0].1, "{}", r.name);
            }
        }
    }

    #[test]
    fn render_mentions_all_marks() {
        let rows = run(&ExpOptions::small().with_events(200_000));
        let s = render(&rows);
        assert!(s.contains("●"));
        assert!(s.contains("△"));
        assert!(s.contains("initial behavior"));
    }
}
