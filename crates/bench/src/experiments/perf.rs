//! `repro perf` — events/sec per pipeline stage, per-event vs chunked.
//!
//! Measures the simulation pipeline's throughput stage by stage: trace
//! generation, the trace→controller loop, offline profile accumulation,
//! and one MSSP machine step pass. For each stage with both code paths,
//! the per-event baseline (the `Iterator`/`observe`/`record` path, full
//! transition logging) and the chunked hot path
//! ([`rsc_trace::Trace::fill`] into a reusable buffer feeding
//! `observe_chunk`/`record_chunk`, counts-only logging) are timed in the
//! same run so the speedup column compares like with like.

use crate::options::ExpOptions;
use crate::table::TextTable;
use rsc_control::{ControllerParams, ReactiveController, TransitionLogPolicy};
use rsc_mssp::{machine, MachineConfig};
use rsc_profile::BranchProfile;
use rsc_trace::{spec2000, BranchId, BranchRecord, InputId, Population};
use std::hint::black_box;
use std::time::Instant;

/// The benchmark model driving the measurement (mid-sized branch
/// population, both stationary and phased behaviors).
const BENCHMARK: &str = "gcc";

/// Chunk size for the chunked paths (matches the engine default).
const CHUNK: usize = 4096;

/// Chunk size for the sharded scaling sweep. The engine routes each
/// chunk internally in 64Ki-event blocks, so the chunk size mostly sets
/// how often the caller crosses the engine boundary; 1M events keeps
/// that crossing (and the pool dispatch underneath it) far below the
/// per-chunk controller work.
const SHARD_CHUNK: usize = 1 << 20;

/// One timed code path: how many events it processed and the best
/// wall-clock time over the measurement repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Events processed per repetition.
    pub events: u64,
    /// Best-of-reps wall-clock seconds.
    pub secs: f64,
}

impl Throughput {
    /// Events per second.
    pub fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            f64::INFINITY
        }
    }
}

/// One pipeline stage: the per-event baseline and, where a chunked path
/// exists, its chunked counterpart.
#[derive(Debug, Clone, Copy)]
pub struct StageRow {
    /// Stage name (`trace_gen`, `trace_to_controller`, …).
    pub stage: &'static str,
    /// The per-event reference path.
    pub per_event: Throughput,
    /// The chunked hot path (`None` for stages without one).
    pub chunked: Option<Throughput>,
}

impl StageRow {
    /// Chunked speedup over the per-event path, if both were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.chunked
            .map(|c| c.events_per_sec() / self.per_event.events_per_sec())
    }
}

/// Times `f` (which returns the number of events it processed) and keeps
/// the best of `reps` repetitions after one untimed warmup.
fn time<F: FnMut() -> u64>(mut f: F, reps: u32) -> Throughput {
    black_box(f());
    let mut events = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        events = black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    Throughput { events, secs: best }
}

/// Times two code paths with interleaved repetitions (a, b, a, b, …) so
/// both sample the same machine conditions; background interference then
/// perturbs the two best-of times together instead of skewing their ratio.
fn time_pair<A, B>(mut a: A, mut b: B, reps: u32) -> (Throughput, Throughput)
where
    A: FnMut() -> u64,
    B: FnMut() -> u64,
{
    black_box(a());
    black_box(b());
    let (mut events_a, mut events_b) = (0, 0);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        events_a = black_box(a());
        best_a = best_a.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        events_b = black_box(b());
        best_b = best_b.min(t.elapsed().as_secs_f64());
    }
    (
        Throughput {
            events: events_a,
            secs: best_a,
        },
        Throughput {
            events: events_b,
            secs: best_b,
        },
    )
}

fn record_buf() -> Vec<BranchRecord> {
    vec![
        BranchRecord {
            branch: BranchId::new(0),
            taken: false,
            instr: 0
        };
        CHUNK
    ]
}

fn trace_gen(pop: &Population, events: u64, seed: u64, reps: u32) -> StageRow {
    let mut buf = record_buf();
    let (per_event, chunked) = time_pair(
        || {
            let mut sink = 0u64;
            for r in pop.trace(InputId::Eval, events, seed) {
                sink = sink.wrapping_add(r.instr) ^ u64::from(r.taken);
            }
            black_box(sink);
            events
        },
        || {
            let mut sink = 0u64;
            let mut trace = pop.trace(InputId::Eval, events, seed);
            loop {
                let n = trace.fill(&mut buf);
                if n == 0 {
                    break;
                }
                for r in &buf[..n] {
                    sink = sink.wrapping_add(r.instr) ^ u64::from(r.taken);
                }
            }
            black_box(sink);
            events
        },
        reps,
    );
    StageRow {
        stage: "trace_gen",
        per_event,
        chunked: Some(chunked),
    }
}

fn trace_to_controller(pop: &Population, events: u64, seed: u64, reps: u32) -> StageRow {
    let params = ControllerParams::scaled();
    let mut buf = record_buf();
    let (per_event, chunked) = time_pair(
        || {
            let mut ctl = ReactiveController::builder(params)
                .build()
                .expect("valid params");
            for r in pop.trace(InputId::Eval, events, seed) {
                ctl.observe(&r);
            }
            black_box(ctl.stats().correct);
            events
        },
        || {
            let mut ctl = ReactiveController::builder(params)
                .log_policy(TransitionLogPolicy::CountsOnly)
                .build()
                .expect("valid params");
            let mut trace = pop.trace(InputId::Eval, events, seed);
            loop {
                let n = trace.fill(&mut buf);
                if n == 0 {
                    break;
                }
                ctl.observe_chunk(&buf[..n]);
            }
            black_box(ctl.stats().correct);
            events
        },
        reps,
    );
    StageRow {
        stage: "trace_to_controller",
        per_event,
        chunked: Some(chunked),
    }
}

fn offline_profile(pop: &Population, events: u64, seed: u64, reps: u32) -> StageRow {
    let (per_event, chunked) = time_pair(
        || {
            let p = BranchProfile::from_trace(pop.trace(InputId::Profile, events, seed));
            black_box(p.events());
            events
        },
        || {
            let p =
                BranchProfile::from_trace_chunked(&mut pop.trace(InputId::Profile, events, seed));
            black_box(p.events());
            events
        },
        reps,
    );
    StageRow {
        stage: "offline_profile",
        per_event,
        chunked: Some(chunked),
    }
}

fn mssp_step(pop: &Population, events: u64, seed: u64, reps: u32) -> StageRow {
    // The cycle-level machine is ~20× more work per event than the
    // controller; a smaller slice keeps `repro perf` interactive while the
    // events/sec figure stays representative.
    let events = (events / 8).max(50_000);
    let machine_cfg = MachineConfig::table5();
    // The chunked path must be bit-identical, not just fast; assert it on
    // the measured workload before timing.
    assert_eq!(
        machine::run_baseline(pop, InputId::Eval, events, seed, &machine_cfg),
        machine::run_baseline_chunked(pop, InputId::Eval, events, seed, &machine_cfg),
        "chunked mssp path diverged from the per-event oracle"
    );
    let (per_event, chunked) = time_pair(
        || {
            let cycles = machine::run_baseline(pop, InputId::Eval, events, seed, &machine_cfg);
            black_box(cycles);
            events
        },
        || {
            let cycles =
                machine::run_baseline_chunked(pop, InputId::Eval, events, seed, &machine_cfg);
            black_box(cycles);
            events
        },
        reps,
    );
    StageRow {
        stage: "mssp_step",
        per_event,
        chunked: Some(chunked),
    }
}

/// Runs every stage measurement. `opts.events` sets the per-repetition
/// event count; the MSSP stage runs a smaller slice (see its row's
/// `events` field).
pub fn run(opts: &ExpOptions) -> Vec<StageRow> {
    let pop = spec2000::benchmark(BENCHMARK)
        .expect("benchmark exists")
        .population(opts.events);
    let reps = 4;
    vec![
        trace_gen(&pop, opts.events, opts.seed, reps),
        trace_to_controller(&pop, opts.events, opts.seed, reps),
        offline_profile(&pop, opts.events, opts.seed, reps),
        mssp_step(&pop, opts.events, opts.seed, reps),
    ]
}

/// One shard count's controller-phase throughput in the `--shards`
/// scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ShardRow {
    /// Worker shard count the engine was built with.
    pub shards: usize,
    /// Best-of-reps controller-phase throughput at this count.
    pub throughput: Throughput,
    /// Speedup relative to the sweep's first row (shard count 1).
    pub speedup_vs_1: f64,
}

/// The shard counts measured for `--shards N`: powers of two up to `N`,
/// plus `N` itself when it is not a power of two.
pub fn shard_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    while counts.last().copied().unwrap_or(1) * 2 <= max {
        counts.push(counts.last().unwrap() * 2);
    }
    if counts.last().copied() != Some(max) && max >= 1 {
        counts.push(max);
    }
    counts
}

/// Measures the controller phase alone (trace pre-materialized, so no
/// generation cost in the timed region) once per shard count. The trace
/// is fed in [`SHARD_CHUNK`]-event chunks through
/// [`rsc_control::ShardedController::observe_chunk`]; speedups are
/// relative to the first row, which callers should make shard count 1.
///
/// Two effects combine in the measured speedup: branch-grouped routing
/// (the single-pass counting sort feeding the bulk observe arms, which
/// pays off even with one worker thread) and physical parallelism across
/// the persistent pool's workers. A shard count of 1 bypasses routing
/// entirely — plain sequential `observe_chunk` — so the first row is an
/// honest baseline. On a single-core host only the routing effect
/// remains, worth roughly 1.1–1.3x at 2–4 shards; multi-core hosts add
/// pool parallelism on top.
pub fn run_shards(opts: &ExpOptions, counts: &[usize]) -> Vec<ShardRow> {
    let pop = spec2000::benchmark(BENCHMARK)
        .expect("benchmark exists")
        .population(opts.events);
    let trace: Vec<BranchRecord> = pop.trace(InputId::Eval, opts.events, opts.seed).collect();
    let params = ControllerParams::scaled();
    let reps = 3;
    let mut rows: Vec<ShardRow> = Vec::new();
    for &n in counts {
        let throughput = time(
            || {
                let mut ctl = ReactiveController::builder(params)
                    .log_policy(TransitionLogPolicy::CountsOnly)
                    .shards(n)
                    .build_sharded()
                    .expect("valid params");
                for chunk in trace.chunks(SHARD_CHUNK) {
                    ctl.observe_chunk(chunk);
                }
                black_box(ctl.stats().correct);
                trace.len() as u64
            },
            reps,
        );
        let base = rows
            .first()
            .map(|r| r.throughput.events_per_sec())
            .unwrap_or_else(|| throughput.events_per_sec());
        rows.push(ShardRow {
            shards: n,
            throughput,
            speedup_vs_1: throughput.events_per_sec() / base,
        });
    }
    rows
}

/// Renders the shard-scaling table.
pub fn render_shards(rows: &[ShardRow]) -> String {
    let mut t = TextTable::new(vec!["shards", "events", "ev/s", "speedup vs 1"]);
    for r in rows {
        t.row(vec![
            r.shards.to_string(),
            r.throughput.events.to_string(),
            format!("{:.3e}", r.throughput.events_per_sec()),
            format!("{:.2}x", r.speedup_vs_1),
        ]);
    }
    t.render()
}

/// Runs the `--shards N` workload once more with metrics attached and
/// returns the merged aggregate registry (per-shard labeled families
/// included) — the `--metrics-out` payload for a sharded perf run.
pub fn instrumented_sharded_registry(
    opts: &ExpOptions,
    shards: usize,
) -> rsc_control::MetricsRegistry {
    let pop = spec2000::benchmark(BENCHMARK)
        .expect("benchmark exists")
        .population(opts.events);
    let mut ctl = ReactiveController::builder(ControllerParams::scaled())
        .log_policy(TransitionLogPolicy::CountsOnly)
        .metrics()
        .shards(shards)
        .build_sharded()
        .expect("valid params");
    let mut buf = vec![
        BranchRecord {
            branch: BranchId::new(0),
            taken: false,
            instr: 0
        };
        SHARD_CHUNK
    ];
    let mut trace = pop.trace(InputId::Eval, opts.events, opts.seed);
    loop {
        let n = trace.fill(&mut buf);
        if n == 0 {
            break;
        }
        ctl.observe_chunk(&buf[..n]);
    }
    ctl.metrics().expect("metrics were enabled")
}

/// Runs the perf workload once more with the metrics registry attached
/// and returns it — the payload behind `repro perf --metrics-out`. Uses
/// the same benchmark, event count, and seed as the timed rows so the
/// exported counters describe the measured run.
pub fn instrumented_registry(opts: &ExpOptions) -> rsc_control::MetricsRegistry {
    let pop = spec2000::benchmark(BENCHMARK)
        .expect("benchmark exists")
        .population(opts.events);
    let builder = ReactiveController::builder(ControllerParams::scaled())
        .log_policy(TransitionLogPolicy::CountsOnly)
        .metrics();
    let (_, ctl) = rsc_control::run_population_chunked_with(
        builder,
        &pop,
        InputId::Eval,
        opts.events,
        opts.seed,
    )
    .expect("valid params");
    ctl.metrics().expect("metrics were enabled")
}

/// Renders the throughput table.
pub fn render(rows: &[StageRow]) -> String {
    let mut t = TextTable::new(vec![
        "stage",
        "events",
        "per-event ev/s",
        "chunked ev/s",
        "speedup",
    ]);
    for r in rows {
        t.row(vec![
            r.stage.into(),
            r.per_event.events.to_string(),
            format!("{:.3e}", r.per_event.events_per_sec()),
            r.chunked
                .map(|c| format!("{:.3e}", c.events_per_sec()))
                .unwrap_or_default(),
            r.speedup().map(|s| format!("{s:.2}x")).unwrap_or_default(),
        ]);
    }
    t.render()
}

/// Serializes the rows as JSON (the `BENCH_pipeline.json` payload).
/// `shard_rows` is empty when the run had no `--shards` sweep; the
/// `shard_scaling` array is emitted either way so consumers can probe
/// one stable schema.
pub fn to_json(rows: &[StageRow], shard_rows: &[ShardRow], opts: &ExpOptions) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"benchmark\": \"{BENCHMARK}\",\n"));
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&format!("  \"chunk_events\": {CHUNK},\n"));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        crate::parallel::max_threads()
    ));
    out.push_str("  \"shard_scaling\": [\n");
    for (i, r) in shard_rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"shards\": {},\n", r.shards));
        out.push_str(&format!("      \"events\": {},\n", r.throughput.events));
        out.push_str(&format!(
            "      \"events_per_sec\": {:.1},\n",
            r.throughput.events_per_sec()
        ));
        out.push_str(&format!("      \"speedup_vs_1\": {:.3}\n", r.speedup_vs_1));
        out.push_str(if i + 1 == shard_rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"stages\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"stage\": \"{}\",\n", r.stage));
        out.push_str(&format!("      \"events\": {},\n", r.per_event.events));
        out.push_str(&format!(
            "      \"per_event_events_per_sec\": {:.1},\n",
            r.per_event.events_per_sec()
        ));
        // Every stage has a chunked path now; a missing measurement is a
        // wiring bug and must not be papered over with `null` in the
        // exported benchmark file.
        let c = r.chunked.unwrap_or_else(|| {
            panic!(
                "stage {} is missing its chunked measurement; refusing to export null",
                r.stage
            )
        });
        out.push_str(&format!(
            "      \"chunked_events_per_sec\": {:.1},\n",
            c.events_per_sec()
        ));
        out.push_str(&format!(
            "      \"speedup\": {:.3}\n",
            r.speedup().expect("chunked implies speedup")
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_report_positive_throughput() {
        let rows = run(&ExpOptions::small().with_events(60_000));
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.per_event.events_per_sec() > 0.0, "{}", r.stage);
            assert!(r.per_event.events > 0, "{}", r.stage);
        }
        let names: Vec<&str> = rows.iter().map(|r| r.stage).collect();
        assert_eq!(
            names,
            vec![
                "trace_gen",
                "trace_to_controller",
                "offline_profile",
                "mssp_step"
            ]
        );
        // Every stage, MSSP included, reports a chunked speedup.
        for r in &rows {
            let s = r
                .speedup()
                .unwrap_or_else(|| panic!("{} has no speedup", r.stage));
            assert!(s > 0.0, "{}: speedup {s}", r.stage);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![
            StageRow {
                stage: "trace_gen",
                per_event: Throughput {
                    events: 1000,
                    secs: 0.5,
                },
                chunked: Some(Throughput {
                    events: 1000,
                    secs: 0.25,
                }),
            },
            StageRow {
                stage: "mssp_step",
                per_event: Throughput {
                    events: 100,
                    secs: 0.5,
                },
                chunked: Some(Throughput {
                    events: 100,
                    secs: 0.1,
                }),
            },
        ];
        let shard_rows = vec![
            ShardRow {
                shards: 1,
                throughput: Throughput {
                    events: 1000,
                    secs: 0.4,
                },
                speedup_vs_1: 1.0,
            },
            ShardRow {
                shards: 4,
                throughput: Throughput {
                    events: 1000,
                    secs: 0.1,
                },
                speedup_vs_1: 4.0,
            },
        ];
        for shards in [&[][..], &shard_rows[..]] {
            let json = to_json(&rows, shards, &ExpOptions::small());
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('[').count(), json.matches(']').count());
            assert!(json.contains("\"speedup\": 2.000"));
            assert!(json.contains("\"speedup\": 5.000"));
            assert!(!json.contains("null"), "no stage may export null");
            assert!(json.contains("\"shard_scaling\": ["));
            assert!(json.contains("\"threads\": "));
            assert!(json.ends_with("}\n"));
        }
        let json = to_json(&rows, &shard_rows, &ExpOptions::small());
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"speedup_vs_1\": 4.000"));
    }

    #[test]
    #[should_panic(expected = "missing its chunked measurement")]
    fn export_fails_loudly_on_missing_chunked_measurement() {
        let rows = vec![StageRow {
            stage: "mssp_step",
            per_event: Throughput {
                events: 100,
                secs: 0.5,
            },
            chunked: None,
        }];
        let _ = to_json(&rows, &[], &ExpOptions::small());
    }

    #[test]
    fn shard_counts_are_powers_of_two_plus_max() {
        assert_eq!(shard_counts(1), vec![1]);
        assert_eq!(shard_counts(4), vec![1, 2, 4]);
        assert_eq!(shard_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(shard_counts(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn shard_sweep_reports_consistent_rows() {
        let opts = ExpOptions::small().with_events(40_000);
        let rows = run_shards(&opts, &shard_counts(3));
        assert_eq!(
            rows.iter().map(|r| r.shards).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        for r in &rows {
            assert_eq!(r.throughput.events, 40_000);
            assert!(r.throughput.events_per_sec() > 0.0);
            assert!(r.speedup_vs_1 > 0.0);
        }
        assert_eq!(rows[0].speedup_vs_1, 1.0);
    }

    #[test]
    fn sharded_registry_matches_sequential_totals() {
        let opts = ExpOptions::small().with_events(30_000);
        let sharded = instrumented_sharded_registry(&opts, 4);
        let sequential = instrumented_registry(&opts);
        for name in ["rsc_events_total", "rsc_spec_incorrect_total"] {
            assert_eq!(
                sharded.counter_value(name),
                sequential.counter_value(name),
                "{name}"
            );
        }
        assert!(sharded
            .render_prometheus()
            .contains("rsc_shard_events_total"));
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            events: 1_000,
            secs: 0.5,
        };
        assert_eq!(t.events_per_sec(), 2_000.0);
        let z = Throughput {
            events: 1_000,
            secs: 0.0,
        };
        assert!(z.events_per_sec().is_infinite());
    }
}
