//! Figure 3 — five gap branches with initially invariant behavior: bias
//! averaged over blocks of 1,000 dynamic instances.
//!
//! The point of the figure: these branches are indistinguishable from truly
//! biased branches for at least their first ~20 blocks, then change —
//! sometimes reversing completely.

use crate::options::ExpOptions;
use crate::table::TextTable;
use rsc_control::analysis::blocks::{self, BlockBiasSeries};
use rsc_trace::{spec2000, InputId};

/// The block-bias series of the selected branches.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// One series per selected branch.
    pub series: Vec<BlockBiasSeries>,
}

/// Runs Figure 3 on the gap model: the five hottest behavior-changing
/// branches, block length 1,000.
pub fn run(opts: &ExpOptions) -> Fig3Data {
    run_on("gap", opts, 5, 1000)
}

/// Runs the analysis on any benchmark.
pub fn run_on(benchmark: &str, opts: &ExpOptions, count: usize, block: u64) -> Fig3Data {
    let model = spec2000::benchmark(benchmark).expect("known benchmark");
    let pop = model.population(opts.events);
    let ids = blocks::changing_branches(&pop, count);
    let series = blocks::block_bias_series(
        pop.trace(InputId::Eval, opts.events, opts.seed),
        &ids,
        block,
    );
    Fig3Data { series }
}

/// Renders a coarse sparkline per branch plus summary columns.
pub fn render(data: &Fig3Data) -> String {
    let mut t = TextTable::new(vec![
        "branch",
        "blocks",
        "initially-biased blocks (>=99%)",
        "bias trajectory (sampled)",
    ]);
    for s in &data.series {
        let bias = s.initial_direction_bias();
        let stride = (bias.len() / 32).max(1);
        let spark: String = bias
            .iter()
            .step_by(stride)
            .map(|&b| {
                if b >= 0.99 {
                    '█'
                } else if b >= 0.9 {
                    '▇'
                } else if b >= 0.7 {
                    '▅'
                } else if b >= 0.5 {
                    '▃'
                } else if b >= 0.3 {
                    '▂'
                } else {
                    '_'
                }
            })
            .collect();
        t.row(vec![
            s.branch.to_string(),
            bias.len().to_string(),
            s.initially_biased_blocks(0.99).to_string(),
            spark,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_five_changing_branches() {
        let data = run(&ExpOptions::small().with_events(2_000_000));
        assert_eq!(data.series.len(), 5);
    }

    #[test]
    fn branches_start_biased_then_change() {
        // The figure's defining property: initially biased, later not. Use
        // a finer block length so reduced-scale branches still resolve.
        let data = run_on("gap", &ExpOptions::small().with_events(4_000_000), 5, 400);
        let mut changed = 0;
        for s in &data.series {
            let bias = s.initial_direction_bias();
            if bias.is_empty() {
                continue;
            }
            let head = s.initially_biased_blocks(0.95);
            let min_later = bias
                .iter()
                .skip(head.max(1))
                .cloned()
                .fold(1.0_f64, f64::min);
            if head >= 1 && min_later < 0.9 {
                changed += 1;
            }
        }
        assert!(
            changed >= 3,
            "only {changed} of 5 branches show the pattern"
        );
    }

    #[test]
    fn render_shows_sparkline() {
        let data = run(&ExpOptions::small().with_events(500_000));
        let s = render(&data);
        assert!(s.contains("br"));
        assert!(s.contains("blocks"));
    }
}
