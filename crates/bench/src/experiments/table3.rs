//! Table 3 — model transition data: per benchmark, how many branches are
//! touched / classified biased / evicted, the fraction of dynamic branches
//! speculated, and the distance between misspeculations.

use crate::options::ExpOptions;
use crate::table::{opt_u64, pct, TextTable};
use rsc_control::{engine, ControlStats, ControllerParams};
use rsc_trace::{spec2000, InputId, PaperReference};

/// One benchmark's measured row plus the paper's reference values.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured statistics.
    pub stats: ControlStats,
    /// Paper-reported values.
    pub paper: PaperReference,
}

/// Runs the baseline reactive controller over all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_with(opts, ControllerParams::scaled())
}

/// Runs a specific configuration over all benchmarks.
pub fn run_with(opts: &ExpOptions, params: ControllerParams) -> Vec<Row> {
    crate::parallel::par_map(spec2000::all(), |model| {
        let pop = model.population(opts.events);
        let result = engine::run_population(params, &pop, InputId::Eval, opts.events, opts.seed)
            .expect("experiment parameters are valid");
        Row {
            name: model.name,
            stats: result.stats,
            paper: model.paper.clone(),
        }
    })
}

/// Aggregates rows the way the paper's "ave" row does.
pub fn average(rows: &[Row]) -> ControlStats {
    let mut total = ControlStats::default();
    for r in rows {
        total.accumulate(&r.stats);
    }
    total
}

/// Renders the paper-vs-measured comparison table.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "bmark",
        "touch",
        "bias(p)",
        "bias(m)",
        "evict(p)",
        "evict(m)",
        "evicts(p)",
        "evicts(m)",
        "%spec(p)",
        "%spec(m)",
        "dist(p)",
        "dist(m)",
    ]);
    let mut bias_frac = 0.0;
    let mut evict_frac = 0.0;
    let mut spec = 0.0;
    let mut dist = 0.0;
    let mut dist_n = 0usize;
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            r.stats.touched.to_string(),
            r.paper.biased.to_string(),
            r.stats.entered_biased.to_string(),
            r.paper.evicted.to_string(),
            r.stats.evicted_branches.to_string(),
            r.paper.total_evicts.to_string(),
            r.stats.total_evictions.to_string(),
            format!("{:.1}%", r.paper.pct_spec),
            pct(r.stats.correct_frac(), 1),
            r.paper.misspec_dist.to_string(),
            opt_u64(r.stats.misspec_distance()),
        ]);
        bias_frac += r.stats.biased_frac();
        evict_frac += r.stats.evicted_frac();
        spec += r.stats.correct_frac();
        if let Some(d) = r.stats.misspec_distance() {
            dist += d as f64;
            dist_n += 1;
        }
    }
    let n = rows.len().max(1) as f64;
    t.row(vec![
        "ave".to_string(),
        String::new(),
        "34%".to_string(),
        pct(bias_frac / n, 0),
        "2%".to_string(),
        pct(evict_frac / n, 1),
        "76".to_string(),
        format!(
            "{:.0}",
            rows.iter().map(|r| r.stats.total_evictions).sum::<u64>() as f64 / n
        ),
        "44.8%".to_string(),
        pct(spec / n, 1),
        "65000".to_string(),
        format!(
            "{:.0}",
            if dist_n == 0 {
                0.0
            } else {
                dist / dist_n as f64
            }
        ),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_benchmarks() {
        let rows = run(&ExpOptions::small());
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.stats.events > 0, "{}", r.name);
            assert!(r.stats.touched > 0, "{}", r.name);
        }
    }

    #[test]
    fn render_contains_benchmarks_and_average() {
        let rows = run(&ExpOptions::small());
        let s = render(&rows);
        assert!(s.contains("gcc"));
        assert!(s.contains("ave"));
    }

    #[test]
    fn average_accumulates() {
        let rows = run(&ExpOptions::small());
        let avg = average(&rows);
        assert_eq!(avg.events, rows.iter().map(|r| r.stats.events).sum::<u64>());
    }
}
