//! The oscillation cap (Section 3.1, mitigation 4): a small number of
//! branches would otherwise oscillate in and out of the biased state
//! hundreds of times; refusing to optimize them again after a threshold
//! cuts requested re-optimizations by about two-thirds on average with
//! little effect on results.

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::ControllerParams;
use rsc_trace::{spec2000, InputId};

/// Re-optimization load with and without the oscillation cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Re-optimization requests with the cap (baseline).
    pub capped_reopts: u64,
    /// Re-optimization requests with the cap removed.
    pub uncapped_reopts: u64,
    /// Branches disabled by the cap.
    pub disabled: usize,
    /// Correct-speculation fraction with the cap.
    pub capped_correct: f64,
    /// Correct-speculation fraction without the cap.
    pub uncapped_correct: f64,
}

/// Runs both configurations over all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// Runs both configurations over selected benchmarks.
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    let capped = ControllerParams::scaled();
    let uncapped = ControllerParams {
        oscillation_limit: None,
        ..capped
    };
    names
        .iter()
        .map(|n| spec2000::benchmark(n).expect("known benchmark"))
        .map(|model| {
            let pop = model.population(opts.events);
            let with_cap = rsc_control::engine::run_population(
                capped,
                &pop,
                InputId::Eval,
                opts.events,
                opts.seed,
            )
            .expect("valid params");
            let without_cap = rsc_control::engine::run_population(
                uncapped,
                &pop,
                InputId::Eval,
                opts.events,
                opts.seed,
            )
            .expect("valid params");
            Row {
                name: model.name,
                capped_reopts: with_cap.stats.reopt_requests,
                uncapped_reopts: without_cap.stats.reopt_requests,
                disabled: with_cap.stats.disabled_branches,
                capped_correct: with_cap.stats.correct_frac(),
                uncapped_correct: without_cap.stats.correct_frac(),
            }
        })
        .collect()
}

/// Average reduction in re-optimization requests due to the cap.
pub fn mean_reduction(rows: &[Row]) -> f64 {
    let mut total = 0.0;
    let mut n = 0.0;
    for r in rows {
        if r.uncapped_reopts > 0 {
            total += 1.0 - r.capped_reopts as f64 / r.uncapped_reopts as f64;
            n += 1.0;
        }
    }
    if n == 0.0 {
        0.0
    } else {
        total / n
    }
}

/// Renders the comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "bmark",
        "reopts (cap)",
        "reopts (no cap)",
        "disabled",
        "correct (cap)",
        "correct (no cap)",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            r.capped_reopts.to_string(),
            r.uncapped_reopts.to_string(),
            r.disabled.to_string(),
            pct(r.capped_correct, 1),
            pct(r.uncapped_correct, 1),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nmean re-optimization reduction from the cap: {:.0}% \
         (paper: ~two-thirds for oscillating branches, little result impact)\n",
        mean_reduction(rows) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_reduces_reoptimizations_without_hurting_benefit() {
        let rows = run_subset(
            &ExpOptions::small().with_events(8_000_000),
            &["bzip2", "mcf"],
        );
        let reduction = mean_reduction(&rows);
        assert!(reduction > 0.0, "cap should reduce re-optimizations");
        let benefit_loss: f64 = rows
            .iter()
            .map(|r| (r.uncapped_correct - r.capped_correct).max(0.0))
            .sum::<f64>()
            / rows.len() as f64;
        assert!(
            benefit_loss < 0.02,
            "cap should barely affect benefit, lost {benefit_loss:.4}"
        );
    }

    #[test]
    fn some_branches_get_disabled() {
        let rows = run_subset(
            &ExpOptions::small().with_events(8_000_000),
            &["bzip2", "mcf"],
        );
        let disabled: usize = rows.iter().map(|r| r.disabled).sum();
        assert!(disabled > 0, "oscillators should trip the cap somewhere");
    }
}
