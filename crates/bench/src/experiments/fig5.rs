//! Figure 5 — reactive control vs self-training, per benchmark.
//!
//! For each benchmark we print the self-training 99%-threshold point (the
//! reference curve's knee) and the reactive model's achieved
//! (incorrect, correct) point for the baseline plus each sensitivity
//! variant. The paper's observation: all configurations except *no
//! eviction* and *no revisit* collocate near the self-training point.

use crate::experiments::table4;
use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::ControllerParams;
use rsc_profile::{pareto, BranchProfile};
use rsc_trace::{spec2000, InputId};

/// Reactive-vs-self-training points for one benchmark.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Self-training point at the 99% threshold (fractions of dynamic
    /// branches: incorrect, correct).
    pub self_training: (f64, f64),
    /// `(config name, incorrect, correct)` for each configuration.
    pub reactive: Vec<(&'static str, f64, f64)>,
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    crate::parallel::par_map(spec2000::all(), |model| {
        let pop = model.population(opts.events);
        let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, opts.events, opts.seed));
        let st = pareto::threshold_point(&profile, 0.99);
        let reactive = table4::CONFIG_NAMES
            .iter()
            .map(|&name| {
                let params = table4::config(ControllerParams::scaled(), name);
                let r = rsc_control::engine::run_population(
                    params,
                    &pop,
                    InputId::Eval,
                    opts.events,
                    opts.seed,
                )
                .expect("valid params");
                (name, r.stats.incorrect_frac(), r.stats.correct_frac())
            })
            .collect();
        Row {
            name: model.name,
            self_training: (st.incorrect, st.correct),
            reactive,
        }
    })
}

/// Renders the per-benchmark comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec!["bmark", "series", "incorrect", "correct"]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            "self-training @99%".to_string(),
            pct(r.self_training.0, 3),
            pct(r.self_training.1, 1),
        ]);
        for (name, inc, cor) in &r.reactive {
            t.row(vec![
                String::new(),
                format!("reactive: {name}"),
                pct(*inc, 3),
                pct(*cor, 1),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_benchmark(events: u64) -> Row {
        let model = spec2000::benchmark("gzip").unwrap();
        let pop = model.population(events);
        let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, events, 42));
        let st = pareto::threshold_point(&profile, 0.99);
        let params = ControllerParams::scaled();
        let r =
            rsc_control::engine::run_population(params, &pop, InputId::Eval, events, 42).unwrap();
        Row {
            name: "gzip",
            self_training: (st.incorrect, st.correct),
            reactive: vec![("baseline", r.stats.incorrect_frac(), r.stats.correct_frac())],
        }
    }

    #[test]
    fn reactive_baseline_is_competitive_with_self_training() {
        let row = one_benchmark(2_000_000);
        let (_, inc, cor) = row.reactive[0];
        // Within striking distance of self-training benefit...
        assert!(
            cor > row.self_training.1 * 0.7,
            "reactive {cor} vs self-training {}",
            row.self_training.1
        );
        // ...at a very low misspeculation rate.
        assert!(inc < 0.01, "incorrect fraction {inc}");
    }

    #[test]
    fn render_includes_all_series() {
        let rows = run(&ExpOptions::small().with_events(200_000));
        let s = render(&rows);
        assert!(s.contains("self-training @99%"));
        assert!(s.contains("reactive: no eviction"));
        assert!(s.contains("vortex"));
    }
}
