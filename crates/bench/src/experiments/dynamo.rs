//! Testing the paper's Section 5 prediction about Dynamo.
//!
//! Dynamo does not monitor individual branches; instead it preemptively
//! flushes its whole fragment cache when it suspects a phase change,
//! forcing re-optimization of everything. The paper predicts: "this policy
//! will likely perform somewhere between closed-loop and open-loop
//! policies." We implement a flush policy — one-shot classification (no
//! eviction, no revisit) plus a periodic whole-table flush — and check the
//! prediction on the abstract model.

use crate::options::ExpOptions;
use crate::table::{pct, TextTable};
use rsc_control::{ControlStats, ControllerParams, ReactiveController, TransitionLogPolicy};
use rsc_trace::{spec2000, InputId, Population};

/// Misspeculation rates for the three policies on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Closed loop (baseline reactive).
    pub closed: ControlStats,
    /// Flush policy (open loop + periodic flush).
    pub flush: ControlStats,
    /// Open loop (no eviction, no revisit after first classification).
    pub open: ControlStats,
}

/// Runs a one-shot controller with a periodic whole-table flush.
pub fn run_flush_policy(
    population: &Population,
    events: u64,
    seed: u64,
    flush_every: u64,
) -> ControlStats {
    assert!(flush_every > 0, "flush period must be positive");
    // Dynamo has no per-branch reactivity: no eviction arc; unbiased
    // fragments are reconsidered only via the flush.
    let params = ControllerParams::scaled()
        .without_eviction()
        .without_revisit();
    let mut ctl = ReactiveController::builder(params)
        .log_policy(TransitionLogPolicy::CountsOnly)
        .build()
        .expect("valid params");
    let mut next_flush = flush_every;
    for (i, r) in population.trace(InputId::Eval, events, seed).enumerate() {
        if i as u64 >= next_flush {
            ctl.flush_all();
            next_flush += flush_every;
        }
        ctl.observe(&r);
    }
    ctl.stats()
}

/// Runs all three policies over the selected benchmarks. The flush period
/// defaults to a third of the run (a couple of "phase changes" — Dynamo
/// flushes are rare events, and each flush forces every branch through a
/// fresh monitor period).
pub fn run_subset(opts: &ExpOptions, names: &[&str]) -> Vec<Row> {
    names
        .iter()
        .map(|name| {
            let model = spec2000::benchmark(name).expect("known benchmark");
            let pop = model.population(opts.events);
            let closed = rsc_control::engine::run_population(
                ControllerParams::scaled(),
                &pop,
                InputId::Eval,
                opts.events,
                opts.seed,
            )
            .expect("valid params")
            .stats;
            let open = rsc_control::engine::run_population(
                ControllerParams::scaled()
                    .without_eviction()
                    .without_revisit(),
                &pop,
                InputId::Eval,
                opts.events,
                opts.seed,
            )
            .expect("valid params")
            .stats;
            let flush = run_flush_policy(&pop, opts.events, opts.seed, opts.events / 3);
            Row {
                name: model.name,
                closed,
                flush,
                open,
            }
        })
        .collect()
}

/// Runs all benchmarks.
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    run_subset(opts, &spec2000::NAMES)
}

/// The paper's aggressive-speculation regime: a misspeculation costs about
/// two orders of magnitude more than a correct speculation gains.
pub const PENALTY_RATIO: f64 = 100.0;

/// Net utility of a policy under the paper's cost model:
/// `correct − 100 × incorrect` (fractions of dynamic branches).
pub fn utility(stats: &ControlStats) -> f64 {
    stats.correct_frac() - PENALTY_RATIO * stats.incorrect_frac()
}

/// Renders the three-way comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "bmark",
        "closed corr/incorr (util)",
        "flush corr/incorr (util)",
        "open corr/incorr (util)",
    ]);
    let mut between = 0usize;
    for r in rows {
        let (uc, uf, uo) = (utility(&r.closed), utility(&r.flush), utility(&r.open));
        t.row(vec![
            r.name.to_string(),
            format!(
                "{} / {} ({uc:+.2})",
                pct(r.closed.correct_frac(), 1),
                pct(r.closed.incorrect_frac(), 3)
            ),
            format!(
                "{} / {} ({uf:+.2})",
                pct(r.flush.correct_frac(), 1),
                pct(r.flush.incorrect_frac(), 3)
            ),
            format!(
                "{} / {} ({uo:+.2})",
                pct(r.open.correct_frac(), 1),
                pct(r.open.incorrect_frac(), 3)
            ),
        ]);
        if uf >= uo && uf <= uc {
            between += 1;
        }
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nflush-policy utility (correct − 100×incorrect) lies between closed \
         and open loop on {}/{} benchmarks (the paper's Section 5 prediction)\n",
        between,
        rows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_policy_sits_between_closed_and_open() {
        // mcf and gzip have plenty of behavior-changing branches.
        let rows = run_subset(
            &ExpOptions::small().with_events(8_000_000),
            &["mcf", "gzip"],
        );
        for r in &rows {
            let (uc, uf, uo) = (utility(&r.closed), utility(&r.flush), utility(&r.open));
            assert!(
                uf > uo,
                "{}: flush utility {uf:.3} should beat open loop {uo:.3}",
                r.name
            );
            assert!(
                uf < uc,
                "{}: flush utility {uf:.3} should trail closed loop {uc:.3}",
                r.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "flush period must be positive")]
    fn zero_flush_period_panics() {
        let pop = spec2000::benchmark("gzip").unwrap().population(1_000);
        run_flush_policy(&pop, 1_000, 1, 0);
    }
}
