//! Machine-readable CSV export of experiment data (raw fractions, not the
//! formatted percentages of the text tables) — for external plotting.

use crate::experiments::{dynamo, fig2, fig5, fig7, fig8, oscillation, table3, table4};
use crate::table::TextTable;
use std::io;
use std::path::Path;

/// Writes `csv` to `<dir>/<name>.csv`, creating `dir` if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write(dir: &Path, name: &str, csv: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.csv")), csv)
}

/// Figure 2: one row per mark per benchmark.
pub fn fig2_csv(rows: &[fig2::Row]) -> String {
    let mut t = TextTable::new(vec![
        "benchmark",
        "mark",
        "training_execs",
        "incorrect",
        "correct",
    ]);
    for r in rows {
        t.row(vec![
            r.name.into(),
            "self_train_knee_99".into(),
            String::new(),
            r.knee.0.to_string(),
            r.knee.1.to_string(),
        ]);
        t.row(vec![
            r.name.into(),
            "cross_input".into(),
            String::new(),
            r.cross_input.0.to_string(),
            r.cross_input.1.to_string(),
        ]);
        for (n, inc, cor) in &r.initial {
            t.row(vec![
                r.name.into(),
                "initial_behavior".into(),
                n.to_string(),
                inc.to_string(),
                cor.to_string(),
            ]);
        }
        for (inc, cor) in &r.curve {
            t.row(vec![
                r.name.into(),
                "pareto_curve".into(),
                String::new(),
                inc.to_string(),
                cor.to_string(),
            ]);
        }
    }
    t.to_csv()
}

/// Figure 5: one row per configuration per benchmark.
pub fn fig5_csv(rows: &[fig5::Row]) -> String {
    let mut t = TextTable::new(vec!["benchmark", "series", "incorrect", "correct"]);
    for r in rows {
        t.row(vec![
            r.name.into(),
            "self_training_99".into(),
            r.self_training.0.to_string(),
            r.self_training.1.to_string(),
        ]);
        for (name, inc, cor) in &r.reactive {
            t.row(vec![
                r.name.into(),
                (*name).into(),
                inc.to_string(),
                cor.to_string(),
            ]);
        }
    }
    t.to_csv()
}

/// Table 3: raw per-benchmark counters.
pub fn table3_csv(rows: &[table3::Row]) -> String {
    let mut t = TextTable::new(vec![
        "benchmark",
        "touched",
        "entered_biased",
        "evicted_branches",
        "total_evictions",
        "correct_frac",
        "incorrect_frac",
        "misspec_distance",
    ]);
    for r in rows {
        t.row(vec![
            r.name.into(),
            r.stats.touched.to_string(),
            r.stats.entered_biased.to_string(),
            r.stats.evicted_branches.to_string(),
            r.stats.total_evictions.to_string(),
            r.stats.correct_frac().to_string(),
            r.stats.incorrect_frac().to_string(),
            r.stats
                .misspec_distance()
                .map(|d| d.to_string())
                .unwrap_or_default(),
        ]);
    }
    t.to_csv()
}

/// Table 4: raw sensitivity averages.
pub fn table4_csv(rows: &[table4::Row]) -> String {
    let mut t = TextTable::new(vec!["configuration", "correct_frac", "incorrect_frac"]);
    for r in rows {
        t.row(vec![
            r.name.into(),
            r.correct.to_string(),
            r.incorrect.to_string(),
        ]);
    }
    t.to_csv()
}

/// Figure 7: normalized performance per configuration.
pub fn fig7_csv(rows: &[fig7::Row]) -> String {
    let mut t = TextTable::new(vec![
        "benchmark",
        "closed",
        "open",
        "closed_long_monitor",
        "open_long_monitor",
    ]);
    for r in rows {
        t.row(vec![
            r.name.into(),
            r.closed.to_string(),
            r.open.to_string(),
            r.closed_long.to_string(),
            r.open_long.to_string(),
        ]);
    }
    t.to_csv()
}

/// Figure 8: normalized performance per latency.
pub fn fig8_csv(rows: &[fig8::Row]) -> String {
    let mut t = TextTable::new(vec!["benchmark", "lat_0", "lat_1e4", "lat_1e5"]);
    for r in rows {
        t.row(vec![
            r.name.into(),
            r.perf[0].to_string(),
            r.perf[1].to_string(),
            r.perf[2].to_string(),
        ]);
    }
    t.to_csv()
}

/// Oscillation-cap census.
pub fn oscillation_csv(rows: &[oscillation::Row]) -> String {
    let mut t = TextTable::new(vec![
        "benchmark",
        "capped_reopts",
        "uncapped_reopts",
        "disabled",
        "capped_correct",
        "uncapped_correct",
    ]);
    for r in rows {
        t.row(vec![
            r.name.into(),
            r.capped_reopts.to_string(),
            r.uncapped_reopts.to_string(),
            r.disabled.to_string(),
            r.capped_correct.to_string(),
            r.uncapped_correct.to_string(),
        ]);
    }
    t.to_csv()
}

/// Dynamo flush-policy comparison.
pub fn dynamo_csv(rows: &[dynamo::Row]) -> String {
    let mut t = TextTable::new(vec![
        "benchmark",
        "policy",
        "correct_frac",
        "incorrect_frac",
        "utility",
    ]);
    for r in rows {
        for (policy, s) in [
            ("closed", &r.closed),
            ("flush", &r.flush),
            ("open", &r.open),
        ] {
            t.row(vec![
                r.name.into(),
                policy.into(),
                s.correct_frac().to_string(),
                s.incorrect_frac().to_string(),
                dynamo::utility(s).to_string(),
            ]);
        }
    }
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ExpOptions;

    #[test]
    fn table3_csv_has_all_benchmarks() {
        let rows = table3::run(&ExpOptions::small());
        let csv = table3_csv(&rows);
        assert_eq!(csv.lines().count(), 13); // header + 12
        assert!(csv.starts_with("benchmark,"));
        assert!(csv.contains("vortex,"));
    }

    #[test]
    fn write_creates_directory_and_file() {
        let dir = std::env::temp_dir().join("rsc_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        write(&dir, "probe", "a,b\n1,2\n").unwrap();
        let content = std::fs::read_to_string(dir.join("probe.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fig7_csv_is_numeric() {
        let rows = vec![fig7::Row {
            name: "gzip",
            closed: 1.2,
            open: 0.5,
            closed_long: 1.1,
            open_long: 0.7,
        }];
        let csv = fig7_csv(&rows);
        assert!(csv.contains("gzip,1.2,0.5,1.1,0.7"));
    }
}
