//! `repro` — regenerate the paper's tables and figures.

use rsc_bench::options::ExpOptions;
use rsc_bench::{experiments, export};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `conformance` owns its argument list (its --events default differs
    // from the experiments'), so dispatch before the generic flag loop.
    if args.first().map(String::as_str) == Some("conformance") {
        std::process::exit(rsc_bench::conformance_cli::run(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("resilience") {
        std::process::exit(rsc_bench::resilience_cli::run(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("observe") {
        std::process::exit(rsc_bench::observe_cli::run(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        std::process::exit(rsc_bench::fuzz_cli::run(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(rsc_bench::serve_cli::run(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("load") {
        std::process::exit(rsc_bench::load_cli::run(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("pareto") {
        std::process::exit(rsc_bench::pareto_cli::run(&args[1..]));
    }
    let top = match rsc_bench::cli::parse(&args) {
        Ok(top) => top,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", rsc_bench::cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Some(n) = top.threads {
        rsc_bench::parallel::set_max_threads(n);
    }
    let mut which = top.which.clone();
    if which.is_empty() {
        which.push("all".to_string());
    }
    for w in which {
        dispatch(
            &w,
            &top.opts,
            top.csv_dir.as_deref(),
            top.metrics_out.as_deref(),
            top.shards,
        );
    }
}

fn dispatch(
    which: &str,
    opts: &ExpOptions,
    csv_dir: Option<&std::path::Path>,
    metrics_out: Option<&std::path::Path>,
    shards: Option<usize>,
) {
    let save = |name: &str, csv: String| {
        if let Some(dir) = csv_dir {
            export::write(dir, name, &csv).expect("failed to write CSV");
        }
    };
    match which {
        "table1" => {
            println!("== Table 1: simulation data sets and run lengths ==");
            println!("{}", experiments::table1::render(opts));
        }
        "table2" => {
            println!("== Table 2: model parameters ==");
            println!("{}", experiments::table2::render());
        }
        "fig2" => {
            println!("== Figure 2: correct/incorrect speculation trade-off ==");
            let rows = experiments::fig2::run(opts);
            println!("{}", experiments::fig2::render(&rows));
            save("fig2", export::fig2_csv(&rows));
            let (benefit, misspec) = experiments::fig2::cross_input_summary(&rows);
            println!(
                "cross-input averages: benefit loss {benefit:.1}x (paper ~3x), \
                 misspec gain {misspec:.1}x (paper ~10x)"
            );
        }
        "fig3" => {
            println!("== Figure 3: initially-invariant gap branches ==");
            let data = experiments::fig3::run(opts);
            println!("{}", experiments::fig3::render(&data));
        }
        "fig5" => {
            println!("== Figure 5: reactive control vs self-training ==");
            let rows = experiments::fig5::run(opts);
            println!("{}", experiments::fig5::render(&rows));
            save("fig5", export::fig5_csv(&rows));
        }
        "fig6" => {
            println!("== Figure 6: misprediction rate at biased-state exit ==");
            let data = experiments::fig6::run(opts);
            println!("{}", experiments::fig6::render(&data));
        }
        "fig9" => {
            println!("== Figure 9: correlated behavior changes (vortex) ==");
            let data = experiments::fig9::run(opts);
            println!("{}", experiments::fig9::render(&data, 40));
        }
        "table3" => {
            println!("== Table 3: model transition data (p = paper, m = measured) ==");
            let rows = experiments::table3::run(opts);
            println!("{}", experiments::table3::render(&rows));
            save("table3", export::table3_csv(&rows));
        }
        "table4" => {
            println!("== Table 4: model sensitivity (p = paper, m = measured) ==");
            let rows = experiments::table4::run(opts);
            println!("{}", experiments::table4::render(&rows));
            save("table4", export::table4_csv(&rows));
        }
        "table5" => {
            println!("== Table 5: MSSP simulation parameters ==");
            println!("{}", experiments::table5::render());
        }
        "fig7" => {
            println!("== Figure 7: closed- vs open-loop MSSP performance ==");
            let rows = experiments::fig7::run(opts);
            println!("{}", experiments::fig7::render(&rows));
            save("fig7", export::fig7_csv(&rows));
        }
        "fig8" => {
            println!("== Figure 8: optimization-latency insensitivity ==");
            let rows = experiments::fig8::run(opts);
            println!("{}", experiments::fig8::render(&rows));
            save("fig8", export::fig8_csv(&rows));
        }
        "variance" => {
            println!("== Seed sensitivity of the baseline controller ==");
            let rows = experiments::variance::run(opts);
            println!("{}", experiments::variance::render(&rows));
        }
        "clustering" => {
            println!("== Task-granularity misspeculation clustering ==");
            let rows = experiments::clustering::run(opts);
            println!("{}", experiments::clustering::render(&rows));
        }
        "regions" => {
            println!("== Correlated re-optimization batching ==");
            let rows = experiments::regions::run(opts);
            println!("{}", experiments::regions::render(&rows));
        }
        "confidence" => {
            println!("== Confidence-bound monitoring vs fixed window ==");
            let rows = experiments::confidence::run(opts);
            println!("{}", experiments::confidence::render(&rows));
        }
        "dynamo" => {
            println!("== Dynamo-style flush policy vs closed/open loop ==");
            let rows = experiments::dynamo::run(opts);
            println!("{}", experiments::dynamo::render(&rows));
            save("dynamo", export::dynamo_csv(&rows));
        }
        "perf" => {
            println!("== Pipeline throughput: per-event vs chunked hot path ==");
            let rows = experiments::perf::run(opts);
            println!("{}", experiments::perf::render(&rows));
            let shard_rows = match shards {
                Some(n) => {
                    println!(
                        "== Shard scaling: controller phase, {} worker thread(s) ==",
                        rsc_bench::parallel::max_threads()
                    );
                    let srows =
                        experiments::perf::run_shards(opts, &experiments::perf::shard_counts(n));
                    println!("{}", experiments::perf::render_shards(&srows));
                    srows
                }
                None => Vec::new(),
            };
            let json = experiments::perf::to_json(&rows, &shard_rows, opts);
            let path = csv_dir
                .map(|d| d.join("BENCH_pipeline.json"))
                .unwrap_or_else(|| PathBuf::from("BENCH_pipeline.json"));
            if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir).expect("failed to create output directory");
            }
            std::fs::write(&path, json).expect("failed to write BENCH_pipeline.json");
            println!("wrote {}", path.display());
            if let Some(mpath) = metrics_out {
                let registry = match shards {
                    Some(n) if n > 1 => experiments::perf::instrumented_sharded_registry(opts, n),
                    _ => experiments::perf::instrumented_registry(opts),
                };
                rsc_bench::observe_cli::export_metrics(&registry, mpath);
                println!("wrote {}", mpath.display());
            }
        }
        "oscillation" => {
            println!("== Oscillation cap: re-optimization load ==");
            let rows = experiments::oscillation::run(opts);
            println!("{}", experiments::oscillation::render(&rows));
            save("oscillation", export::oscillation_csv(&rows));
        }
        "all" => {
            for w in [
                "table1",
                "table2",
                "fig2",
                "fig3",
                "fig5",
                "table3",
                "table4",
                "fig6",
                "fig9",
                "oscillation",
                "dynamo",
                "confidence",
                "regions",
                "variance",
                "table5",
                "fig7",
                "fig8",
                "clustering",
            ] {
                dispatch(w, opts, csv_dir, metrics_out, shards);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
