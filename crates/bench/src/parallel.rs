//! Tiny order-preserving parallel map for experiment fan-out.
//!
//! Every reproduction experiment maps independently over benchmarks; this
//! runs those closures on `available_parallelism` threads with scoped
//! borrows (no `'static` bound, no external dependencies) while keeping
//! result order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item in parallel, preserving input order.
///
/// `f` may borrow from the environment (threads are scoped). Panics in `f`
/// propagate.
///
/// # Examples
///
/// ```
/// use rsc_bench::parallel::par_map;
/// let squares = par_map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);

    let work: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is taken once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(par_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn borrows_environment() {
        let base = 10;
        let out = par_map(vec![1, 2, 3], |x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let _ = par_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
