//! Order-preserving parallel map for experiment fan-out.
//!
//! The implementation lives in [`rsc_util::parallel`] so the offline
//! profiler can share it; this module re-exports it for the experiment
//! code. The global thread cap ([`set_max_threads`], driven by the
//! `repro --threads N` flag) applies to every caller.
//!
//! # Examples
//!
//! ```
//! use rsc_bench::parallel::par_map;
//! let squares = par_map(vec![1, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub use rsc_util::parallel::{max_threads, par_map, set_max_threads};
