//! Shared experiment options.

/// Common knobs for the reproduction experiments.
///
/// `events` is the number of dynamic branch events simulated per benchmark.
/// The paper runs benchmarks to completion (9–45 billion instructions); the
/// default here (16 million events ≈ 100 million instructions) reproduces
/// the qualitative shapes in seconds. `--full` in the CLI raises it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    /// Dynamic branch events per benchmark run.
    pub events: u64,
    /// Root seed for trace generation.
    pub seed: u64,
}

impl ExpOptions {
    /// Default options used by the `repro` harness.
    pub fn new() -> Self {
        ExpOptions {
            events: 16_000_000,
            seed: 42,
        }
    }

    /// Sets the event count.
    pub fn with_events(mut self, events: u64) -> Self {
        self.events = events;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A small configuration for unit tests and Criterion benches.
    pub fn small() -> Self {
        ExpOptions {
            events: 300_000,
            seed: 42,
        }
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let o = ExpOptions::new().with_events(1000).with_seed(7);
        assert_eq!(o.events, 1000);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn small_is_smaller_than_default() {
        assert!(ExpOptions::small().events < ExpOptions::new().events);
    }
}
