//! The `repro conformance` subcommand: differential fuzzing of the
//! optimized controller against the golden reference, plus replay of
//! saved counterexample artifacts.
//!
//! Exit status encodes the verdict for CI:
//!
//! * plain campaign — `0` when no divergence is found, `1` when one is
//!   (the shrunk counterexample is written to the artifact directory);
//! * `--inject-fault` self-test — inverted: `0` when the fault IS
//!   caught, `1` when the harness misses it;
//! * `--replay` — `1` while the stored divergence still reproduces, `0`
//!   once it no longer does.

use rsc_conformance::{campaign, CampaignConfig, Counterexample, Fault};
use std::path::PathBuf;

/// Runs the subcommand with its own argument list (everything after the
/// literal `conformance`). Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut config = CampaignConfig::default();
    let mut replay: Option<PathBuf> = None;
    let mut artifact_dir = PathBuf::from("conformance-artifacts");
    let mut metrics_out: Option<PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut policies = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let v = it.next().expect("--seeds needs a value (N or A..B)");
                let (start, end) = parse_seeds(v).expect("--seeds must be N or A..B");
                config.seed_start = start;
                config.seed_end = end;
            }
            "--events" => {
                let v = it.next().expect("--events needs a value");
                config.events = v.parse().expect("--events must be an integer");
            }
            "--inject-fault" => {
                let v = it.next().expect("--inject-fault needs a fault name");
                let fault = Fault::from_name(v).unwrap_or_else(|| {
                    let names: Vec<&str> = Fault::ALL.iter().map(|f| f.name()).collect();
                    panic!("unknown fault {v:?}; known faults: {}", names.join(", "))
                });
                config.fault = Some(fault);
            }
            "--replay" => {
                let v = it.next().expect("--replay needs a file path");
                replay = Some(PathBuf::from(v));
            }
            "--artifact-dir" => {
                let v = it.next().expect("--artifact-dir needs a directory");
                artifact_dir = PathBuf::from(v);
            }
            "--metrics-out" => {
                let v = it.next().expect("--metrics-out needs a file path");
                metrics_out = Some(PathBuf::from(v));
            }
            "--shards" => {
                let v = it.next().expect("--shards needs a value");
                let n: usize = v.parse().expect("--shards must be an integer");
                if n == 0 {
                    eprintln!("--shards must be at least 1");
                    return 2;
                }
                shards = Some(n);
            }
            "--policies" => policies = true,
            other => {
                eprintln!("unknown conformance option: {other}");
                return 2;
            }
        }
    }

    if let Some(path) = replay {
        return run_replay(&path);
    }
    let code = if policies {
        run_policy_campaign(&config)
    } else {
        run_campaign(&config, shards, &artifact_dir)
    };
    if let Some(mpath) = &metrics_out {
        export_campaign_metrics(&config, mpath);
    }
    code
}

/// The `--metrics-out` payload: one instrumented controller run over the
/// campaign's first parameter set and first seed, so the exported
/// families describe a representative adversarial case rather than the
/// whole (multi-controller) campaign.
fn export_campaign_metrics(config: &CampaignConfig, path: &std::path::Path) {
    use rsc_conformance::campaign::{param_matrix, scenarios_for};
    use rsc_control::{ReactiveController, TransitionLogPolicy};

    let (name, params) = param_matrix()[0];
    let scenario = scenarios_for(&params)[0];
    let trace = scenario.generate(config.events, config.seed_start);
    let mut ctl = ReactiveController::builder(params)
        .log_policy(TransitionLogPolicy::CountsOnly)
        .metrics()
        .build()
        .expect("campaign params validate");
    for r in &trace {
        ctl.observe(r);
    }
    let registry = ctl.metrics().expect("metrics were enabled");
    crate::observe_cli::export_metrics(&registry, path);
    println!(
        "wrote {} (param set {name:?}, scenario {scenario:?})",
        path.display()
    );
}

fn run_replay(path: &std::path::Path) -> i32 {
    let cx = match Counterexample::load(path) {
        Ok(cx) => cx,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    println!(
        "replaying {}: scenario {}, seed {}, mode {}, {} events{}",
        path.display(),
        cx.scenario,
        cx.seed,
        cx.mode.name(),
        cx.trace.len(),
        match cx.fault {
            Some(f) => format!(", injected fault {f}"),
            None => String::new(),
        },
    );
    match cx.replay() {
        Err(div) => {
            println!("divergence reproduces: {div}");
            1
        }
        Ok(()) => {
            println!("divergence no longer reproduces (fixed?)");
            0
        }
    }
}

/// The `--policies` sweep: every builtin policy locksteps its chunked
/// and sharded fast paths against its own per-event semantics (and the
/// paper FSM against the golden reference). Exit semantics mirror the
/// plain campaign: with a fault injected, catching it is success.
fn run_policy_campaign(config: &CampaignConfig) -> i32 {
    println!(
        "policy-zoo campaign: seeds {}..{}, {} events/trace, policies {}{}",
        config.seed_start,
        config.seed_end,
        config.events,
        rsc_control::BUILTIN_POLICY_IDS.join(", "),
        match config.fault {
            Some(f) => format!(", injected fault {f}"),
            None => String::new(),
        },
    );
    let report = campaign::run_policies(config);
    println!(
        "ran {} differential cases ({} events per controller)",
        report.cases, report.events_fed
    );
    match (report.failure, config.fault) {
        (None, None) => {
            println!("no divergences: every policy's fast paths match its per-event semantics");
            0
        }
        (None, Some(fault)) => {
            println!("FAIL: injected fault {fault} was NOT caught");
            1
        }
        (Some(div), fault) => {
            println!("{div}");
            if fault.is_some() {
                println!("injected fault caught: harness self-test passed");
                0
            } else {
                1
            }
        }
    }
}

fn run_campaign(
    config: &CampaignConfig,
    shards: Option<usize>,
    artifact_dir: &std::path::Path,
) -> i32 {
    println!(
        "conformance campaign: seeds {}..{}, {} events/trace{}{}",
        config.seed_start,
        config.seed_end,
        config.events,
        match shards {
            Some(n) => format!(", sharded lockstep over 1..={n} shards"),
            None => String::new(),
        },
        match config.fault {
            Some(f) => format!(", injected fault {f}"),
            None => String::new(),
        },
    );
    let report = match shards {
        Some(n) => campaign::run_sharded(config, n),
        None => campaign::run(config),
    };
    println!(
        "ran {} differential cases ({} events per controller)",
        report.cases, report.events_fed
    );

    match (report.counterexample, config.fault) {
        (None, None) => {
            println!("no divergences: optimized controller conforms to the reference");
            0
        }
        (None, Some(fault)) => {
            println!("FAIL: injected fault {fault} was NOT caught");
            1
        }
        (Some(cx), fault) => {
            let path =
                artifact_dir.join(format!("counterexample-{}-{}.json", cx.scenario, cx.seed));
            println!(
                "divergence found ({} events after shrinking): {}",
                cx.trace.len(),
                cx.detail
            );
            match cx.save(&path) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write artifact: {e}"),
            }
            if fault.is_some() {
                println!("injected fault caught and minimized: harness self-test passed");
                0
            } else {
                println!("replay with: repro conformance --replay {}", path.display());
                1
            }
        }
    }
}

fn parse_seeds(v: &str) -> Option<(u64, u64)> {
    if let Some((a, b)) = v.split_once("..") {
        let start = a.parse().ok()?;
        let end = b.parse().ok()?;
        (start < end).then_some((start, end))
    } else {
        let n: u64 = v.parse().ok()?;
        (n > 0).then_some((0, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_ranges_parse() {
        assert_eq!(parse_seeds("64"), Some((0, 64)));
        assert_eq!(parse_seeds("3..9"), Some((3, 9)));
        assert_eq!(parse_seeds("9..3"), None);
        assert_eq!(parse_seeds("0"), None);
        assert_eq!(parse_seeds("x"), None);
    }

    #[test]
    fn self_test_catches_fault_and_writes_artifact() {
        let dir = std::env::temp_dir().join("rsc_conformance_cli_test");
        std::fs::remove_dir_all(&dir).ok();
        let code = run(&[
            "--seeds".into(),
            "0..2".into(),
            "--events".into(),
            "1500".into(),
            "--inject-fault".into(),
            "hysteresis-off-by-one".into(),
            "--artifact-dir".into(),
            dir.to_string_lossy().into_owned(),
        ]);
        assert_eq!(code, 0, "self-test should catch the fault");
        let artifacts: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(artifacts.len(), 1, "exactly one artifact expected");
        let path = artifacts[0].as_ref().unwrap().path();
        assert_eq!(
            run(&["--replay".into(), path.to_string_lossy().into_owned()]),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_smoke_campaign_exits_zero() {
        let code = run(&[
            "--seeds".into(),
            "0..1".into(),
            "--events".into(),
            "1000".into(),
        ]);
        assert_eq!(code, 0);
    }

    #[test]
    fn policy_campaign_exits_zero() {
        let code = run(&[
            "--seeds".into(),
            "0..1".into(),
            "--events".into(),
            "600".into(),
            "--policies".into(),
        ]);
        assert_eq!(code, 0);
    }

    #[test]
    fn sharded_campaign_exits_zero() {
        let code = run(&[
            "--seeds".into(),
            "0..1".into(),
            "--events".into(),
            "800".into(),
            "--shards".into(),
            "3".into(),
        ]);
        assert_eq!(code, 0);
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        assert_eq!(run(&["--bogus".into()]), 2);
        assert_eq!(run(&["--shards".into(), "0".into()]), 2);
    }
}
