//! The `repro observe` subcommand: run an instrumented controller over a
//! seeded workload and export its telemetry.
//!
//! Outputs, all optional and composable:
//!
//! * `--metrics-out PATH` — Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]); without the flag the text
//!   goes to stdout;
//! * `--json-out PATH` — the same registry as JSON
//!   ([`MetricsRegistry::render_json`]);
//! * `--events-out PATH` — the observability event stream
//!   ([`rsc_control::ObsEvent`]) as JSON Lines, via a [`JsonlSink`];
//! * `--check` — validate the Prometheus text with the built-in parser
//!   ([`validate_prometheus`]) and fail the process if it is malformed
//!   (the CI smoke job runs with this flag).
//!
//! `--resilience` layers a seeded flaky deployment pipeline plus a storm
//! breaker over the run so the deploy/breaker metric families and event
//! kinds are exercised; without it the export covers the base controller
//! families only. The output is a pure function of `--bench`, `--events`,
//! `--seed`, and `--resilience`.

use crate::cli::{number, value};
use rsc_control::resilience::{
    BreakerConfig, DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy,
};
use rsc_control::{
    EventSink, JsonlSink, MetricsRegistry, ReactiveController, ResilienceConfig,
    TransitionLogPolicy,
};
use rsc_trace::{spec2000, InputId};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Usage text printed (to stderr) alongside any parse error.
pub const USAGE: &str = "\
usage: repro observe [FLAGS]

flags:
  --bench NAME     benchmark model driving the workload (default gcc)
  --events N       dynamic branch events to run (default 1000000)
  --seed N         trace seed (default 42)
  --resilience     layer a flaky deploy pipeline + storm breaker over the run
  --check          validate the Prometheus exposition; malformed text exits 1
  --metrics-out F  write the Prometheus exposition to F (default: stdout)
  --json-out F     also write the metrics registry as JSON to F
  --events-out F   write the observability event stream as JSON Lines to F";

/// Everything a `repro observe` invocation decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveArgs {
    /// `--bench` workload model name (validated against [`spec2000::NAMES`]).
    pub bench: String,
    /// `--events` run length.
    pub events: u64,
    /// `--seed` trace seed.
    pub seed: u64,
    /// `--resilience` layering.
    pub resilience: bool,
    /// `--check` exposition validation.
    pub check: bool,
    /// `--metrics-out` path (stdout when absent).
    pub metrics_out: Option<PathBuf>,
    /// `--json-out` path.
    pub json_out: Option<PathBuf>,
    /// `--events-out` path.
    pub events_out: Option<PathBuf>,
}

/// Parses the argument list (everything after the literal `observe`).
/// Pure: no printing, no process exit.
///
/// # Errors
///
/// Returns a one-line diagnostic for a missing flag value, a
/// non-numeric value, an unknown benchmark name, or an unknown flag.
pub fn parse(args: &[String]) -> Result<ObserveArgs, String> {
    let mut out = ObserveArgs {
        bench: "gcc".to_string(),
        events: 1_000_000,
        seed: 42,
        resilience: false,
        check: false,
        metrics_out: None,
        json_out: None,
        events_out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => out.bench = value(&mut it, "--bench")?.to_string(),
            "--events" => out.events = number(&mut it, "--events")?,
            "--seed" => out.seed = number(&mut it, "--seed")?,
            "--resilience" => out.resilience = true,
            "--check" => out.check = true,
            "--metrics-out" => {
                out.metrics_out = Some(PathBuf::from(value(&mut it, "--metrics-out")?))
            }
            "--json-out" => out.json_out = Some(PathBuf::from(value(&mut it, "--json-out")?)),
            "--events-out" => out.events_out = Some(PathBuf::from(value(&mut it, "--events-out")?)),
            other => return Err(format!("unknown observe option: {other}")),
        }
    }
    if spec2000::benchmark(&out.bench).is_none() {
        return Err(format!(
            "unknown benchmark {:?}; known: {}",
            out.bench,
            spec2000::NAMES.join(", ")
        ));
    }
    Ok(out)
}

/// Runs the subcommand with its own argument list (everything after the
/// literal `observe`). Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let ObserveArgs {
        bench,
        events,
        seed,
        resilience,
        check,
        metrics_out,
        json_out,
        events_out,
    } = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return 2;
        }
    };

    let model = spec2000::benchmark(&bench).expect("parse validated the name");
    let pop = model.population(events);

    let mut builder = ReactiveController::builder(rsc_control::ControllerParams::scaled())
        .log_policy(TransitionLogPolicy::CountsOnly)
        .metrics();
    if resilience {
        builder = builder.resilience(observe_resilience_config(seed));
    }
    let sink = match &events_out {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir).expect("failed to create events-out directory");
            }
            let sink = Arc::new(JsonlSink::create(path).expect("failed to open events-out file"));
            builder = builder.event_sink(sink.clone());
            Some(sink)
        }
        None => None,
    };

    let (result, ctl) =
        rsc_control::run_population_chunked_with(builder, &pop, InputId::Eval, events, seed)
            .expect("observe configuration validates");
    let registry = ctl.metrics().expect("metrics were enabled");
    eprintln!(
        "observe: {bench} {events} events, seed {seed}: \
         {} transitions, {:.3}% misspeculated",
        ctl.transition_log().total(),
        result.stats.incorrect_frac() * 100.0,
    );

    let text = registry.render_prometheus();
    if check {
        if let Err(e) = validate_prometheus(&text) {
            eprintln!("observe: invalid Prometheus exposition: {e}");
            return 1;
        }
        eprintln!(
            "observe: Prometheus exposition validated ({} metrics)",
            registry.len()
        );
    }
    match &metrics_out {
        Some(path) => write_output(path, &text, "metrics"),
        None => print!("{text}"),
    }
    if let Some(path) = &json_out {
        write_output(path, &registry.render_json(), "JSON metrics");
    }
    if let Some(sink) = sink {
        sink.flush();
        if sink.dropped() > 0 {
            eprintln!(
                "observe: {} events dropped by the JSONL sink",
                sink.dropped()
            );
            return 1;
        }
        eprintln!(
            "observe: event stream written to {}",
            events_out.as_deref().unwrap_or(Path::new("?")).display()
        );
    }
    0
}

/// Writes `contents` to `path`, creating parent directories.
fn write_output(path: &Path, contents: &str, what: &str) {
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("failed to create output directory");
    }
    std::fs::write(path, contents)
        .unwrap_or_else(|e| panic!("failed to write {what} to {}: {e}", path.display()));
    eprintln!("observe: {what} written to {}", path.display());
}

/// The resilience layer used by `--resilience`: a seeded flaky pipeline
/// with retry/backoff plus a storm breaker, chosen so every deploy- and
/// breaker-related metric family sees traffic.
fn observe_resilience_config(seed: u64) -> ResilienceConfig {
    ResilienceConfig {
        deployer: DeployerSpec::Faulty(FaultSpec {
            seed,
            mode: FaultMode::FixedRate { per_mille: 350 },
            scope: FaultScope::All,
            wasted: 150,
        }),
        retry: RetryPolicy {
            max_attempts: 4,
            base_backoff: 300,
            max_backoff: 2_400,
        },
        breaker: Some(BreakerConfig {
            bucket_events: 400,
            buckets: 4,
            open_threshold: 0.08,
            close_threshold: 0.02,
            cooldown_events: 3_000,
            probe_events: 1_500,
            mass_evict_top_k: 3,
        }),
    }
}

/// Exports a registry as Prometheus text to `path` (used by the
/// `--metrics-out` flag on the other subcommands).
pub fn export_metrics(registry: &MetricsRegistry, path: &Path) {
    write_output(path, &registry.render_prometheus(), "metrics");
}

/// Validates a Prometheus text exposition: every sample line parses, every
/// family is declared with `# HELP` and `# TYPE` before its first sample,
/// families are not re-declared, and histogram families are internally
/// consistent (cumulative non-decreasing buckets, a `+Inf` bucket equal to
/// `_count`, and all three of `_bucket`/`_sum`/`_count` present).
///
/// This is a format checker for the subset this workspace emits, not a
/// general scraper: it exists so CI fails when the exposition regresses.
///
/// # Errors
///
/// Returns a description of the first malformed line or inconsistent
/// family.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    struct Family {
        typ: String,
        has_help: bool,
        // Histogram bookkeeping.
        last_bucket: Option<u64>,
        inf_bucket: Option<u64>,
        sum: Option<u64>,
        count: Option<u64>,
    }
    let mut families: Vec<(String, Family)> = Vec::new();

    fn family_of<'a>(families: &'a mut [(String, Family)], name: &str) -> Option<&'a mut Family> {
        families.iter_mut().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: comment missing metric name"))?;
            let body = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if body.is_empty() {
                        return Err(format!("line {lineno}: HELP {name} has no text"));
                    }
                    if family_of(&mut families, name).is_some() {
                        return Err(format!("line {lineno}: family {name} re-declared"));
                    }
                    families.push((
                        name.to_string(),
                        Family {
                            typ: String::new(),
                            has_help: true,
                            last_bucket: None,
                            inf_bucket: None,
                            sum: None,
                            count: None,
                        },
                    ));
                }
                "TYPE" => {
                    if !matches!(body, "counter" | "gauge" | "histogram") {
                        return Err(format!("line {lineno}: unknown TYPE {body:?}"));
                    }
                    let f = family_of(&mut families, name)
                        .ok_or_else(|| format!("line {lineno}: TYPE {name} before HELP"))?;
                    if !f.typ.is_empty() {
                        return Err(format!("line {lineno}: TYPE {name} re-declared"));
                    }
                    f.typ = body.to_string();
                }
                other => return Err(format!("line {lineno}: unknown comment keyword {other:?}")),
            }
            continue;
        }

        // Sample line: `name[{labels}] value`.
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (n, Some(labels))
            }
            None => (name_labels, None),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: bad label pair {pair:?}"))?;
                if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return Err(format!("line {lineno}: bad label {k}={v}"));
                }
            }
        }
        value
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: bad sample value {value:?}"))?;

        // Histogram samples attach to their base family.
        let (base, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s).map(|b| (b, *s)))
            .filter(|(b, _)| family_of(&mut families, b).is_some_and(|f| f.typ == "histogram"))
            .unwrap_or((name, ""));
        let f = family_of(&mut families, base)
            .ok_or_else(|| format!("line {lineno}: sample for undeclared family {base:?}"))?;
        if !f.has_help || f.typ.is_empty() {
            return Err(format!("line {lineno}: family {base} missing HELP or TYPE"));
        }
        if f.typ == "histogram" {
            let v: u64 = value
                .parse()
                .map_err(|_| format!("line {lineno}: non-integer histogram sample {value:?}"))?;
            match suffix {
                "_bucket" => {
                    let le = labels
                        .and_then(|l| l.strip_prefix("le=\""))
                        .and_then(|l| l.strip_suffix('"'))
                        .ok_or_else(|| format!("line {lineno}: _bucket without le label"))?;
                    if let Some(prev) = f.last_bucket {
                        if v < prev {
                            return Err(format!(
                                "line {lineno}: bucket counts not cumulative in {base}"
                            ));
                        }
                    }
                    f.last_bucket = Some(v);
                    if le == "+Inf" {
                        f.inf_bucket = Some(v);
                    }
                }
                "_sum" => f.sum = Some(v),
                "_count" => f.count = Some(v),
                _ => {
                    return Err(format!(
                        "line {lineno}: bare sample {name} for histogram family"
                    ))
                }
            }
        }
    }

    for (name, f) in &families {
        if f.typ == "histogram" {
            let (Some(inf), Some(count), Some(_)) = (f.inf_bucket, f.count, f.sum) else {
                return Err(format!("histogram {name} missing _bucket/_sum/_count"));
            };
            if inf != count {
                return Err(format!(
                    "histogram {name}: +Inf bucket {inf} != _count {count}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_control::prelude::*;

    fn seeded_registry() -> MetricsRegistry {
        let pop = spec2000::benchmark("gzip").unwrap().population(40_000);
        let builder = ReactiveController::builder(ControllerParams::scaled())
            .log_policy(TransitionLogPolicy::CountsOnly)
            .metrics()
            .resilience(observe_resilience_config(9));
        let (_, ctl) =
            rsc_control::run_population_chunked_with(builder, &pop, InputId::Eval, 40_000, 9)
                .unwrap();
        ctl.metrics().unwrap()
    }

    #[test]
    fn real_exposition_validates() {
        let reg = seeded_registry();
        validate_prometheus(&reg.render_prometheus()).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_text() {
        // Sample before declaration.
        assert!(validate_prometheus("foo_total 3\n").is_err());
        // Bad value.
        let text = "# HELP x h\n# TYPE x counter\nx nope\n";
        assert!(validate_prometheus(text).is_err());
        // Histogram whose +Inf bucket disagrees with _count.
        let text = "# HELP h h\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 4\nh_count 3\n";
        assert!(validate_prometheus(text).is_err());
        // Non-cumulative buckets.
        let text = "# HELP h h\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\n\
                    h_bucket{le=\"+Inf\"} 2\nh_sum 4\nh_count 2\n";
        assert!(validate_prometheus(text).is_err());
        // Re-declared family.
        let text = "# HELP x h\n# TYPE x counter\n# HELP x h\n";
        assert!(validate_prometheus(text).is_err());
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = parse(&[]).unwrap();
        assert_eq!(d.bench, "gcc");
        assert_eq!(d.events, 1_000_000);
        assert_eq!(d.seed, 42);
        assert!(!d.resilience && !d.check);
        let p = parse(&argv(&[
            "--bench",
            "gzip",
            "--events",
            "5000",
            "--seed",
            "7",
            "--resilience",
            "--check",
            "--metrics-out",
            "m.prom",
            "--json-out",
            "m.json",
            "--events-out",
            "e.jsonl",
        ]))
        .unwrap();
        assert_eq!(p.bench, "gzip");
        assert_eq!(p.events, 5000);
        assert_eq!(p.seed, 7);
        assert!(p.resilience && p.check);
        assert_eq!(p.metrics_out.as_deref(), Some(Path::new("m.prom")));
        assert_eq!(p.json_out.as_deref(), Some(Path::new("m.json")));
        assert_eq!(p.events_out.as_deref(), Some(Path::new("e.jsonl")));
    }

    #[test]
    fn parse_diagnoses_bad_input_without_panicking() {
        assert_eq!(
            parse(&argv(&["--events"])).unwrap_err(),
            "--events needs a value"
        );
        assert_eq!(
            parse(&argv(&["--events", "lots"])).unwrap_err(),
            "--events needs an integer, got \"lots\""
        );
        assert_eq!(
            parse(&argv(&["--bogus"])).unwrap_err(),
            "unknown observe option: --bogus"
        );
        assert!(parse(&argv(&["--bench", "nope"]))
            .unwrap_err()
            .starts_with("unknown benchmark \"nope\""));
    }

    #[test]
    fn usage_error_exits_two() {
        assert_eq!(run(&argv(&["--bogus"])), 2);
        assert_eq!(run(&argv(&["--bench", "nope"])), 2);
    }

    #[test]
    fn validator_accepts_minimal_families() {
        let text = "# HELP a ok\n# TYPE a counter\na 1\n\
                    # HELP g ok\n# TYPE g gauge\ng{kind=\"x\"} -2.5\n\
                    # HELP h ok\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n";
        validate_prometheus(text).unwrap();
    }
}
