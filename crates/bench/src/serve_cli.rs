//! The `repro serve` subcommand: run the fault-tolerant multi-tenant
//! controller daemon in the foreground.
//!
//! The process listens on TCP (`--addr`) or a Unix socket (`--unix`),
//! demultiplexes length-prefixed event frames by tenant id, and applies
//! each tenant's stream to its own sharded controller with per-tenant
//! quotas, backpressure, and coldest-first eviction to the checkpoint
//! directory (see the `rsc-serve` crate docs and DESIGN.md §14).
//!
//! Shutdown is always a graceful drain: `SIGTERM`/`SIGINT`, or a `Drain`
//! frame from any client (`repro load --drain`), stops the accept loop
//! and flushes every live tenant to disk. The exit status encodes the
//! outcome for supervisors:
//!
//! * `0` — drained; every tenant's state reached disk;
//! * `1` — some tenant could not be checkpointed (its state was lost
//!   with the process), or the listener failed;
//! * `2` — usage error.

use crate::cli::{at_least_one, number, value};
use rsc_serve::{ChaosConfig, QuotaConfig, Server, ServerConfig};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Usage text printed (to stderr) alongside any parse error.
pub const USAGE: &str = "\
usage: repro serve [FLAGS]

flags:
  --addr HOST:PORT      TCP listen address (default 127.0.0.1:7433; port 0
                        picks a free port — pair with --port-file)
  --unix PATH           listen on a Unix socket instead of TCP
  --checkpoint-dir DIR  where drained and evicted tenants persist
                        (default serve-state)
  --quota-events N      per-tenant lifetime event quota (0 = unlimited)
  --quota-bytes N       per-tenant lifetime payload-byte quota (0 = unlimited)
  --queue-depth N       per-tenant concurrent-operation bound (default 8, N >= 1)
  --max-live N          live-tenant ceiling before coldest-first eviction
                        (default 0 = never shed)
  --shards N            controller shards per tenant (default 2, N >= 1)
  --chaos PROFILE       storage fault-injection profile: off|light|heavy
                        (default off)
  --chaos-seed N        chaos RNG seed (default 0)
  --port-file PATH      write the bound address here once listening (the
                        CI smoke job reads it to find the daemon)";

/// Everything a `repro serve` invocation decided.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// `--addr` TCP listen address (ignored when `unix` is set).
    pub addr: String,
    /// `--unix` socket path.
    pub unix: Option<PathBuf>,
    /// `--checkpoint-dir` tenant persistence root.
    pub checkpoint_dir: PathBuf,
    /// `--quota-events` / `--quota-bytes`.
    pub quota: QuotaConfig,
    /// `--queue-depth` per-tenant admission bound.
    pub queue_depth: usize,
    /// `--max-live` shedding ceiling.
    pub max_live: usize,
    /// `--shards` per tenant.
    pub shards: usize,
    /// Resolved `--chaos`/`--chaos-seed` storage fault profile.
    pub chaos: ChaosConfig,
    /// `--port-file` handoff path.
    pub port_file: Option<PathBuf>,
}

impl ServeArgs {
    /// The daemon configuration this invocation asks for.
    pub fn server_config(&self) -> ServerConfig {
        let mut cfg = ServerConfig::new(&self.checkpoint_dir);
        cfg.quota = self.quota;
        cfg.queue_depth = self.queue_depth;
        cfg.max_live_tenants = self.max_live;
        cfg.shards_per_tenant = self.shards;
        cfg.chaos = self.chaos;
        cfg
    }
}

/// Parses the argument list (everything after the literal `serve`).
/// Pure: no printing, no process exit, no sockets.
///
/// # Errors
///
/// Returns a one-line diagnostic for a missing flag value, a
/// non-numeric value, a zero where at least 1 is required, an unknown
/// chaos profile, conflicting `--addr`/`--unix`, or an unknown flag.
pub fn parse(args: &[String]) -> Result<ServeArgs, String> {
    let mut addr: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut chaos_profile = "off".to_string();
    let mut chaos_seed: u64 = 0;
    let mut out = ServeArgs {
        addr: String::new(),
        unix: None,
        checkpoint_dir: PathBuf::from("serve-state"),
        quota: QuotaConfig::unlimited(),
        queue_depth: 8,
        max_live: 0,
        shards: 2,
        chaos: ChaosConfig::off(),
        port_file: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(value(&mut it, "--addr")?.to_string()),
            "--unix" => unix = Some(PathBuf::from(value(&mut it, "--unix")?)),
            "--checkpoint-dir" => {
                out.checkpoint_dir = PathBuf::from(value(&mut it, "--checkpoint-dir")?)
            }
            "--quota-events" => out.quota.max_events = number(&mut it, "--quota-events")?,
            "--quota-bytes" => out.quota.max_bytes = number(&mut it, "--quota-bytes")?,
            "--queue-depth" => {
                out.queue_depth = at_least_one(number(&mut it, "--queue-depth")?, "--queue-depth")?
            }
            "--max-live" => out.max_live = number(&mut it, "--max-live")?,
            "--shards" => out.shards = at_least_one(number(&mut it, "--shards")?, "--shards")?,
            "--chaos" => chaos_profile = value(&mut it, "--chaos")?.to_string(),
            "--chaos-seed" => chaos_seed = number(&mut it, "--chaos-seed")?,
            "--port-file" => out.port_file = Some(PathBuf::from(value(&mut it, "--port-file")?)),
            other => return Err(format!("unknown serve option: {other}")),
        }
    }
    if addr.is_some() && unix.is_some() {
        return Err("--addr and --unix are mutually exclusive".to_string());
    }
    out.addr = addr.unwrap_or_else(|| "127.0.0.1:7433".to_string());
    out.unix = unix;
    out.chaos = ChaosConfig::profile(&chaos_profile, chaos_seed)?;
    Ok(out)
}

/// Set by the signal handler; polled by the shutdown watcher thread.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Routes `SIGTERM` and `SIGINT` to the [`TERM`] flag. Raw libc
/// `signal(2)` because this workspace links no signal crate; storing to
/// an atomic is async-signal-safe.
fn install_term_handler() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_term);
        signal(SIGINT, on_term);
    }
}

/// Writes the bound address to `path` atomically (write + rename), so a
/// supervisor polling for the file never reads a partial address.
fn write_port_file(path: &Path, addr: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, addr)?;
    std::fs::rename(&tmp, path)
}

/// Runs the subcommand with its own argument list (everything after the
/// literal `serve`). Blocks until drain; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return 2;
        }
    };

    let server = match Server::new(parsed.server_config()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot open checkpoint dir: {e}");
            return 1;
        }
    };
    install_term_handler();
    let stop = Arc::new(AtomicBool::new(false));
    // The accept loops poll `stop`; this watcher trips it on SIGTERM/
    // SIGINT or once a client-requested drain has run, so a `repro load
    // --drain` storm shuts the daemon down without a supervisor.
    let watcher = {
        let stop = Arc::clone(&stop);
        let server = server.clone();
        std::thread::spawn(move || loop {
            if TERM.load(Ordering::SeqCst) || server.draining() || stop.load(Ordering::SeqCst) {
                stop.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        })
    };

    let served = match &parsed.unix {
        Some(path) => {
            // A previous unclean exit leaves the socket file behind;
            // binding over it needs the unlink first.
            let _ = std::fs::remove_file(path);
            match UnixListener::bind(path) {
                Ok(listener) => {
                    eprintln!("serve: listening on {}", path.display());
                    if let Some(pf) = &parsed.port_file {
                        if let Err(e) = write_port_file(pf, &path.display().to_string()) {
                            eprintln!("serve: cannot write {}: {e}", pf.display());
                        }
                    }
                    server.serve_unix(listener, Arc::clone(&stop))
                }
                Err(e) => Err(e),
            }
        }
        None => match TcpListener::bind(&parsed.addr) {
            Ok(listener) => {
                let bound = listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| parsed.addr.clone());
                eprintln!("serve: listening on {bound}");
                if let Some(pf) = &parsed.port_file {
                    if let Err(e) = write_port_file(pf, &bound) {
                        eprintln!("serve: cannot write {}: {e}", pf.display());
                    }
                }
                server.serve_tcp(listener, Arc::clone(&stop))
            }
            Err(e) => Err(e),
        },
    };
    stop.store(true, Ordering::SeqCst);
    let _ = watcher.join();
    if let Err(e) = served {
        eprintln!("serve: listener failed: {e}");
        return 1;
    }

    // Reached on SIGTERM/SIGINT or after a client-requested drain; the
    // re-drain is idempotent and catches tenants touched in between.
    let report = server.drain();
    let counters = server.counters();
    eprintln!(
        "serve: drained {} tenant(s), {} failed; {} connection(s), {} frame(s) \
         ({} accepted, {} rejected, {} torn), shed {}, restored {}",
        report.flushed,
        report.failed,
        counters.connections,
        counters.frames,
        counters.accepted_frames,
        counters.rejected_frames,
        counters.torn_frames,
        counters.shed_tenants,
        counters.restores,
    );
    if let Some(path) = &parsed.unix {
        let _ = std::fs::remove_file(path);
    }
    if report.failed == 0 {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_match_server_config() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.addr, "127.0.0.1:7433");
        assert_eq!(p.unix, None);
        assert_eq!(p.checkpoint_dir, PathBuf::from("serve-state"));
        assert_eq!(p.quota, QuotaConfig::unlimited());
        let cfg = p.server_config();
        let base = ServerConfig::new("serve-state");
        assert_eq!(cfg.queue_depth, base.queue_depth);
        assert_eq!(cfg.shards_per_tenant, base.shards_per_tenant);
        assert_eq!(cfg.max_live_tenants, base.max_live_tenants);
        assert!(!cfg.chaos.enabled());
    }

    #[test]
    fn parse_all_flags_together() {
        let p = parse(&argv(&[
            "--addr",
            "0.0.0.0:9000",
            "--checkpoint-dir",
            "state",
            "--quota-events",
            "1000",
            "--quota-bytes",
            "4096",
            "--queue-depth",
            "3",
            "--max-live",
            "5",
            "--shards",
            "4",
            "--chaos",
            "light",
            "--chaos-seed",
            "9",
            "--port-file",
            "port.txt",
        ]))
        .unwrap();
        assert_eq!(p.addr, "0.0.0.0:9000");
        assert_eq!(p.quota.max_events, 1000);
        assert_eq!(p.quota.max_bytes, 4096);
        let cfg = p.server_config();
        assert_eq!(cfg.queue_depth, 3);
        assert_eq!(cfg.max_live_tenants, 5);
        assert_eq!(cfg.shards_per_tenant, 4);
        assert!(cfg.chaos.enabled());
        assert_eq!(cfg.chaos.seed, 9);
        assert_eq!(p.port_file, Some(PathBuf::from("port.txt")));
    }

    #[test]
    fn parse_diagnoses_bad_input_without_panicking() {
        assert_eq!(
            parse(&argv(&["--queue-depth", "0"])).unwrap_err(),
            "--queue-depth must be at least 1"
        );
        assert_eq!(
            parse(&argv(&["--shards", "none"])).unwrap_err(),
            "--shards needs an integer, got \"none\""
        );
        assert_eq!(
            parse(&argv(&["--addr"])).unwrap_err(),
            "--addr needs a value"
        );
        assert_eq!(
            parse(&argv(&["--bogus"])).unwrap_err(),
            "unknown serve option: --bogus"
        );
        assert_eq!(
            parse(&argv(&["--addr", "a:1", "--unix", "s.sock"])).unwrap_err(),
            "--addr and --unix are mutually exclusive"
        );
        assert!(parse(&argv(&["--chaos", "apocalyptic"])).is_err());
    }

    #[test]
    fn usage_error_exits_two() {
        assert_eq!(run(&argv(&["--bogus"])), 2);
        assert_eq!(run(&argv(&["--queue-depth", "0"])), 2);
    }
}
