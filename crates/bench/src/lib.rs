//! # rsc-bench — the reproduction harness
//!
//! One module per table/figure of the paper, plus the `repro` binary that
//! prints paper-vs-measured comparisons. See `EXPERIMENTS.md` at the repo
//! root for recorded results.

pub mod cli;
pub mod conformance_cli;
pub mod experiments;
pub mod export;
pub mod fuzz_cli;
pub mod load_cli;
pub mod observe_cli;
pub mod options;
pub mod parallel;
pub mod pareto_cli;
pub mod resilience_cli;
pub mod serve_cli;
pub mod table;
