//! The `repro resilience` subcommand: drives the resilient runtime layer
//! through a fixed scenario matrix and emits a deterministic JSON report.
//!
//! Four scenarios run over the same phase-flip workload:
//!
//! * `fault-free` — resilience plumbing attached, infallible pipeline
//!   (the behavioral baseline);
//! * `flaky-pipeline` — seeded random deployment failures with
//!   retry/backoff;
//! * `repair-outage` — every repair request fails, so retries run out and
//!   the controller force-disables the affected branches (the fail-safe);
//! * `storm-breaker` — a misspeculation-rate circuit breaker with mass
//!   eviction layered on top of the flaky pipeline.
//!
//! Each scenario also snapshots the controller halfway, restores it, and
//! replays the remainder, checking resume-equals-straight-run. The
//! process exits `0` only when every built-in invariant holds (see
//! [`Invariant`]), so CI can treat the subcommand as a smoke test; the
//! JSON is a pure function of `--seed` and `--events`.

use crate::cli::{number, value};
use rsc_conformance::json::Json;
use rsc_control::resilience::{
    BreakerConfig, DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy,
};
use rsc_control::{
    ControlStats, ControllerParams, ReactiveController, ResilienceConfig, TransitionKind,
};
use rsc_trace::{BranchRecord, Scenario};
use std::path::PathBuf;

/// Usage text printed (to stderr) alongside any parse error.
pub const USAGE: &str = "\
usage: repro resilience [FLAGS]

flags:
  --events N       events per scenario (default 200000)
  --seed N         workload and fault seed (default 42)
  --out PATH       JSON report path
                   (default resilience-artifacts/RESILIENCE_report.json)
  --metrics-out F  export the storm-breaker scenario's metrics to F";

/// Everything a `repro resilience` invocation decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceArgs {
    /// `--events` run length per scenario.
    pub events: u64,
    /// `--seed` workload/fault seed.
    pub seed: u64,
    /// `--out` report path.
    pub out: PathBuf,
    /// `--metrics-out` exposition path.
    pub metrics_out: Option<PathBuf>,
}

/// Parses the argument list (everything after the literal
/// `resilience`). Pure: no printing, no process exit.
///
/// # Errors
///
/// Returns a one-line diagnostic for a missing flag value, a
/// non-numeric value, or an unknown flag.
pub fn parse(args: &[String]) -> Result<ResilienceArgs, String> {
    let mut parsed = ResilienceArgs {
        events: 200_000,
        seed: 42,
        out: PathBuf::from("resilience-artifacts/RESILIENCE_report.json"),
        metrics_out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--events" => parsed.events = number(&mut it, "--events")?,
            "--seed" => parsed.seed = number(&mut it, "--seed")?,
            "--out" => parsed.out = PathBuf::from(value(&mut it, "--out")?),
            "--metrics-out" => {
                parsed.metrics_out = Some(PathBuf::from(value(&mut it, "--metrics-out")?))
            }
            other => return Err(format!("unknown resilience option: {other}")),
        }
    }
    Ok(parsed)
}

/// Runs the subcommand with its own argument list (everything after the
/// literal `resilience`). Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let ResilienceArgs {
        events,
        seed,
        out,
        metrics_out,
    } = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return 2;
        }
    };

    println!("resilience smoke: {events} events, seed {seed}");
    let trace = Scenario::PhaseFlip {
        branches: 6,
        flip_after: 900,
    }
    .generate(events, seed);

    let mut scenarios = Vec::new();
    let mut failures = Vec::new();
    let mut baseline_incorrect = 0u64;
    let mut storm_registry = None;
    for (name, config) in scenario_matrix(seed) {
        let outcome = run_scenario(name, config, &trace, metrics_out.is_some());
        if name == "fault-free" {
            baseline_incorrect = outcome.stats.incorrect;
        }
        if name == "storm-breaker" {
            storm_registry = outcome.registry.clone();
        }
        for inv in outcome.check(baseline_incorrect) {
            failures.push(format!("{name}: {inv}"));
        }
        println!(
            "  {name:<15} incorrect {:>8}  deploy failures {:>5}  retries {:>4}  \
             forced disables {:>3}  suppressed {:>4}  checkpoint {}",
            outcome.stats.incorrect,
            outcome.stats.deploy_failures,
            outcome.stats.deploy_retries,
            outcome.stats.forced_disables,
            outcome.stats.suppressed_enters,
            if outcome.checkpoint_ok {
                "ok"
            } else {
                "MISMATCH"
            },
        );
        scenarios.push(outcome.to_json());
    }

    let verdict = failures.is_empty();
    let report = Json::obj([
        ("experiment", Json::str("resilience")),
        ("seed", Json::Int(seed)),
        ("events", Json::Int(events)),
        ("scenarios", Json::Arr(scenarios)),
        (
            "failed_invariants",
            Json::Arr(failures.iter().map(Json::str).collect()),
        ),
        ("pass", Json::Bool(verdict)),
    ]);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create report directory");
        }
    }
    std::fs::write(&out, report.to_string()).expect("write report");
    println!("wrote {}", out.display());

    if let Some(mpath) = &metrics_out {
        // The storm-breaker scenario is the metric-richest run (deploy
        // faults, retries, and breaker phase changes all fire).
        let registry = storm_registry.expect("storm-breaker scenario always runs");
        crate::observe_cli::export_metrics(&registry, mpath);
        println!("wrote {}", mpath.display());
    }

    if verdict {
        println!("all resilience invariants hold");
        0
    } else {
        for f in &failures {
            println!("FAIL: {f}");
        }
        1
    }
}

/// Parameters sized so the phase-flip workload exercises selection,
/// eviction, revisit, and the retry machinery many times per run: the
/// monitor window fits well inside one 900-execution bias phase, and the
/// eviction threshold trips after ~10 misspeculations.
fn params() -> ControllerParams {
    let mut p = ControllerParams::scaled();
    p.monitor_period = 150;
    p.eviction = rsc_control::EvictionMode::Counter {
        up: 50,
        down: 1,
        threshold: 500,
    };
    p.revisit = rsc_control::Revisit::After(2_000);
    p.oscillation_limit = Some(20);
    p.optimization_latency = 200;
    p
}

fn scenario_matrix(seed: u64) -> [(&'static str, ResilienceConfig); 4] {
    let retry = RetryPolicy {
        max_attempts: 4,
        base_backoff: 300,
        max_backoff: 2_400,
    };
    [
        ("fault-free", ResilienceConfig::reliable()),
        (
            "flaky-pipeline",
            ResilienceConfig {
                deployer: DeployerSpec::Faulty(FaultSpec {
                    seed,
                    mode: FaultMode::FixedRate { per_mille: 350 },
                    scope: FaultScope::All,
                    wasted: 150,
                }),
                retry,
                breaker: None,
            },
        ),
        (
            "repair-outage",
            ResilienceConfig {
                deployer: DeployerSpec::Faulty(FaultSpec {
                    seed,
                    mode: FaultMode::FixedRate { per_mille: 1000 },
                    scope: FaultScope::RepairOnly,
                    wasted: 150,
                }),
                retry,
                breaker: None,
            },
        ),
        (
            "storm-breaker",
            ResilienceConfig {
                deployer: DeployerSpec::Faulty(FaultSpec {
                    seed,
                    mode: FaultMode::FixedRate { per_mille: 350 },
                    scope: FaultScope::All,
                    wasted: 150,
                }),
                retry,
                breaker: Some(BreakerConfig {
                    bucket_events: 400,
                    buckets: 4,
                    open_threshold: 0.08,
                    close_threshold: 0.02,
                    cooldown_events: 3_000,
                    probe_events: 1_500,
                    mass_evict_top_k: 3,
                }),
            },
        ),
    ]
}

struct ScenarioOutcome {
    name: &'static str,
    stats: ControlStats,
    breaker_openings: u64,
    checkpoint_ok: bool,
    checkpoint_bytes: usize,
    /// The scenario's metrics registry, when telemetry was requested
    /// (`--metrics-out`). Not part of the JSON report.
    registry: Option<rsc_control::MetricsRegistry>,
}

impl ScenarioOutcome {
    /// The invariants the smoke test enforces; empty means pass.
    fn check(&self, baseline_incorrect: u64) -> Vec<Invariant> {
        let mut out = Vec::new();
        if !self.checkpoint_ok {
            out.push(Invariant::CheckpointDiverged);
        }
        match self.name {
            "repair-outage" => {
                // The fail-safe must fire, and the damage from stale
                // speculating code must stay bounded relative to the
                // fault-free run.
                if self.stats.forced_disables == 0 {
                    out.push(Invariant::NoForcedDisables);
                }
                if self.stats.incorrect > 2 * baseline_incorrect.max(1) {
                    out.push(Invariant::UnboundedMisspeculation);
                }
            }
            "storm-breaker" if self.breaker_openings == 0 => {
                out.push(Invariant::BreakerNeverOpened);
            }
            _ => {}
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name)),
            ("events", Json::Int(self.stats.events)),
            ("correct", Json::Int(self.stats.correct)),
            ("incorrect", Json::Int(self.stats.incorrect)),
            ("reopt_requests", Json::Int(self.stats.reopt_requests)),
            ("deploy_failures", Json::Int(self.stats.deploy_failures)),
            ("deploy_retries", Json::Int(self.stats.deploy_retries)),
            ("forced_disables", Json::Int(self.stats.forced_disables)),
            ("suppressed_enters", Json::Int(self.stats.suppressed_enters)),
            ("breaker_openings", Json::Int(self.breaker_openings)),
            ("checkpoint_ok", Json::Bool(self.checkpoint_ok)),
            ("checkpoint_bytes", Json::Int(self.checkpoint_bytes as u64)),
        ])
    }
}

enum Invariant {
    NoForcedDisables,
    UnboundedMisspeculation,
    BreakerNeverOpened,
    CheckpointDiverged,
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Invariant::NoForcedDisables => {
                write!(f, "total repair outage produced no forced disables")
            }
            Invariant::UnboundedMisspeculation => write!(
                f,
                "misspeculation under repair outage exceeded 2x the fault-free run"
            ),
            Invariant::BreakerNeverOpened => {
                write!(f, "storm breaker never opened under sustained faults")
            }
            Invariant::CheckpointDiverged => {
                write!(f, "snapshot/restore replay diverged from the straight run")
            }
        }
    }
}

fn run_scenario(
    name: &'static str,
    config: ResilienceConfig,
    trace: &[BranchRecord],
    metrics: bool,
) -> ScenarioOutcome {
    let builder = |config: ResilienceConfig| {
        let mut b = ReactiveController::builder(params()).resilience(config);
        if metrics {
            b = b.metrics();
        }
        b
    };
    let mut ctl = builder(config).build().expect("config validates");
    for r in trace {
        ctl.observe(r);
    }

    // Checkpoint pillar: snapshot halfway, restore, replay the tail, and
    // demand bit-identical end state (byte equality of the re-snapshot).
    // With `metrics` on, the telemetry section rides along, so this also
    // proves histogram state replays identically after a restore.
    let mut first = builder(config).build().expect("validated");
    for r in &trace[..trace.len() / 2] {
        first.observe(r);
    }
    let cp = first.snapshot();
    let checkpoint_bytes = cp.len();
    let mut resumed = ReactiveController::restore(&cp).expect("own snapshot restores");
    for r in &trace[trace.len() / 2..] {
        resumed.observe(r);
    }
    let checkpoint_ok = resumed.snapshot() == ctl.snapshot();

    ScenarioOutcome {
        name,
        stats: ctl.stats(),
        breaker_openings: ctl.transition_log().count(TransitionKind::BreakerOpened),
        checkpoint_ok,
        checkpoint_bytes,
        registry: ctl.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = parse(&[]).unwrap();
        assert_eq!(d.events, 200_000);
        assert_eq!(d.seed, 42);
        assert_eq!(
            d.out,
            PathBuf::from("resilience-artifacts/RESILIENCE_report.json")
        );
        assert_eq!(d.metrics_out, None);
        let p = parse(&argv(&[
            "--events",
            "9000",
            "--seed",
            "3",
            "--out",
            "r.json",
            "--metrics-out",
            "r.prom",
        ]))
        .unwrap();
        assert_eq!(p.events, 9000);
        assert_eq!(p.seed, 3);
        assert_eq!(p.out, PathBuf::from("r.json"));
        assert_eq!(p.metrics_out, Some(PathBuf::from("r.prom")));
    }

    #[test]
    fn parse_diagnoses_bad_input_without_panicking() {
        assert_eq!(
            parse(&argv(&["--events"])).unwrap_err(),
            "--events needs a value"
        );
        assert_eq!(
            parse(&argv(&["--seed", "lots"])).unwrap_err(),
            "--seed needs an integer, got \"lots\""
        );
        assert_eq!(
            parse(&argv(&["--bogus"])).unwrap_err(),
            "unknown resilience option: --bogus"
        );
    }

    #[test]
    fn usage_error_exits_two() {
        assert_eq!(run(&argv(&["--bogus"])), 2);
        assert_eq!(run(&argv(&["--events", "lots"])), 2);
    }

    #[test]
    fn report_is_deterministic_for_a_fixed_seed() {
        let trace = Scenario::PhaseFlip {
            branches: 6,
            flip_after: 900,
        }
        .generate(20_000, 9);
        // Only determinism and the checkpoint property here — the
        // scale-dependent fail-safe/breaker invariants get a full-size
        // run in `repair_outage_forces_disables_with_bounded_damage`.
        let render = || {
            let mut out = Vec::new();
            for (name, config) in scenario_matrix(9) {
                let o = run_scenario(name, config, &trace, true);
                assert!(o.checkpoint_ok, "{name} checkpoint replay diverged");
                out.push(o.to_json().to_string());
            }
            out.join("\n")
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn repair_outage_forces_disables_with_bounded_damage() {
        let trace = Scenario::PhaseFlip {
            branches: 6,
            flip_after: 900,
        }
        .generate(60_000, 42);
        let matrix = scenario_matrix(42);
        let baseline = run_scenario(matrix[0].0, matrix[0].1, &trace, false);
        let outage = run_scenario(matrix[2].0, matrix[2].1, &trace, false);
        assert_eq!(outage.name, "repair-outage");
        assert!(outage.stats.forced_disables > 0, "fail-safe must fire");
        assert!(
            outage.stats.incorrect <= 2 * baseline.stats.incorrect.max(1),
            "outage misspeculation {} vs fault-free {}",
            outage.stats.incorrect,
            baseline.stats.incorrect
        );
        assert!(outage.checkpoint_ok);
    }
}
