//! The `repro load` subcommand: drive a seeded multi-client storm —
//! optionally with chaos clients in the mix — at a running `repro
//! serve` daemon and write a structured `BENCH_serve.json` report.
//!
//! # Determinism boundary
//!
//! The run is a pure function of `--seed` *up to network timing*: the
//! tenant partition, every frame's scenario and trace bytes, and every
//! chaos roll derive from `Xoshiro256::seed_from(seed)` forked per
//! client (see [`rsc_serve::client_plan`]). Counts in the report
//! (frames sent/acked/rejected, events acked, chaos injections) repeat
//! exactly for a fixed seed against a fresh daemon; latencies and
//! throughput are wall-clock measurements and do not.
//!
//! Exit status: `0` when every request resolved to an `Ack` or a
//! structured `Reject` (and, with `--drain`, every tenant flushed);
//! `1` when transport failed even after retries or the drain lost
//! state; `2` for usage errors.

use crate::cli::{at_least_one, number, value};
use rsc_conformance::json::Json;
use rsc_serve::{
    fetch_metrics, request_drain, run_load, ChaosConfig, Endpoint, LoadConfig, LoadReport,
    RejectCode,
};
use std::path::PathBuf;

/// Usage text printed (to stderr) alongside any parse error.
pub const USAGE: &str = "\
usage: repro load [FLAGS]

flags:
  --addr HOST:PORT  daemon TCP address (default 127.0.0.1:7433)
  --unix PATH       daemon Unix socket path
  --clients N       concurrent clients (default 4, N >= 1)
  --tenants N       distinct tenants across all clients (default 16, N >= 1)
  --frames N        event frames per tenant (default 4, N >= 1)
  --events N        events per frame (default 500, N >= 1)
  --seed N          root seed; counts are a pure function of it (default 42)
  --chaos PROFILE   client fault profile: off|light|heavy (default off)
  --chaos-seed N    chaos RNG seed (default: the --seed value)
  --out PATH        report path (default BENCH_serve.json)
  --drain           request a graceful drain after the storm and fold the
                    result into the report and exit status";

/// Everything a `repro load` invocation decided.
#[derive(Debug, Clone)]
pub struct LoadArgs {
    /// The engine configuration (endpoint, shape, seed, chaos).
    pub load: LoadConfig,
    /// `--chaos` profile name, kept for the report.
    pub chaos_profile: String,
    /// `--out` report path.
    pub out: PathBuf,
    /// `--drain` after the storm.
    pub drain: bool,
}

/// Parses the argument list (everything after the literal `load`).
/// Pure: no printing, no process exit, no sockets.
///
/// # Errors
///
/// Returns a one-line diagnostic for a missing flag value, a
/// non-numeric value, a zero where at least 1 is required, an unknown
/// chaos profile, conflicting `--addr`/`--unix`, or an unknown flag.
pub fn parse(args: &[String]) -> Result<LoadArgs, String> {
    let mut addr: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut chaos_profile = "off".to_string();
    let mut chaos_seed: Option<u64> = None;
    let mut load = LoadConfig::new(Endpoint::Tcp("127.0.0.1:7433".to_string()));
    load.seed = 42;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut drain = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(value(&mut it, "--addr")?.to_string()),
            "--unix" => unix = Some(PathBuf::from(value(&mut it, "--unix")?)),
            "--clients" => load.clients = at_least_one(number(&mut it, "--clients")?, "--clients")?,
            "--tenants" => load.tenants = at_least_one(number(&mut it, "--tenants")?, "--tenants")?,
            "--frames" => {
                load.frames_per_tenant = at_least_one(number(&mut it, "--frames")?, "--frames")?
            }
            "--events" => {
                load.events_per_frame = at_least_one(number(&mut it, "--events")?, "--events")?
            }
            "--seed" => load.seed = number(&mut it, "--seed")?,
            "--chaos" => chaos_profile = value(&mut it, "--chaos")?.to_string(),
            "--chaos-seed" => chaos_seed = Some(number(&mut it, "--chaos-seed")?),
            "--out" => out = PathBuf::from(value(&mut it, "--out")?),
            "--drain" => drain = true,
            other => return Err(format!("unknown load option: {other}")),
        }
    }
    if addr.is_some() && unix.is_some() {
        return Err("--addr and --unix are mutually exclusive".to_string());
    }
    load.endpoint = match unix {
        Some(path) => Endpoint::Unix(path),
        None => Endpoint::Tcp(addr.unwrap_or_else(|| "127.0.0.1:7433".to_string())),
    };
    load.chaos = ChaosConfig::profile(&chaos_profile, chaos_seed.unwrap_or(load.seed))?;
    Ok(LoadArgs {
        load,
        chaos_profile,
        out,
        drain,
    })
}

/// The structured report (`BENCH_serve.json`).
fn report_json(args: &LoadArgs, report: &LoadReport, drain: Option<(u64, u64)>) -> Json {
    Json::obj([
        ("format", Json::Int(1)),
        ("experiment", Json::str("serve-load")),
        ("seed", Json::Int(args.load.seed)),
        ("clients", Json::Int(report.clients as u64)),
        ("tenants", Json::Int(report.tenants)),
        (
            "frames_per_tenant",
            Json::Int(args.load.frames_per_tenant as u64),
        ),
        ("events_per_frame", Json::Int(args.load.events_per_frame)),
        ("chaos_profile", Json::str(&args.chaos_profile)),
        ("frames_sent", Json::Int(report.frames_sent)),
        ("frames_acked", Json::Int(report.frames_acked)),
        ("frames_rejected", Json::Int(report.frames_rejected)),
        (
            "rejects_by_code",
            Json::obj(
                RejectCode::ALL
                    .iter()
                    .zip(report.rejects_by_code.iter())
                    .map(|(code, n)| (code.label(), Json::Int(*n)))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("failed_requests", Json::Int(report.failed_requests)),
        ("events_acked", Json::Int(report.events_acked)),
        ("retries", Json::Int(report.retries)),
        ("chaos_torn", Json::Int(report.chaos_torn)),
        ("chaos_disconnects", Json::Int(report.chaos_disconnects)),
        ("chaos_loris", Json::Int(report.chaos_loris)),
        ("elapsed_ms", Json::Int(report.elapsed.as_millis() as u64)),
        ("p50_us", Json::Int(report.p50_us)),
        ("p99_us", Json::Int(report.p99_us)),
        ("max_us", Json::Int(report.max_us)),
        ("tenants_per_sec", Json::Num(report.tenants_per_sec())),
        ("frames_per_sec", Json::Num(report.frames_per_sec())),
        (
            "drain",
            match drain {
                Some((flushed, failed)) => Json::obj([
                    ("flushed", Json::Int(flushed)),
                    ("failed", Json::Int(failed)),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

/// Runs the subcommand with its own argument list (everything after the
/// literal `load`). Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return 2;
        }
    };

    println!(
        "load: {} client(s) x {} tenant(s), {} frame(s)/tenant, {} events/frame, \
         seed {}, chaos {}",
        parsed.load.clients,
        parsed.load.tenants,
        parsed.load.frames_per_tenant,
        parsed.load.events_per_frame,
        parsed.load.seed,
        parsed.chaos_profile,
    );
    let report = run_load(&parsed.load);
    println!(
        "  {} frames sent: {} acked, {} rejected, {} failed transport; \
         {} events acked, {} retries",
        report.frames_sent,
        report.frames_acked,
        report.frames_rejected,
        report.failed_requests,
        report.events_acked,
        report.retries,
    );
    for (code, n) in RejectCode::ALL.iter().zip(report.rejects_by_code.iter()) {
        if *n > 0 {
            println!("    rejected {}: {n}", code.label());
        }
    }
    if parsed.load.chaos.enabled() {
        println!(
            "  chaos injected: {} torn frame(s), {} disconnect(s), {} slow-loris send(s)",
            report.chaos_torn, report.chaos_disconnects, report.chaos_loris,
        );
    }
    println!(
        "  latency p50 {} us, p99 {} us, max {} us; {:.1} tenants/s, {:.1} frames/s",
        report.p50_us,
        report.p99_us,
        report.max_us,
        report.tenants_per_sec(),
        report.frames_per_sec(),
    );

    let drain = if parsed.drain {
        match request_drain(&parsed.load.endpoint) {
            Ok((flushed, failed)) => {
                println!("  drain: {flushed} tenant(s) flushed, {failed} failed");
                Some((flushed, failed))
            }
            Err(e) => {
                eprintln!("load: drain request failed: {e}");
                Some((0, u64::MAX))
            }
        }
    } else {
        None
    };

    let doc = report_json(&parsed, &report, drain);
    if let Some(dir) = parsed.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("load: cannot create {}: {e}", dir.display());
            return 1;
        }
    }
    if let Err(e) = std::fs::write(&parsed.out, doc.to_string()) {
        eprintln!("load: cannot write {}: {e}", parsed.out.display());
        return 1;
    }
    println!("wrote {}", parsed.out.display());

    let drained_clean = drain.map(|(_, failed)| failed == 0).unwrap_or(true);
    if report.failed_requests == 0 && drained_clean {
        0
    } else {
        1
    }
}

/// Fetches and prints the daemon's tenants-only metrics exposition
/// (used by tests and scripts; not currently wired to a flag).
///
/// # Errors
///
/// Propagates transport or protocol failures as strings.
pub fn print_tenant_metrics(endpoint: &Endpoint) -> Result<(), String> {
    let text = fetch_metrics(endpoint, true)?;
    print!("{text}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = parse(&[]).unwrap();
        assert_eq!(d.load.clients, 4);
        assert_eq!(d.load.tenants, 16);
        assert_eq!(d.load.frames_per_tenant, 4);
        assert_eq!(d.load.events_per_frame, 500);
        assert_eq!(d.load.seed, 42);
        assert!(!d.load.chaos.enabled());
        assert_eq!(d.out, PathBuf::from("BENCH_serve.json"));
        assert!(!d.drain);
        let p = parse(&argv(&[
            "--addr",
            "10.0.0.1:9",
            "--clients",
            "2",
            "--tenants",
            "6",
            "--frames",
            "3",
            "--events",
            "100",
            "--seed",
            "7",
            "--chaos",
            "heavy",
            "--out",
            "out/b.json",
            "--drain",
        ]))
        .unwrap();
        assert_eq!(p.load.endpoint, Endpoint::Tcp("10.0.0.1:9".to_string()));
        assert_eq!(p.load.clients, 2);
        assert_eq!(p.load.tenants, 6);
        assert_eq!(p.load.frames_per_tenant, 3);
        assert_eq!(p.load.events_per_frame, 100);
        assert_eq!(p.load.seed, 7);
        assert!(p.load.chaos.enabled());
        // --chaos-seed defaults to --seed so the whole run keys off one
        // number.
        assert_eq!(p.load.chaos.seed, 7);
        assert_eq!(p.chaos_profile, "heavy");
        assert!(p.drain);
    }

    #[test]
    fn unix_endpoint_and_explicit_chaos_seed() {
        let p = parse(&argv(&[
            "--unix",
            "/tmp/s.sock",
            "--chaos",
            "light",
            "--chaos-seed",
            "99",
        ]))
        .unwrap();
        assert_eq!(
            p.load.endpoint,
            Endpoint::Unix(PathBuf::from("/tmp/s.sock"))
        );
        assert_eq!(p.load.chaos.seed, 99);
    }

    #[test]
    fn parse_diagnoses_bad_input_without_panicking() {
        assert_eq!(
            parse(&argv(&["--clients", "0"])).unwrap_err(),
            "--clients must be at least 1"
        );
        assert_eq!(
            parse(&argv(&["--tenants", "many"])).unwrap_err(),
            "--tenants needs an integer, got \"many\""
        );
        assert_eq!(parse(&argv(&["--out"])).unwrap_err(), "--out needs a value");
        assert_eq!(
            parse(&argv(&["--bogus"])).unwrap_err(),
            "unknown load option: --bogus"
        );
        assert_eq!(
            parse(&argv(&["--addr", "a:1", "--unix", "s"])).unwrap_err(),
            "--addr and --unix are mutually exclusive"
        );
        assert!(parse(&argv(&["--chaos", "mild"])).is_err());
    }

    #[test]
    fn usage_error_exits_two() {
        assert_eq!(run(&argv(&["--bogus"])), 2);
        assert_eq!(run(&argv(&["--clients", "0"])), 2);
    }

    #[test]
    fn report_json_covers_every_reject_code() {
        let parsed = parse(&[]).unwrap();
        let report = LoadReport {
            rejects_by_code: [1, 2, 3, 4, 5, 6],
            frames_rejected: 21,
            ..LoadReport::default()
        };
        let doc = report_json(&parsed, &report, Some((5, 0)));
        let text = doc.to_string();
        for code in RejectCode::ALL {
            assert!(text.contains(code.label()), "{text}");
        }
        assert!(text.contains("\"drain\""));
    }
}
