//! End-to-end daemon tests over real sockets: chaos storms, graceful
//! drain, bit-identical restart, and seeded load determinism.

use rsc_serve::{
    fetch_metrics, request_drain, run_load, ChaosConfig, Endpoint, LoadConfig, Server, ServerConfig,
};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Daemon {
    server: Server,
    stop: Arc<AtomicBool>,
    endpoint: Endpoint,
    accept: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start(dir: &PathBuf, tweak: impl FnOnce(&mut ServerConfig)) -> Daemon {
        let mut cfg = ServerConfig::new(dir);
        cfg.io_timeout = Duration::from_millis(500);
        tweak(&mut cfg);
        let server = Server::new(cfg).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let server = server.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || server.serve_tcp(listener, stop))
        };
        Daemon {
            server,
            stop,
            endpoint,
            accept: Some(accept),
        }
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join().unwrap().unwrap();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn load_cfg(endpoint: &Endpoint, seed: u64) -> LoadConfig {
    let mut cfg = LoadConfig::new(endpoint.clone());
    cfg.clients = 4;
    cfg.tenants = 10;
    cfg.frames_per_tenant = 3;
    cfg.events_per_frame = 200;
    cfg.seed = seed;
    cfg
}

#[test]
fn storm_with_chaos_drains_cleanly_and_restarts_bit_identically() {
    let dir = fresh_dir("rsc_e2e_chaos_storm");
    let daemon = Daemon::start(&dir, |cfg| {
        // Shed aggressively and fail some checkpoint writes so both the
        // eviction and the retry paths run under load.
        cfg.max_live_tenants = 4;
        cfg.chaos = ChaosConfig {
            seed: 5,
            write_error_per_mille: 100,
            ..ChaosConfig::off()
        };
    });
    let mut load = load_cfg(&daemon.endpoint, 77);
    load.chaos = ChaosConfig::profile("heavy", 77).unwrap();
    let report = run_load(&load);
    assert_eq!(
        report.failed_requests, 0,
        "every request resolved: {report:?}"
    );
    assert_eq!(report.frames_acked, report.frames_sent, "no quota in play");
    assert_eq!(
        report.events_acked,
        report.frames_sent * load.events_per_frame
    );
    assert!(
        report.chaos_torn + report.chaos_disconnects + report.chaos_loris > 0,
        "the heavy profile must actually inject faults: {report:?}"
    );
    let counters = daemon.server.counters();
    assert!(counters.shed_tenants > 0, "shedding ran: {counters:?}");
    assert_eq!(counters.torn_frames, report.chaos_torn);

    let before = fetch_metrics(&daemon.endpoint, true).unwrap();
    let (flushed, failed) = request_drain(&daemon.endpoint).unwrap();
    assert_eq!(failed, 0, "drain retries out-roll the chaos die");
    assert!(flushed > 0);
    daemon.shutdown();

    // A fresh process over the same checkpoint dir serves identical
    // per-tenant metrics: nothing was lost to eviction, chaos, or drain.
    let daemon2 = Daemon::start(&dir, |_| {});
    let after = fetch_metrics(&daemon2.endpoint, true).unwrap();
    assert_eq!(before, after, "exposition identity across restart");
    daemon2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_seed_loads_produce_identical_tenant_expositions() {
    let dir_a = fresh_dir("rsc_e2e_seed_a");
    let dir_b = fresh_dir("rsc_e2e_seed_b");
    let run = |dir: &PathBuf| {
        let daemon = Daemon::start(dir, |_| {});
        let report = run_load(&load_cfg(&daemon.endpoint, 123));
        assert_eq!(report.failed_requests, 0);
        let text = fetch_metrics(&daemon.endpoint, true).unwrap();
        daemon.shutdown();
        text
    };
    let a = run(&dir_a);
    let b = run(&dir_b);
    assert!(!a.is_empty());
    assert_eq!(a, b, "a load run is a pure function of its seed");
    // A different seed ingests different streams.
    let dir_c = fresh_dir("rsc_e2e_seed_c");
    let daemon = Daemon::start(&dir_c, |_| {});
    run_load(&load_cfg(&daemon.endpoint, 124));
    let c = fetch_metrics(&daemon.endpoint, true).unwrap();
    daemon.shutdown();
    assert_ne!(a, c);
    for dir in [dir_a, dir_b, dir_c] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn quota_storm_rejects_overflow_but_keeps_serving() {
    let dir = fresh_dir("rsc_e2e_quota");
    let daemon = Daemon::start(&dir, |cfg| {
        cfg.quota = rsc_serve::QuotaConfig {
            max_events: 400,
            max_bytes: 0,
        };
    });
    let load = load_cfg(&daemon.endpoint, 9);
    let report = run_load(&load);
    assert_eq!(report.failed_requests, 0);
    // 3 frames x 200 events against a 400-event quota: the third frame
    // per tenant must be rejected, the first two acked.
    assert_eq!(report.frames_acked, load.tenants * 2);
    assert_eq!(report.frames_rejected, load.tenants);
    let text = fetch_metrics(&daemon.endpoint, false).unwrap();
    assert!(
        text.contains("rsc_serve_rejected_frames_total 10"),
        "{text}"
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
