//! Fault-tolerant multi-tenant serving for reactive speculation
//! controllers.
//!
//! This crate turns the single-process controller engine into a
//! long-running daemon: many independent branch-event streams (tenants)
//! multiplex over TCP or Unix-socket connections carrying
//! length-prefixed, checksummed [`frame`]s; each tenant gets its own
//! sharded controller, admission quotas, and a bounded ingest queue.
//! Every degradation path is explicit and tested:
//!
//! * **quotas** — per-tenant event/byte ceilings answered with
//!   structured reject frames ([`tenant`]);
//! * **backpressure** — a per-tenant admission gate so a hot tenant
//!   stalls only itself ([`server`]);
//! * **shedding** — coldest tenants evicted to checkpoint files under
//!   memory pressure, restored transparently on next touch
//!   ([`storage`], [`server`]);
//! * **graceful drain** — SIGTERM (or a `Drain` frame) stops admission
//!   and flushes every tenant; restart resumes bit-identically;
//! * **chaos** — deterministic fault injection at the I/O and storage
//!   seams ([`chaos`]), driven by the [`load`] harness's misbehaving
//!   clients ([`client`]).
//!
//! The binary surface lives in the `repro` CLI (`repro serve`,
//! `repro load`); this crate is the library under it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod frame;
pub mod load;
pub mod server;
pub mod storage;
pub mod tenant;

pub use chaos::{ChaosConfig, ChaosDie};
pub use client::{Client, ClientConfig, ClientError, ClientFault, Endpoint};
pub use frame::{read_frame, read_frame_with_limit, write_frame, Frame, FrameError, RejectCode};
pub use load::{client_plan, fetch_metrics, request_drain, run_load, LoadConfig, LoadReport};
pub use server::{CounterSnapshot, DrainReport, Server, ServerConfig};
pub use storage::{CheckpointStore, StoreError, TenantRecord};
pub use tenant::{IngestReject, IngestReport, QuotaConfig, Tenant};
