//! The serve wire protocol: length-prefixed, checksummed frames.
//!
//! Every frame on a serve connection is
//!
//! ```text
//! body length u32 LE | body | FNV-1a u64 LE over the body
//! body := kind u8 | kind-specific payload
//! ```
//!
//! mirroring the hardened trace format's defenses at the transport
//! layer: the length header is bounds-checked against a hard ceiling
//! *before* any allocation is sized from it, and the checksum footer
//! catches bit flips whose fields still decode. Event payloads are a
//! complete `rsc_trace::io` stream (magic, version, count, checksum),
//! so the event data is covered by *two* independent checksums and the
//! server can hand the payload to the hardened trace reader unchanged.
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`FrameError`]. A connection closed cleanly *between* frames is
//! [`FrameError::Eof`], distinct from a mid-frame truncation
//! ([`FrameError::Truncated`]) — the server treats the first as a
//! normal goodbye and the second as a torn frame worth counting.

use std::io::{self, Read, Write};

/// Hard ceiling on the body length [`read_frame`] accepts (16 MiB).
/// Roughly 4M events at the trace encoding's worst case — far above any
/// sane chunk, far below an allocation bomb.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Smallest valid body: one kind byte.
const MIN_FRAME_LEN: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Why a tenant's events were refused. Carried inside [`Frame::Reject`]
/// so clients always learn *which* defense fired.
///
/// Marked `#[non_exhaustive]`: every new server-side defense mints a
/// new code, and clients must treat unknown codes as a generic refusal
/// rather than failing to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectCode {
    /// The tenant's lifetime event quota would be exceeded.
    QuotaEvents,
    /// The tenant's lifetime byte quota would be exceeded.
    QuotaBytes,
    /// The server is draining and no longer accepts events.
    Draining,
    /// The event payload failed the hardened trace decoder.
    BadPayload,
    /// The tenant's ingest queue stayed full past the backpressure
    /// deadline.
    Overloaded,
    /// The tenant's state could not be restored from its checkpoint.
    TenantUnavailable,
}

impl RejectCode {
    /// All codes, for metrics enumeration.
    pub const ALL: [RejectCode; 6] = [
        RejectCode::QuotaEvents,
        RejectCode::QuotaBytes,
        RejectCode::Draining,
        RejectCode::BadPayload,
        RejectCode::Overloaded,
        RejectCode::TenantUnavailable,
    ];

    /// Stable wire tag.
    fn tag(self) -> u8 {
        match self {
            RejectCode::QuotaEvents => 0,
            RejectCode::QuotaBytes => 1,
            RejectCode::Draining => 2,
            RejectCode::BadPayload => 3,
            RejectCode::Overloaded => 4,
            RejectCode::TenantUnavailable => 5,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        RejectCode::ALL.into_iter().find(|c| c.tag() == tag)
    }

    /// Stable label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectCode::QuotaEvents => "quota_events",
            RejectCode::QuotaBytes => "quota_bytes",
            RejectCode::Draining => "draining",
            RejectCode::BadPayload => "bad_payload",
            RejectCode::Overloaded => "overloaded",
            RejectCode::TenantUnavailable => "tenant_unavailable",
        }
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One protocol message. Client→server kinds come first, server→client
/// kinds second; the server answers every request frame with exactly one
/// response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A batch of branch events for one tenant. `payload` is a complete
    /// `rsc_trace::io` stream (the server decodes it with
    /// [`rsc_trace::io::read_trace_with_limit`]).
    Events {
        /// Tenant the events belong to.
        tenant: u64,
        /// Serialized trace stream.
        payload: Vec<u8>,
    },
    /// Request the Prometheus exposition. `tenants_only` restricts the
    /// text to per-tenant families, which are a pure function of the
    /// ingested streams (server-process counters are not).
    MetricsRequest {
        /// Omit server-process families from the exposition.
        tenants_only: bool,
    },
    /// Administrative drain request: equivalent to SIGTERM.
    Drain,
    /// Liveness probe.
    Ping,

    /// Events accepted and applied.
    Ack {
        /// Echoed tenant id.
        tenant: u64,
        /// Events accepted from this frame.
        accepted: u64,
        /// Tenant's lifetime accepted-event total, after this frame.
        tenant_events: u64,
    },
    /// Events refused; nothing was applied.
    Reject {
        /// Echoed tenant id.
        tenant: u64,
        /// Which defense fired.
        code: RejectCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The Prometheus text exposition.
    MetricsText {
        /// Rendered exposition.
        text: String,
    },
    /// Drain acknowledged / liveness answer.
    Pong,
    /// The request frame could not be served (decode failure, internal
    /// error). The connection stays usable.
    ServerError {
        /// What went wrong.
        detail: String,
    },
}

/// Why a frame failed to decode.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// Underlying I/O failure (including timeouts surfaced by the
    /// transport).
    Io(io::Error),
    /// The length header exceeds [`MAX_FRAME_LEN`] (or is below the
    /// 1-byte minimum); rejected before any allocation is sized from it.
    BadLength {
        /// Length claimed by the header.
        len: u32,
        /// The enforced ceiling.
        limit: u32,
    },
    /// The stream ended (or timed out) mid-frame: a torn frame.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// The body checksum does not match the footer.
    ChecksumMismatch {
        /// Checksum recomputed over the received body.
        computed: u64,
        /// Checksum stored in the footer.
        stored: u64,
    },
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A field inside the body is malformed.
    Corrupt {
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => f.write_str("connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadLength { len, limit } => {
                write!(f, "frame length {len} outside 1..={limit}")
            }
            FrameError::Truncated { what } => write!(f, "torn frame while reading {what}"),
            FrameError::ChecksumMismatch { computed, stored } => write!(
                f,
                "frame checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Corrupt { what } => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Body-local reader over the already-received frame bytes.
struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(FrameError::Truncated { what })?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self, what: &'static str) -> Result<u64, FrameError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            if shift >= 64 {
                return Err(FrameError::Corrupt {
                    what: "varint too long",
                });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    fn rest_utf8(&mut self, what: &'static str) -> Result<String, FrameError> {
        String::from_utf8(self.rest().to_vec()).map_err(|_| FrameError::Corrupt { what })
    }
}

impl Frame {
    /// Serializes the frame: length prefix, body, checksum footer.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(16);
        match self {
            Frame::Events { tenant, payload } => {
                body.push(0x01);
                push_varint(&mut body, *tenant);
                body.extend_from_slice(payload);
            }
            Frame::MetricsRequest { tenants_only } => {
                body.push(0x02);
                body.push(u8::from(*tenants_only));
            }
            Frame::Drain => body.push(0x03),
            Frame::Ping => body.push(0x04),
            Frame::Ack {
                tenant,
                accepted,
                tenant_events,
            } => {
                body.push(0x81);
                push_varint(&mut body, *tenant);
                push_varint(&mut body, *accepted);
                push_varint(&mut body, *tenant_events);
            }
            Frame::Reject {
                tenant,
                code,
                detail,
            } => {
                body.push(0x82);
                push_varint(&mut body, *tenant);
                body.push(code.tag());
                body.extend_from_slice(detail.as_bytes());
            }
            Frame::MetricsText { text } => {
                body.push(0x83);
                body.extend_from_slice(text.as_bytes());
            }
            Frame::Pong => body.push(0x84),
            Frame::ServerError { detail } => {
                body.push(0x85);
                body.extend_from_slice(detail.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let checksum = fnv1a(&body);
        out.extend_from_slice(&body);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a frame from its body bytes (between the length prefix
    /// and the footer).
    ///
    /// # Errors
    ///
    /// Returns a typed [`FrameError`] for every malformed input; never
    /// panics.
    pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let mut b = Body { buf: body, pos: 0 };
        let kind = b.u8("frame kind")?;
        let frame = match kind {
            0x01 => Frame::Events {
                tenant: b.varint("tenant id")?,
                payload: b.rest().to_vec(),
            },
            0x02 => {
                let flag = b.u8("metrics scope")?;
                if flag > 1 {
                    return Err(FrameError::Corrupt {
                        what: "metrics scope flag",
                    });
                }
                Frame::MetricsRequest {
                    tenants_only: flag == 1,
                }
            }
            0x03 => Frame::Drain,
            0x04 => Frame::Ping,
            0x81 => Frame::Ack {
                tenant: b.varint("ack tenant")?,
                accepted: b.varint("ack accepted")?,
                tenant_events: b.varint("ack total")?,
            },
            0x82 => {
                let tenant = b.varint("reject tenant")?;
                let tag = b.u8("reject code")?;
                let code = RejectCode::from_tag(tag).ok_or(FrameError::Corrupt {
                    what: "unknown reject code",
                })?;
                Frame::Reject {
                    tenant,
                    code,
                    detail: b.rest_utf8("reject detail not utf-8")?,
                }
            }
            0x83 => Frame::MetricsText {
                text: b.rest_utf8("metrics text not utf-8")?,
            },
            0x84 => Frame::Pong,
            0x85 => Frame::ServerError {
                detail: b.rest_utf8("error detail not utf-8")?,
            },
            other => return Err(FrameError::BadKind(other)),
        };
        if b.pos != body.len() {
            return Err(FrameError::Corrupt {
                what: "trailing bytes in frame body",
            });
        }
        Ok(frame)
    }
}

/// Writes one frame to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF on the *first*
/// byte to `on_empty` and any later short read to a torn-frame error.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
    mut on_empty: Option<FrameError>,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(match on_empty.take() {
                    Some(e) if filled == 0 => e,
                    _ => FrameError::Truncated { what },
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, enforcing `max_len` on the length header before any
/// allocation is sized from it.
///
/// # Errors
///
/// [`FrameError::Eof`] when the peer closed cleanly between frames; a
/// typed error for every torn, oversized, corrupted, or unknown frame.
pub fn read_frame_with_limit<R: Read>(r: &mut R, max_len: u32) -> Result<Frame, FrameError> {
    let mut len_bytes = [0u8; 4];
    read_exact_or(r, &mut len_bytes, "frame length", Some(FrameError::Eof))?;
    let len = u32::from_le_bytes(len_bytes);
    if !(MIN_FRAME_LEN..=max_len).contains(&len) {
        return Err(FrameError::BadLength {
            len,
            limit: max_len,
        });
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or(r, &mut body, "frame body", None)?;
    let mut footer = [0u8; 8];
    read_exact_or(r, &mut footer, "frame checksum", None)?;
    let stored = u64::from_le_bytes(footer);
    let computed = fnv1a(&body);
    if stored != computed {
        return Err(FrameError::ChecksumMismatch { computed, stored });
    }
    Frame::decode_body(&body)
}

/// [`read_frame_with_limit`] at the default [`MAX_FRAME_LEN`].
///
/// # Errors
///
/// See [`read_frame_with_limit`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    read_frame_with_limit(r, MAX_FRAME_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let back = read_frame(&mut bytes.as_slice()).expect("frame roundtrips");
        assert_eq!(back, frame);
    }

    #[test]
    fn every_kind_roundtrips() {
        roundtrip(Frame::Events {
            tenant: 0,
            payload: vec![],
        });
        roundtrip(Frame::Events {
            tenant: u64::MAX,
            payload: b"RSCT...".to_vec(),
        });
        roundtrip(Frame::MetricsRequest { tenants_only: true });
        roundtrip(Frame::MetricsRequest {
            tenants_only: false,
        });
        roundtrip(Frame::Drain);
        roundtrip(Frame::Ping);
        roundtrip(Frame::Ack {
            tenant: 3,
            accepted: 1000,
            tenant_events: 123_456,
        });
        for code in RejectCode::ALL {
            roundtrip(Frame::Reject {
                tenant: 9,
                code,
                detail: format!("because {code}"),
            });
        }
        roundtrip(Frame::MetricsText {
            text: "# HELP x\n".into(),
        });
        roundtrip(Frame::Pong);
        roundtrip(Frame::ServerError {
            detail: "broken".into(),
        });
    }

    #[test]
    fn clean_eof_is_distinct_from_torn_frame() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut &*empty), Err(FrameError::Eof)));
        let bytes = Frame::Ping.encode();
        for cut in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_header_is_rejected_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        match read_frame(&mut bytes.as_slice()) {
            Err(FrameError::BadLength { len, limit }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(limit, MAX_FRAME_LEN);
            }
            other => panic!("expected BadLength, got {other:?}"),
        }
        // Zero-length bodies are equally invalid.
        let zero = 0u32.to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut zero.as_slice()),
            Err(FrameError::BadLength { len: 0, .. })
        ));
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let frame = Frame::Ack {
            tenant: 5,
            accepted: 77,
            tenant_events: 1234,
        };
        let clean = frame.encode();
        for i in 4..clean.len() - 8 {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            let err = read_frame(&mut bytes.as_slice()).unwrap_err();
            assert!(
                matches!(err, FrameError::ChecksumMismatch { .. }),
                "flip at {i} gave {err}"
            );
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_typed() {
        assert!(matches!(
            Frame::decode_body(&[0x7f]),
            Err(FrameError::BadKind(0x7f))
        ));
        assert!(matches!(
            Frame::decode_body(&[0x04, 0x00]),
            Err(FrameError::Corrupt { .. })
        ));
        assert!(matches!(
            Frame::decode_body(&[0x02, 0x05]),
            Err(FrameError::Corrupt { .. })
        ));
        assert!(matches!(
            Frame::decode_body(&[0x82, 0x01, 0xff]),
            Err(FrameError::Corrupt { .. })
        ));
    }
}
