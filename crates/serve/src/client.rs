//! A serve-protocol client with retry, timeout, and backoff — plus the
//! misbehaving variants the chaos harness uses to attack the server.
//!
//! The client is strictly request-response: one frame out, one frame
//! back. On any transport failure (connect refused, mid-response
//! disconnect, timeout) it drops the connection, backs off
//! exponentially, reconnects, and *resends the whole request* — the
//! server's admission logic is level-based (quotas and controller state,
//! not per-frame dedup), so the retry either lands or earns a structured
//! reject. Faults injected via [`ClientFault`] model the client side of
//! the chaos matrix: torn frames, between-frame disconnects, and
//! slow-loris writes.

use crate::frame::{read_frame_with_limit, Frame, FrameError, MAX_FRAME_LEN};
use crate::server::ServeStream;
use std::io::{self, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// Unix socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Opens one connection to the endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(&self) -> io::Result<Box<dyn ServeStream>> {
        Ok(match self {
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr)?),
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
        })
    }
}

/// Client behavior knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Where to connect.
    pub endpoint: Endpoint,
    /// Transport failures tolerated per request before giving up.
    pub max_retries: u32,
    /// First backoff; doubles per retry, capped at 32x.
    pub backoff: Duration,
    /// Socket read timeout while awaiting a response.
    pub io_timeout: Duration,
    /// Delay between bytes for slow-loris writes.
    pub loris_delay: Duration,
}

impl ClientConfig {
    /// Defaults for the given endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        ClientConfig {
            endpoint,
            max_retries: 8,
            backoff: Duration::from_millis(10),
            io_timeout: Duration::from_secs(5),
            loris_delay: Duration::from_micros(200),
        }
    }
}

/// A deliberately injected client-side fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFault {
    /// Behave.
    None,
    /// Write only `keep` bytes of the encoded frame, then sever the
    /// connection (the server should count one torn frame and carry on).
    Torn {
        /// Encoded-frame bytes to emit before severing.
        keep: usize,
    },
    /// Sever the connection *before* writing, then proceed normally on a
    /// fresh one.
    DisconnectFirst,
    /// Write the frame one byte at a time with delays (stays inside the
    /// server's per-read patience, so it must still be served).
    SlowLoris,
}

/// Why a request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport kept failing after every retry.
    Io(io::Error),
    /// The server's response failed to decode.
    Frame(FrameError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed after retries: {e}"),
            ClientError::Frame(e) => write!(f, "bad response frame: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection-at-a-time protocol client.
pub struct Client {
    cfg: ClientConfig,
    stream: Option<Box<dyn ServeStream>>,
    /// Transport retries performed over this client's lifetime.
    pub retries: u64,
}

impl Client {
    /// A disconnected client; connections open lazily per request.
    pub fn new(cfg: ClientConfig) -> Self {
        Client {
            cfg,
            stream: None,
            retries: 0,
        }
    }

    fn stream(&mut self) -> io::Result<&mut Box<dyn ServeStream>> {
        if self.stream.is_none() {
            let mut s = self.cfg.endpoint.connect()?;
            s.set_stream_read_timeout(Some(self.cfg.io_timeout))?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Drops the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Sends `frame` and awaits the response, reconnecting and resending
    /// with exponential backoff on transport failures.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when every retry failed; [`ClientError::Frame`]
    /// when the server's response was undecodable.
    pub fn request(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        self.request_with(frame, ClientFault::None)
    }

    /// [`Client::request`] with a chaos fault applied to the *first*
    /// attempt (retries behave normally — an app retrying after its own
    /// torn write is exactly the recovery path under test).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn request_with(
        &mut self,
        frame: &Frame,
        fault: ClientFault,
    ) -> Result<Frame, ClientError> {
        let encoded = frame.encode();
        let mut fault = fault;
        let mut backoff = self.cfg.backoff;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.retries += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.cfg.backoff * 32);
            }
            match self.attempt(&encoded, fault) {
                Ok(reply) => return Ok(reply),
                Err(AttemptError::Transport(e)) => {
                    self.disconnect();
                    last_err = Some(e);
                }
                Err(AttemptError::BadResponse(e)) => {
                    self.disconnect();
                    return Err(ClientError::Frame(e));
                }
            }
            // The injected fault fires once; recovery runs clean.
            fault = ClientFault::None;
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            io::Error::other("request failed with no attempts")
        })))
    }

    fn attempt(&mut self, encoded: &[u8], fault: ClientFault) -> Result<Frame, AttemptError> {
        match fault {
            ClientFault::None => {
                let s = self.stream().map_err(AttemptError::Transport)?;
                s.write_all(encoded).map_err(AttemptError::Transport)?;
                s.flush().map_err(AttemptError::Transport)?;
            }
            ClientFault::Torn { keep } => {
                let keep = keep.min(encoded.len().saturating_sub(1));
                let s = self.stream().map_err(AttemptError::Transport)?;
                let _ = s.write_all(&encoded[..keep]);
                let _ = s.flush();
                self.disconnect();
                return Err(AttemptError::Transport(io::Error::other(
                    "injected: frame torn mid-write",
                )));
            }
            ClientFault::DisconnectFirst => {
                // Cycle the connection, then send normally.
                let _ = self.stream();
                self.disconnect();
                let s = self.stream().map_err(AttemptError::Transport)?;
                s.write_all(encoded).map_err(AttemptError::Transport)?;
                s.flush().map_err(AttemptError::Transport)?;
            }
            ClientFault::SlowLoris => {
                let delay = self.cfg.loris_delay;
                let s = self.stream().map_err(AttemptError::Transport)?;
                for byte in encoded {
                    s.write_all(std::slice::from_ref(byte))
                        .map_err(AttemptError::Transport)?;
                    s.flush().map_err(AttemptError::Transport)?;
                    std::thread::sleep(delay);
                }
            }
        }
        let s = self.stream().map_err(AttemptError::Transport)?;
        match read_frame_with_limit(s, MAX_FRAME_LEN) {
            Ok(reply) => Ok(reply),
            Err(FrameError::Eof) => Err(AttemptError::Transport(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed before responding",
            ))),
            Err(FrameError::Io(e)) => Err(AttemptError::Transport(e)),
            Err(e) => Err(AttemptError::BadResponse(e)),
        }
    }
}

enum AttemptError {
    Transport(io::Error),
    BadResponse(FrameError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use rsc_trace::adversary::Scenario;
    use rsc_trace::io::write_trace;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn payload(events: u64, seed: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            Scenario::UniformRandom { branches: 32 }.generate(events, seed),
        )
        .unwrap();
        buf
    }

    struct Harness {
        server: Server,
        stop: Arc<AtomicBool>,
        addr: String,
        accept: Option<std::thread::JoinHandle<()>>,
    }

    impl Harness {
        fn start(dir: &str) -> Harness {
            let dir = std::env::temp_dir().join(dir);
            let _ = std::fs::remove_dir_all(&dir);
            let mut cfg = ServerConfig::new(dir);
            cfg.io_timeout = Duration::from_millis(500);
            let server = Server::new(cfg).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let stop = Arc::new(AtomicBool::new(false));
            let accept = {
                let server = server.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    server.serve_tcp(listener, stop).unwrap();
                })
            };
            Harness {
                server,
                stop,
                addr,
                accept: Some(accept),
            }
        }

        fn client(&self) -> Client {
            let mut cfg = ClientConfig::new(Endpoint::Tcp(self.addr.clone()));
            cfg.io_timeout = Duration::from_secs(5);
            Client::new(cfg)
        }
    }

    impl Drop for Harness {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(h) = self.accept.take() {
                let _ = h.join();
            }
        }
    }

    #[test]
    fn request_response_over_tcp() {
        let h = Harness::start("rsc_client_rr");
        let mut c = h.client();
        assert_eq!(c.request(&Frame::Ping).unwrap(), Frame::Pong);
        let reply = c
            .request(&Frame::Events {
                tenant: 4,
                payload: payload(120, 1),
            })
            .unwrap();
        assert_eq!(
            reply,
            Frame::Ack {
                tenant: 4,
                accepted: 120,
                tenant_events: 120
            }
        );
    }

    #[test]
    fn torn_frame_is_counted_and_the_retry_lands() {
        let h = Harness::start("rsc_client_torn");
        let mut c = h.client();
        let frame = Frame::Events {
            tenant: 1,
            payload: payload(80, 2),
        };
        let keep = frame.encode().len() / 2;
        let reply = c.request_with(&frame, ClientFault::Torn { keep }).unwrap();
        assert_eq!(
            reply,
            Frame::Ack {
                tenant: 1,
                accepted: 80,
                tenant_events: 80
            }
        );
        assert!(c.retries >= 1);
        // Give the server a beat to log the severed connection.
        for _ in 0..100 {
            if h.server.counters().torn_frames >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(h.server.counters().torn_frames, 1);
        assert_eq!(h.server.counters().accepted_frames, 1, "no double apply");
    }

    #[test]
    fn disconnect_and_slow_loris_are_survivable() {
        let h = Harness::start("rsc_client_chaos");
        let mut c = h.client();
        let reply = c
            .request_with(
                &Frame::Events {
                    tenant: 2,
                    payload: payload(30, 3),
                },
                ClientFault::DisconnectFirst,
            )
            .unwrap();
        assert!(matches!(reply, Frame::Ack { tenant: 2, .. }));
        let reply = c
            .request_with(&Frame::Ping, ClientFault::SlowLoris)
            .unwrap();
        assert_eq!(reply, Frame::Pong);
    }

    #[test]
    fn connect_failure_is_a_typed_error_after_retries() {
        // A listener we immediately drop: the port refuses connections.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        let mut cfg = ClientConfig::new(Endpoint::Tcp(addr));
        cfg.max_retries = 2;
        cfg.backoff = Duration::from_millis(1);
        let mut c = Client::new(cfg);
        assert!(matches!(c.request(&Frame::Ping), Err(ClientError::Io(_))));
        assert_eq!(c.retries, 2);
    }

    #[test]
    fn unix_socket_transport_works_end_to_end() {
        let dir = std::env::temp_dir().join("rsc_client_uds");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        let mut cfg = ServerConfig::new(dir.join("ckpt"));
        cfg.io_timeout = Duration::from_millis(500);
        let server = Server::new(cfg).unwrap();
        let listener = std::os::unix::net::UnixListener::bind(&sock).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let server = server.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || server.serve_unix(listener, stop).unwrap())
        };
        let mut c = Client::new(ClientConfig::new(Endpoint::Unix(sock)));
        assert_eq!(c.request(&Frame::Ping).unwrap(), Frame::Pong);
        let reply = c
            .request(&Frame::Events {
                tenant: 9,
                payload: payload(50, 4),
            })
            .unwrap();
        assert!(matches!(reply, Frame::Ack { tenant: 9, .. }));
        stop.store(true, Ordering::SeqCst);
        accept.join().unwrap();
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("rsc_client_uds"));
    }
}
