//! One tenant's controller, quota accounting, and durable identity.
//!
//! A [`Tenant`] pairs a [`ShardedController`] with the ingest counters
//! the daemon enforces per stream: how many events it has accepted, how
//! many payload bytes, and how many events it has refused. All
//! admission decisions are made here, as pure single-threaded logic —
//! the server layer only decides *when* to call in (under the tenant's
//! lock) and what to do with the verdict.
//!
//! A tenant converts losslessly to and from a
//! [`TenantRecord`](crate::storage::TenantRecord): the controller goes
//! through the v3 checkpoint format, the counters through the record
//! header. Eviction, graceful drain, and crash restart all ride on that
//! one conversion, which is why restart is bit-identical.

use crate::frame::RejectCode;
use crate::storage::TenantRecord;
use rsc_control::{
    CheckpointError, ControlStats, ControllerParams, InvalidParamsError, ReactiveController,
    ShardedController,
};
use rsc_trace::io::{read_trace_with_limit, TraceIoError, MAX_TRACE_EVENTS};

/// Per-tenant admission limits. A zero field means "unlimited".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Maximum lifetime events a tenant may feed the controller.
    pub max_events: u64,
    /// Maximum lifetime payload bytes a tenant may send.
    pub max_bytes: u64,
}

impl QuotaConfig {
    /// No limits.
    pub fn unlimited() -> Self {
        QuotaConfig {
            max_events: 0,
            max_bytes: 0,
        }
    }
}

/// Why an `Events` frame was refused. Carries everything the server
/// needs to build a structured `Reject` frame.
#[derive(Debug)]
pub struct IngestReject {
    /// Machine-readable reject class.
    pub code: RejectCode,
    /// Human-readable detail for the client's logs.
    pub detail: String,
}

/// What an accepted `Events` frame did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Events decoded and fed to the controller by this frame.
    pub accepted: u64,
    /// Tenant's lifetime accepted-event total after this frame.
    pub tenant_events: u64,
}

/// A tenant: sharded controller plus admission state.
#[derive(Debug)]
pub struct Tenant {
    id: u64,
    quota: QuotaConfig,
    ctl: ShardedController,
    bytes_ingested: u64,
    accepted_events: u64,
    rejected_events: u64,
    stream_digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Tenant {
    /// Creates a fresh tenant with `shards` controller shards.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from the builder.
    pub fn new(
        id: u64,
        params: ControllerParams,
        shards: usize,
        quota: QuotaConfig,
    ) -> Result<Self, InvalidParamsError> {
        let ctl = ReactiveController::builder(params)
            .shards(shards)
            .build_sharded()?;
        Ok(Tenant {
            id,
            quota,
            ctl,
            bytes_ingested: 0,
            accepted_events: 0,
            rejected_events: 0,
            stream_digest: FNV_OFFSET,
        })
    }

    /// Tenant id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Lifetime accepted events.
    pub fn accepted_events(&self) -> u64 {
        self.accepted_events
    }

    /// Lifetime refused events (decode failures count as one each, since
    /// the true event count of a malformed payload is unknowable).
    pub fn rejected_events(&self) -> u64 {
        self.rejected_events
    }

    /// Lifetime accepted payload bytes.
    pub fn bytes_ingested(&self) -> u64 {
        self.bytes_ingested
    }

    /// Running FNV-1a digest over every accepted payload, in order. Two
    /// tenants have equal digests iff they accepted byte-identical
    /// payload sequences — the strong form of the restart- and
    /// determinism-identity checks (event counts and byte totals alone
    /// cannot distinguish same-sized streams).
    pub fn stream_digest(&self) -> u64 {
        self.stream_digest
    }

    /// Merged controller statistics across this tenant's shards.
    pub fn stats(&self) -> ControlStats {
        self.ctl.stats()
    }

    /// Admits one `Events` payload: decode the RSCT stream, apply both
    /// quotas, and feed the controller. All-or-nothing — a frame that
    /// would cross a quota is refused whole, so a client can reason
    /// about exactly which events were observed.
    ///
    /// # Errors
    ///
    /// Returns an [`IngestReject`] carrying a [`RejectCode`]:
    /// `BadPayload` for streams the hardened trace reader refuses,
    /// `QuotaEvents`/`QuotaBytes` when a limit would be crossed.
    pub fn ingest(&mut self, payload: &[u8]) -> Result<IngestReport, IngestReject> {
        let records = match read_trace_with_limit(&mut &payload[..], MAX_TRACE_EVENTS) {
            Ok(r) => r,
            Err(e) => {
                self.rejected_events += 1;
                return Err(IngestReject {
                    code: RejectCode::BadPayload,
                    detail: reject_detail(&e),
                });
            }
        };
        let n = records.len() as u64;
        if self.quota.max_events > 0
            && self.accepted_events.saturating_add(n) > self.quota.max_events
        {
            self.rejected_events += n;
            return Err(IngestReject {
                code: RejectCode::QuotaEvents,
                detail: format!(
                    "event quota: {} accepted + {} offered > {} allowed",
                    self.accepted_events, n, self.quota.max_events
                ),
            });
        }
        let bytes = payload.len() as u64;
        if self.quota.max_bytes > 0
            && self.bytes_ingested.saturating_add(bytes) > self.quota.max_bytes
        {
            self.rejected_events += n;
            return Err(IngestReject {
                code: RejectCode::QuotaBytes,
                detail: format!(
                    "byte quota: {} ingested + {} offered > {} allowed",
                    self.bytes_ingested, bytes, self.quota.max_bytes
                ),
            });
        }
        self.ctl.observe_chunk(&records);
        self.accepted_events += n;
        self.bytes_ingested += bytes;
        self.stream_digest = payload.iter().fold(self.stream_digest, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
        });
        Ok(IngestReport {
            accepted: n,
            tenant_events: self.accepted_events,
        })
    }

    /// Serializes this tenant for eviction or drain.
    pub fn to_record(&self) -> TenantRecord {
        TenantRecord {
            tenant: self.id,
            bytes_ingested: self.bytes_ingested,
            rejected_events: self.rejected_events,
            stream_digest: self.stream_digest,
            checkpoint: self.ctl.snapshot(),
        }
    }

    /// Rebuilds a tenant from a durable record. The accepted-event total
    /// is recovered from the controller's own statistics, so the record
    /// header stays minimal.
    ///
    /// # Errors
    ///
    /// Propagates the strict checkpoint decode — a corrupted or
    /// version-confused blob is a typed [`CheckpointError`], never a
    /// panic.
    pub fn from_record(rec: &TenantRecord, quota: QuotaConfig) -> Result<Self, CheckpointError> {
        let ctl = ShardedController::restore(&rec.checkpoint)?;
        let accepted_events = ctl.stats().events;
        Ok(Tenant {
            id: rec.tenant,
            quota,
            ctl,
            bytes_ingested: rec.bytes_ingested,
            accepted_events,
            rejected_events: rec.rejected_events,
            stream_digest: rec.stream_digest,
        })
    }
}

fn reject_detail(e: &TraceIoError) -> String {
    format!("trace stream rejected: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::adversary::Scenario;
    use rsc_trace::io::write_trace;

    fn payload(events: u64, seed: u64) -> Vec<u8> {
        let records = Scenario::UniformRandom { branches: 32 }.generate(events, seed);
        let mut buf = Vec::new();
        write_trace(&mut buf, records).unwrap();
        buf
    }

    fn tenant(quota: QuotaConfig) -> Tenant {
        Tenant::new(1, ControllerParams::scaled(), 2, quota).unwrap()
    }

    #[test]
    fn ingest_feeds_controller_and_counts() {
        let mut t = tenant(QuotaConfig::unlimited());
        let p = payload(500, 9);
        let report = t.ingest(&p).unwrap();
        assert_eq!(report.accepted, 500);
        assert_eq!(report.tenant_events, 500);
        assert_eq!(t.accepted_events(), 500);
        assert_eq!(t.bytes_ingested(), p.len() as u64);
        assert_eq!(t.stats().events, 500);
        let report = t.ingest(&p).unwrap();
        assert_eq!(report.tenant_events, 1000);
    }

    #[test]
    fn event_quota_rejects_whole_frames() {
        let mut t = tenant(QuotaConfig {
            max_events: 700,
            max_bytes: 0,
        });
        let p = payload(500, 9);
        t.ingest(&p).unwrap();
        let rej = t.ingest(&p).unwrap_err();
        assert_eq!(rej.code, RejectCode::QuotaEvents);
        // All-or-nothing: the second frame observed nothing.
        assert_eq!(t.accepted_events(), 500);
        assert_eq!(t.rejected_events(), 500);
        assert_eq!(t.stats().events, 500);
    }

    #[test]
    fn byte_quota_rejects_whole_frames() {
        let p = payload(200, 3);
        let mut t = tenant(QuotaConfig {
            max_events: 0,
            max_bytes: p.len() as u64 + 10,
        });
        t.ingest(&p).unwrap();
        let rej = t.ingest(&p).unwrap_err();
        assert_eq!(rej.code, RejectCode::QuotaBytes);
        assert_eq!(t.bytes_ingested(), p.len() as u64);
    }

    #[test]
    fn malformed_payload_is_a_typed_reject() {
        let mut t = tenant(QuotaConfig::unlimited());
        let mut p = payload(100, 5);
        p.truncate(p.len() - 3);
        let rej = t.ingest(&p).unwrap_err();
        assert_eq!(rej.code, RejectCode::BadPayload);
        assert_eq!(t.accepted_events(), 0);
        assert_eq!(t.rejected_events(), 1);
        assert!(t.ingest(b"not a trace").is_err());
    }

    #[test]
    fn record_roundtrip_is_bit_identical() {
        let mut t = tenant(QuotaConfig {
            max_events: 10_000,
            max_bytes: 0,
        });
        t.ingest(&payload(800, 2)).unwrap();
        t.ingest(&payload(11_000, 3)).unwrap_err();
        let rec = t.to_record();
        let back = Tenant::from_record(
            &rec,
            QuotaConfig {
                max_events: 10_000,
                max_bytes: 0,
            },
        )
        .unwrap();
        assert_eq!(back.accepted_events(), t.accepted_events());
        assert_eq!(back.rejected_events(), t.rejected_events());
        assert_eq!(back.bytes_ingested(), t.bytes_ingested());
        assert_eq!(back.to_record(), rec, "snapshot of restore is identical");
        assert_eq!(back.stats(), t.stats());
    }

    #[test]
    fn quota_keeps_counting_after_restore() {
        let mut t = tenant(QuotaConfig {
            max_events: 600,
            max_bytes: 0,
        });
        t.ingest(&payload(500, 1)).unwrap();
        let rec = t.to_record();
        let mut back = Tenant::from_record(
            &rec,
            QuotaConfig {
                max_events: 600,
                max_bytes: 0,
            },
        )
        .unwrap();
        // 500 of 600 already used; 200 more must be refused.
        assert!(back.ingest(&payload(200, 2)).is_err());
        assert_eq!(back.ingest(&payload(100, 2)).unwrap().tenant_events, 600);
    }
}
