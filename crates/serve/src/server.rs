//! The multi-tenant serving core: tenant registry, admission control,
//! overload shedding, graceful drain, and the connection loops.
//!
//! # Concurrency shape
//!
//! There are no per-tenant worker threads. Each connection gets one
//! thread; a frame for tenant *t* is applied *by the connection thread*
//! under tenant *t*'s lock. Fairness and backpressure come from the
//! per-tenant [`Gate`]: at most `queue_depth` operations may be admitted
//! against one tenant at a time, and a thread that cannot acquire a
//! permit within `backpressure_wait` turns its frame into an
//! `Overloaded` reject. A slow or spammy tenant therefore stalls only
//! connections carrying *its* frames — the accept loop and every other
//! tenant's frames never wait on it.
//!
//! The registry is a `Mutex<HashMap<tenant, Slot>>` plus a condvar. A
//! slot is `Live` (the tenant is in memory) or `Busy` (someone is
//! restoring or evicting it); lookups wait out `Busy` and retry. A cell
//! that was evicted after a thread cloned its `Arc` is detected by the
//! `retired` flag under the tenant lock, and the thread re-resolves —
//! which transparently restores the tenant from its checkpoint.
//!
//! # Lifecycle
//!
//! ```text
//!            ingest/lookup            shed (coldest)
//!   absent ───────────────▶ live ───────────────────▶ evicted (disk)
//!      ▲                      │  ▲                        │
//!      │        drain: flush  │  └────────────────────────┘
//!      │        to disk, keep │         next touch restores
//!      └── remove ◀───────────┘
//! ```
//!
//! Drain (`SIGTERM` or a `Drain` frame) flips a flag that rejects new
//! `Events` frames with `Draining`, then writes every live tenant to the
//! checkpoint directory. Restart resolves tenants lazily from that
//! directory, so a drained or evicted tenant resumes bit-identically.

use crate::chaos::ChaosConfig;
use crate::frame::{
    read_frame_with_limit, write_frame, Frame, FrameError, RejectCode, MAX_FRAME_LEN,
};
use crate::storage::{CheckpointStore, StoreError};
use crate::tenant::{QuotaConfig, Tenant};
use rsc_control::{ControllerParams, MetricsRegistry};
use rsc_util::sync::Gate;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Everything the daemon needs to run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Controller parameters shared by every tenant.
    pub params: ControllerParams,
    /// Shards per tenant controller.
    pub shards_per_tenant: usize,
    /// Per-tenant admission limits.
    pub quota: QuotaConfig,
    /// Per-tenant concurrent-operation bound (the ingest queue depth).
    pub queue_depth: usize,
    /// How long a frame may wait for a tenant permit before it is
    /// rejected `Overloaded`.
    pub backpressure_wait: Duration,
    /// Live tenants above this count trigger eviction of the coldest
    /// (0 = never shed).
    pub max_live_tenants: usize,
    /// Where evicted and drained tenants are checkpointed.
    pub checkpoint_dir: PathBuf,
    /// Fault injection for the storage seam.
    pub chaos: ChaosConfig,
    /// Socket read timeout; also the slow-loris patience per syscall.
    pub io_timeout: Duration,
    /// Largest accepted frame body.
    pub max_frame_len: u32,
}

impl ServerConfig {
    /// Sensible defaults rooted at `checkpoint_dir`.
    pub fn new(checkpoint_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            params: ControllerParams::scaled(),
            shards_per_tenant: 2,
            quota: QuotaConfig::unlimited(),
            queue_depth: 8,
            backpressure_wait: Duration::from_millis(500),
            max_live_tenants: 0,
            checkpoint_dir: checkpoint_dir.into(),
            chaos: ChaosConfig::off(),
            io_timeout: Duration::from_secs(2),
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

/// Monotonic process-wide counters, exported as server metrics.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    accepted_frames: AtomicU64,
    rejected_frames: AtomicU64,
    torn_frames: AtomicU64,
    shed_tenants: AtomicU64,
    shed_failures: AtomicU64,
    restores: AtomicU64,
    drain_flushed: AtomicU64,
    store_errors: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Frames fully decoded.
    pub frames: u64,
    /// `Events` frames acknowledged.
    pub accepted_frames: u64,
    /// `Events` frames rejected (any code).
    pub rejected_frames: u64,
    /// Connections dropped on torn or corrupt frames.
    pub torn_frames: u64,
    /// Tenants evicted to disk under memory pressure.
    pub shed_tenants: u64,
    /// Evictions abandoned because the checkpoint write failed.
    pub shed_failures: u64,
    /// Tenants restored from disk.
    pub restores: u64,
    /// Tenants flushed by drain.
    pub drain_flushed: u64,
    /// Store reads that failed while rendering metrics.
    pub store_errors: u64,
}

/// What [`Server::drain`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Tenants whose state reached disk.
    pub flushed: u64,
    /// Tenants whose checkpoint write kept failing (their state stayed
    /// in memory; the exit code should reflect this).
    pub failed: u64,
}

struct TenantCore {
    tenant: Tenant,
    /// Set (under this lock) when the cell was evicted; holders of stale
    /// `Arc`s must re-resolve through the registry.
    retired: bool,
}

struct TenantCell {
    gate: Gate,
    /// Last-touch stamp from the registry clock; the eviction policy
    /// picks the minimum.
    touch: AtomicU64,
    core: Mutex<TenantCore>,
}

enum Slot {
    Live(Arc<TenantCell>),
    /// Restore or eviction in flight; wait on the condvar and re-check.
    Busy,
}

struct Shared {
    cfg: ServerConfig,
    slots: Mutex<HashMap<u64, Slot>>,
    slot_changed: Condvar,
    store: Mutex<CheckpointStore>,
    draining: AtomicBool,
    clock: AtomicU64,
    counters: Counters,
}

/// The serving core. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

/// How many times a drain or eviction retries a failing checkpoint
/// write before giving up (each retry re-rolls the chaos die).
const SAVE_RETRIES: u32 = 10;

impl Server {
    /// Builds the serving core and opens the checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-directory creation failures.
    pub fn new(mut cfg: ServerConfig) -> Result<Self, StoreError> {
        cfg.queue_depth = cfg.queue_depth.max(1);
        cfg.shards_per_tenant = cfg.shards_per_tenant.max(1);
        let store = CheckpointStore::open(&cfg.checkpoint_dir, cfg.chaos)?;
        Ok(Server {
            shared: Arc::new(Shared {
                cfg,
                slots: Mutex::new(HashMap::new()),
                slot_changed: Condvar::new(),
                store: Mutex::new(store),
                draining: AtomicBool::new(false),
                clock: AtomicU64::new(0),
                counters: Counters::default(),
            }),
        })
    }

    /// True once drain has begun (no new events are admitted).
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Live (in-memory) tenant count.
    pub fn live_tenants(&self) -> usize {
        let slots = self.shared.slots.lock().unwrap();
        slots
            .values()
            .filter(|s| matches!(s, Slot::Live(_)))
            .count()
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.shared.counters;
        CounterSnapshot {
            connections: c.connections.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            accepted_frames: c.accepted_frames.load(Ordering::Relaxed),
            rejected_frames: c.rejected_frames.load(Ordering::Relaxed),
            torn_frames: c.torn_frames.load(Ordering::Relaxed),
            shed_tenants: c.shed_tenants.load(Ordering::Relaxed),
            shed_failures: c.shed_failures.load(Ordering::Relaxed),
            restores: c.restores.load(Ordering::Relaxed),
            drain_flushed: c.drain_flushed.load(Ordering::Relaxed),
            store_errors: c.store_errors.load(Ordering::Relaxed),
        }
    }

    /// Stops admitting events and flushes every live tenant to the
    /// checkpoint directory. Safe to call from any thread, including a
    /// connection thread handling a `Drain` frame; a second call
    /// re-flushes (same bytes) harmlessly.
    pub fn drain(&self) -> DrainReport {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        let cells: Vec<Arc<TenantCell>> = {
            let slots = shared.slots.lock().unwrap();
            slots
                .values()
                .filter_map(|s| match s {
                    Slot::Live(c) => Some(Arc::clone(c)),
                    Slot::Busy => None,
                })
                .collect()
        };
        let mut report = DrainReport {
            flushed: 0,
            failed: 0,
        };
        for cell in cells {
            let core = cell.core.lock().unwrap();
            if core.retired {
                continue;
            }
            let rec = core.tenant.to_record();
            drop(core);
            if save_with_retries(shared, &rec) {
                report.flushed += 1;
                shared
                    .counters
                    .drain_flushed
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                report.failed += 1;
            }
        }
        report
    }

    /// Renders Prometheus metrics. With `tenants_only`, the output is
    /// exactly the per-tenant families — a pure function of the streams
    /// each tenant has ingested, which is what the restart-identity
    /// check compares. Tenants on disk (evicted or drained) are included
    /// by restoring a throwaway copy from their record.
    pub fn metrics_text(&self, tenants_only: bool) -> String {
        let shared = &self.shared;
        let mut per_tenant: BTreeMap<u64, (u64, u64, u64, u64, u64)> = BTreeMap::new();
        let live: Vec<(u64, Arc<TenantCell>)> = {
            let slots = shared.slots.lock().unwrap();
            slots
                .iter()
                .filter_map(|(id, s)| match s {
                    Slot::Live(c) => Some((*id, Arc::clone(c))),
                    Slot::Busy => None,
                })
                .collect()
        };
        for (id, cell) in live {
            let core = cell.core.lock().unwrap();
            if core.retired {
                continue;
            }
            let t = &core.tenant;
            per_tenant.insert(
                id,
                (
                    t.accepted_events(),
                    t.rejected_events(),
                    t.bytes_ingested(),
                    t.stats().incorrect,
                    t.stream_digest(),
                ),
            );
        }
        let on_disk = {
            let store = shared.store.lock().unwrap();
            store.list().unwrap_or_default()
        };
        for id in on_disk {
            if per_tenant.contains_key(&id) {
                continue;
            }
            let loaded = {
                let store = shared.store.lock().unwrap();
                store.load(id)
            };
            let tenant = loaded
                .ok()
                .flatten()
                .and_then(|rec| Tenant::from_record(&rec, shared.cfg.quota).ok());
            match tenant {
                Some(t) => {
                    per_tenant.insert(
                        id,
                        (
                            t.accepted_events(),
                            t.rejected_events(),
                            t.bytes_ingested(),
                            t.stats().incorrect,
                            t.stream_digest(),
                        ),
                    );
                }
                None => {
                    shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut reg = MetricsRegistry::new();
        for (id, (events, rejected, bytes, incorrect, digest)) in &per_tenant {
            let label = id.to_string();
            let c = reg.counter_labeled(
                "rsc_tenant_events_total",
                "tenant",
                &label,
                "Events accepted per tenant",
            );
            reg.set_counter(c, *events);
            let c = reg.counter_labeled(
                "rsc_tenant_rejected_total",
                "tenant",
                &label,
                "Events rejected per tenant",
            );
            reg.set_counter(c, *rejected);
            let c = reg.counter_labeled(
                "rsc_tenant_bytes_total",
                "tenant",
                &label,
                "Payload bytes accepted per tenant",
            );
            reg.set_counter(c, *bytes);
            let c = reg.counter_labeled(
                "rsc_tenant_misspeculations_total",
                "tenant",
                &label,
                "Misspeculated branches per tenant",
            );
            reg.set_counter(c, *incorrect);
            let c = reg.counter_labeled(
                "rsc_tenant_stream_digest",
                "tenant",
                &label,
                "FNV-1a digest of the tenant's accepted payload sequence",
            );
            reg.set_counter(c, *digest);
        }
        if !tenants_only {
            let snap = self.counters();
            let pairs: [(&str, u64, &'static str); 10] = [
                (
                    "rsc_serve_connections_total",
                    snap.connections,
                    "Connections accepted",
                ),
                ("rsc_serve_frames_total", snap.frames, "Frames decoded"),
                (
                    "rsc_serve_accepted_frames_total",
                    snap.accepted_frames,
                    "Events frames acknowledged",
                ),
                (
                    "rsc_serve_rejected_frames_total",
                    snap.rejected_frames,
                    "Events frames rejected",
                ),
                (
                    "rsc_serve_torn_frames_total",
                    snap.torn_frames,
                    "Connections dropped on torn frames",
                ),
                (
                    "rsc_serve_shed_tenants_total",
                    snap.shed_tenants,
                    "Tenants evicted to disk",
                ),
                (
                    "rsc_serve_shed_failures_total",
                    snap.shed_failures,
                    "Evictions abandoned on write failure",
                ),
                (
                    "rsc_serve_restores_total",
                    snap.restores,
                    "Tenants restored from disk",
                ),
                (
                    "rsc_serve_drain_flushed_total",
                    snap.drain_flushed,
                    "Tenants flushed by drain",
                ),
                (
                    "rsc_serve_store_errors_total",
                    snap.store_errors,
                    "Store read failures",
                ),
            ];
            for (name, value, help) in pairs {
                let c = reg.counter(name, help);
                reg.set_counter(c, value);
            }
            let g = reg.gauge("rsc_serve_live_tenants", "Tenants resident in memory");
            reg.set_gauge(g, self.live_tenants() as f64);
        }
        reg.render_prometheus()
    }

    /// Applies one decoded request frame and returns the response.
    /// Exposed so tests (and in-process harnesses) can drive the server
    /// without sockets.
    pub fn respond(&self, frame: Frame) -> Frame {
        self.shared.counters.frames.fetch_add(1, Ordering::Relaxed);
        match frame {
            Frame::Ping => Frame::Pong,
            Frame::MetricsRequest { tenants_only } => Frame::MetricsText {
                text: self.metrics_text(tenants_only),
            },
            Frame::Drain => {
                let report = self.drain();
                // `Drain` acknowledges with flushed/failed counts in the
                // `Ack` numeric slots (tenant 0 is reserved).
                Frame::Ack {
                    tenant: 0,
                    accepted: report.flushed,
                    tenant_events: report.failed,
                }
            }
            Frame::Events { tenant, payload } => self.ingest_frame(tenant, &payload),
            // Response kinds arriving at the server are a protocol error.
            Frame::Ack { .. }
            | Frame::Reject { .. }
            | Frame::MetricsText { .. }
            | Frame::Pong
            | Frame::ServerError { .. } => Frame::ServerError {
                detail: "client sent a response frame".to_string(),
            },
        }
    }

    fn ingest_frame(&self, tenant: u64, payload: &[u8]) -> Frame {
        let shared = &self.shared;
        if self.draining() {
            shared
                .counters
                .rejected_frames
                .fetch_add(1, Ordering::Relaxed);
            return Frame::Reject {
                tenant,
                code: RejectCode::Draining,
                detail: "server is draining".to_string(),
            };
        }
        loop {
            let cell = match self.resolve(tenant) {
                Ok(c) => c,
                Err(detail) => {
                    shared
                        .counters
                        .rejected_frames
                        .fetch_add(1, Ordering::Relaxed);
                    return Frame::Reject {
                        tenant,
                        code: RejectCode::TenantUnavailable,
                        detail,
                    };
                }
            };
            let Some(_permit) = cell.gate.acquire_timeout(shared.cfg.backpressure_wait) else {
                shared
                    .counters
                    .rejected_frames
                    .fetch_add(1, Ordering::Relaxed);
                return Frame::Reject {
                    tenant,
                    code: RejectCode::Overloaded,
                    detail: format!(
                        "tenant ingest queue full ({} deep) for {:?}",
                        shared.cfg.queue_depth, shared.cfg.backpressure_wait
                    ),
                };
            };
            let mut core = cell.core.lock().unwrap();
            if core.retired {
                // Evicted between resolve and lock; re-resolve (which
                // restores from the checkpoint just written).
                continue;
            }
            cell.touch.store(
                shared.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            return match core.tenant.ingest(payload) {
                Ok(report) => {
                    shared
                        .counters
                        .accepted_frames
                        .fetch_add(1, Ordering::Relaxed);
                    Frame::Ack {
                        tenant,
                        accepted: report.accepted,
                        tenant_events: report.tenant_events,
                    }
                }
                Err(rej) => {
                    shared
                        .counters
                        .rejected_frames
                        .fetch_add(1, Ordering::Relaxed);
                    Frame::Reject {
                        tenant,
                        code: rej.code,
                        detail: rej.detail,
                    }
                }
            };
        }
    }

    /// Returns the live cell for a tenant, restoring it from disk or
    /// creating it fresh as needed, waiting out concurrent restores.
    fn resolve(&self, tenant: u64) -> Result<Arc<TenantCell>, String> {
        let shared = &self.shared;
        let mut slots = shared.slots.lock().unwrap();
        loop {
            match slots.get(&tenant) {
                Some(Slot::Live(c)) => return Ok(Arc::clone(c)),
                Some(Slot::Busy) => {
                    slots = shared.slot_changed.wait(slots).unwrap();
                }
                None => break,
            }
        }
        slots.insert(tenant, Slot::Busy);
        drop(slots);
        let built = self.restore_or_create(tenant);
        let mut slots = shared.slots.lock().unwrap();
        match built {
            Ok(cell) => {
                slots.insert(tenant, Slot::Live(Arc::clone(&cell)));
                shared.slot_changed.notify_all();
                drop(slots);
                self.maybe_shed(tenant);
                Ok(cell)
            }
            Err(detail) => {
                slots.remove(&tenant);
                shared.slot_changed.notify_all();
                Err(detail)
            }
        }
    }

    fn restore_or_create(&self, tenant: u64) -> Result<Arc<TenantCell>, String> {
        let shared = &self.shared;
        let record = {
            let store = shared.store.lock().unwrap();
            store.load(tenant)
        };
        let t = match record {
            Ok(Some(rec)) => {
                let t = Tenant::from_record(&rec, shared.cfg.quota)
                    .map_err(|e| format!("checkpoint for tenant {tenant} rejected: {e}"))?;
                shared.counters.restores.fetch_add(1, Ordering::Relaxed);
                t
            }
            Ok(None) => Tenant::new(
                tenant,
                shared.cfg.params,
                shared.cfg.shards_per_tenant,
                shared.cfg.quota,
            )
            .map_err(|e| format!("tenant construction failed: {e}"))?,
            Err(e) => return Err(format!("store read for tenant {tenant} failed: {e}")),
        };
        Ok(Arc::new(TenantCell {
            gate: Gate::new(shared.cfg.queue_depth),
            touch: AtomicU64::new(shared.clock.fetch_add(1, Ordering::Relaxed)),
            core: Mutex::new(TenantCore {
                tenant: t,
                retired: false,
            }),
        }))
    }

    /// Evicts coldest tenants until the live count is back under the
    /// configured ceiling. `protect` (the tenant that just came live) is
    /// never the victim.
    fn maybe_shed(&self, protect: u64) {
        let shared = &self.shared;
        if shared.cfg.max_live_tenants == 0 {
            return;
        }
        loop {
            let victim = {
                let mut slots = shared.slots.lock().unwrap();
                let live: Vec<(u64, u64)> = slots
                    .iter()
                    .filter_map(|(id, s)| match s {
                        Slot::Live(c) if *id != protect => {
                            Some((*id, c.touch.load(Ordering::Relaxed)))
                        }
                        _ => None,
                    })
                    .collect();
                let live_total = slots
                    .values()
                    .filter(|s| matches!(s, Slot::Live(_)))
                    .count();
                if live_total <= shared.cfg.max_live_tenants {
                    return;
                }
                let Some(&(victim, _)) = live.iter().min_by_key(|(_, touch)| *touch) else {
                    return;
                };
                let Some(Slot::Live(cell)) = slots.insert(victim, Slot::Busy) else {
                    unreachable!("victim was selected from live slots under this lock");
                };
                (victim, cell)
            };
            let (victim_id, cell) = victim;
            let mut core = cell.core.lock().unwrap();
            core.retired = true;
            let rec = core.tenant.to_record();
            drop(core);
            if save_with_retries(shared, &rec) {
                let mut slots = shared.slots.lock().unwrap();
                slots.remove(&victim_id);
                shared.slot_changed.notify_all();
                shared.counters.shed_tenants.fetch_add(1, Ordering::Relaxed);
            } else {
                // The checkpoint never reached disk; losing the tenant
                // is worse than running over the ceiling. Un-retire.
                let mut core = cell.core.lock().unwrap();
                core.retired = false;
                drop(core);
                let mut slots = shared.slots.lock().unwrap();
                slots.insert(victim_id, Slot::Live(cell));
                shared.slot_changed.notify_all();
                shared
                    .counters
                    .shed_failures
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Accepts TCP connections until `stop` is set or drain begins, one
    /// thread per connection. Joins every connection thread before
    /// returning.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors only end
    /// that connection).
    pub fn serve_tcp(&self, listener: TcpListener, stop: Arc<AtomicBool>) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        self.accept_loop(stop, move || match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false).ok();
                Accepted::Conn(Box::new(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Accepted::Empty,
            Err(e) => Accepted::Fatal(e),
        })
    }

    /// Accepts Unix-socket connections until `stop` is set or drain
    /// begins. Same semantics as [`Server::serve_tcp`].
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn serve_unix(&self, listener: UnixListener, stop: Arc<AtomicBool>) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        self.accept_loop(stop, move || match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false).ok();
                Accepted::Conn(Box::new(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Accepted::Empty,
            Err(e) => Accepted::Fatal(e),
        })
    }

    fn accept_loop(
        &self,
        stop: Arc<AtomicBool>,
        mut accept: impl FnMut() -> Accepted,
    ) -> io::Result<()> {
        let mut handles = Vec::new();
        let result = loop {
            if stop.load(Ordering::SeqCst) || self.draining() {
                break Ok(());
            }
            match accept() {
                Accepted::Conn(stream) => {
                    self.shared
                        .counters
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    let server = self.clone();
                    let stop = Arc::clone(&stop);
                    handles.push(std::thread::spawn(move || {
                        server.handle_conn(stream, &stop);
                    }));
                }
                Accepted::Empty => std::thread::sleep(Duration::from_millis(5)),
                Accepted::Fatal(e) => break Err(e),
            }
        };
        for h in handles {
            let _ = h.join();
        }
        result
    }

    /// Serves one connection until EOF, a torn frame, or shutdown.
    /// Public so in-process tests can drive a duplex pair directly.
    pub fn handle_conn(&self, mut stream: Box<dyn ServeStream>, stop: &AtomicBool) {
        let _ = stream.set_stream_read_timeout(Some(self.shared.cfg.io_timeout));
        loop {
            let mut counting = CountingReader {
                inner: &mut stream,
                read: 0,
            };
            match read_frame_with_limit(&mut counting, self.shared.cfg.max_frame_len) {
                Ok(frame) => {
                    let reply = self.respond(frame);
                    if write_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
                Err(FrameError::Eof) => return,
                Err(FrameError::Io(e)) if is_timeout(&e) && counting.read == 0 => {
                    // Idle at a frame boundary: keep waiting unless the
                    // process is shutting down.
                    if stop.load(Ordering::SeqCst) || self.draining() {
                        return;
                    }
                }
                Err(_) => {
                    // Torn, corrupt, oversized, or stalled mid-frame
                    // (slow-loris past its deadline): drop this
                    // connection; everyone else is unaffected.
                    self.shared
                        .counters
                        .torn_frames
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

fn save_with_retries(shared: &Shared, rec: &crate::storage::TenantRecord) -> bool {
    let mut store = shared.store.lock().unwrap();
    for _ in 0..SAVE_RETRIES {
        match store.save(rec) {
            Ok(()) => {
                // Chaos may have corrupted the bytes on the way down;
                // trust the file only if it reads back. (With chaos off
                // this read-back is the crash-safety audit, not a tax.)
                match store.load(rec.tenant) {
                    Ok(Some(back)) if &back == rec => return true,
                    _ => continue,
                }
            }
            Err(_) => continue,
        }
    }
    false
}

enum Accepted {
    Conn(Box<dyn ServeStream>),
    Empty,
    Fatal(io::Error),
}

/// The stream surface the connection loop needs; lets TCP and Unix
/// sockets (and test duplex pairs) share one code path.
pub trait ServeStream: Read + Write + Send {
    /// Applies a read timeout, where the transport supports one.
    fn set_stream_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

impl ServeStream for TcpStream {
    fn set_stream_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl ServeStream for UnixStream {
    fn set_stream_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

struct CountingReader<'a, R: Read> {
    inner: &'a mut R,
    read: u64,
}

impl<R: Read> Read for CountingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::adversary::Scenario;
    use rsc_trace::io::write_trace;

    fn payload(events: u64, seed: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            Scenario::UniformRandom { branches: 32 }.generate(events, seed),
        )
        .unwrap();
        buf
    }

    fn server_in(dir: &str, tweak: impl FnOnce(&mut ServerConfig)) -> Server {
        let dir = std::env::temp_dir().join(dir);
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServerConfig::new(dir);
        tweak(&mut cfg);
        Server::new(cfg).unwrap()
    }

    #[test]
    fn events_are_acked_and_counted() {
        let srv = server_in("rsc_srv_ack", |_| {});
        let reply = srv.respond(Frame::Events {
            tenant: 7,
            payload: payload(300, 1),
        });
        assert_eq!(
            reply,
            Frame::Ack {
                tenant: 7,
                accepted: 300,
                tenant_events: 300
            }
        );
        assert_eq!(srv.counters().accepted_frames, 1);
        assert_eq!(srv.live_tenants(), 1);
        assert_eq!(srv.respond(Frame::Ping), Frame::Pong);
    }

    #[test]
    fn quota_and_payload_rejects_are_structured() {
        let srv = server_in("rsc_srv_rej", |cfg| {
            cfg.quota = QuotaConfig {
                max_events: 100,
                max_bytes: 0,
            };
        });
        let reply = srv.respond(Frame::Events {
            tenant: 1,
            payload: payload(200, 1),
        });
        assert!(
            matches!(
                reply,
                Frame::Reject {
                    tenant: 1,
                    code: RejectCode::QuotaEvents,
                    ..
                }
            ),
            "got {reply:?}"
        );
        let reply = srv.respond(Frame::Events {
            tenant: 1,
            payload: b"garbage".to_vec(),
        });
        assert!(matches!(
            reply,
            Frame::Reject {
                code: RejectCode::BadPayload,
                ..
            }
        ));
        assert_eq!(srv.counters().rejected_frames, 2);
    }

    #[test]
    fn drain_rejects_new_events_and_flushes() {
        let srv = server_in("rsc_srv_drain", |_| {});
        srv.respond(Frame::Events {
            tenant: 3,
            payload: payload(100, 2),
        });
        let reply = srv.respond(Frame::Drain);
        assert_eq!(
            reply,
            Frame::Ack {
                tenant: 0,
                accepted: 1,
                tenant_events: 0
            }
        );
        assert!(srv.draining());
        let reply = srv.respond(Frame::Events {
            tenant: 3,
            payload: payload(100, 2),
        });
        assert!(matches!(
            reply,
            Frame::Reject {
                code: RejectCode::Draining,
                ..
            }
        ));
        // The flushed record is on disk and restores bit-identically.
        let srv2 = Server::new(ServerConfig::new(
            std::env::temp_dir().join("rsc_srv_drain"),
        ))
        .unwrap();
        assert_eq!(
            srv2.metrics_text(true),
            srv.metrics_text(true),
            "exposition identity across restart"
        );
    }

    #[test]
    fn shed_evicts_coldest_and_restores_on_touch() {
        let srv = server_in("rsc_srv_shed", |cfg| {
            cfg.max_live_tenants = 2;
        });
        for tenant in [1, 2, 3] {
            srv.respond(Frame::Events {
                tenant,
                payload: payload(50, tenant),
            });
        }
        assert_eq!(srv.live_tenants(), 2);
        assert_eq!(srv.counters().shed_tenants, 1);
        // Tenant 1 was coldest; touching it restores from disk with its
        // history intact.
        let reply = srv.respond(Frame::Events {
            tenant: 1,
            payload: payload(50, 9),
        });
        assert_eq!(
            reply,
            Frame::Ack {
                tenant: 1,
                accepted: 50,
                tenant_events: 100
            }
        );
        assert_eq!(srv.counters().restores, 1);
    }

    #[test]
    fn metrics_cover_live_and_evicted_tenants() {
        let srv = server_in("rsc_srv_metrics", |cfg| {
            cfg.max_live_tenants = 1;
        });
        srv.respond(Frame::Events {
            tenant: 10,
            payload: payload(40, 1),
        });
        srv.respond(Frame::Events {
            tenant: 11,
            payload: payload(60, 2),
        });
        assert_eq!(srv.live_tenants(), 1);
        let text = srv.metrics_text(true);
        assert!(
            text.contains("rsc_tenant_events_total{tenant=\"10\"} 40"),
            "{text}"
        );
        assert!(
            text.contains("rsc_tenant_events_total{tenant=\"11\"} 60"),
            "{text}"
        );
        let full = srv.metrics_text(false);
        assert!(full.contains("rsc_serve_shed_tenants_total 1"), "{full}");
    }

    #[test]
    fn backpressure_rejects_overloaded_tenant_only() {
        let srv = server_in("rsc_srv_backpressure", |cfg| {
            cfg.queue_depth = 1;
            cfg.backpressure_wait = Duration::from_millis(50);
        });
        // Create the tenant, then occupy its one permit from another
        // thread while we try to ingest.
        srv.respond(Frame::Events {
            tenant: 5,
            payload: payload(10, 1),
        });
        let cell = srv.resolve(5).unwrap();
        let permit = cell.gate.acquire();
        let reply = srv.respond(Frame::Events {
            tenant: 5,
            payload: payload(10, 2),
        });
        assert!(
            matches!(
                reply,
                Frame::Reject {
                    tenant: 5,
                    code: RejectCode::Overloaded,
                    ..
                }
            ),
            "got {reply:?}"
        );
        // A different tenant sails through while 5 is saturated.
        let reply = srv.respond(Frame::Events {
            tenant: 6,
            payload: payload(10, 3),
        });
        assert!(matches!(reply, Frame::Ack { tenant: 6, .. }));
        drop(permit);
        let reply = srv.respond(Frame::Events {
            tenant: 5,
            payload: payload(10, 4),
        });
        assert!(matches!(reply, Frame::Ack { tenant: 5, .. }));
    }
}
