//! The `repro load` engine: N concurrent clients replaying adversary
//! traces at a serve daemon, with optional chaos clients in the mix.
//!
//! # Determinism boundary
//!
//! A load run is a pure function of its seed *up to network timing*.
//! Tenants are partitioned disjointly among clients (`tenant % clients`
//! names the owner), and each client derives everything it does — which
//! scenario each frame replays, the trace bytes, and every chaos roll —
//! from `Xoshiro256::seed_from(seed).fork(client)`. Two runs with the
//! same seed therefore send byte-identical per-tenant streams in the
//! same per-tenant order, and the server's tenants-only metrics
//! exposition (a pure function of those streams) is identical across
//! runs and across server restarts. What the seed does *not* replay is
//! wall-clock interleaving *between* tenants: latencies, retry timing,
//! and cross-tenant arrival order vary run to run, which is why the
//! report separates deterministic counts from timing measurements.

use crate::chaos::ChaosConfig;
use crate::client::{Client, ClientConfig, ClientError, ClientFault, Endpoint};
use crate::frame::{Frame, RejectCode};
use rsc_trace::adversary::Scenario;
use rsc_trace::io::write_trace;
use std::time::{Duration, Instant};

/// The storm-heavy scenario mix `repro load` replays: weighted toward
/// the generators that trigger correlated invalidation storms and
/// eviction churn, with a random baseline to keep coverage honest.
pub const STORM_MIX: [Scenario; 6] = [
    Scenario::PhaseFlip {
        branches: 8,
        flip_after: 200,
    },
    Scenario::CorrelatedGroups {
        groups: 4,
        per_group: 8,
        flip_every: 300,
        churn: 150,
    },
    Scenario::ThresholdOscillator { window: 100 },
    Scenario::BurstyHotSet { hot: 6, burst: 64 },
    Scenario::PhaseFlip {
        branches: 16,
        flip_after: 500,
    },
    Scenario::UniformRandom { branches: 64 },
];

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon endpoint.
    pub endpoint: Endpoint,
    /// Concurrent clients (each owns `tenant % clients == id` tenants).
    pub clients: usize,
    /// Distinct tenants across all clients.
    pub tenants: u64,
    /// Event frames sent per tenant.
    pub frames_per_tenant: u32,
    /// Events per frame.
    pub events_per_frame: u64,
    /// Root seed; the whole plan derives from it.
    pub seed: u64,
    /// Client-seam chaos (torn frames, disconnects, slow-loris).
    pub chaos: ChaosConfig,
    /// Delay between slow-loris bytes.
    pub loris_delay: Duration,
    /// Transport retries per request.
    pub max_retries: u32,
}

impl LoadConfig {
    /// A small default storm against `endpoint`.
    pub fn new(endpoint: Endpoint) -> Self {
        LoadConfig {
            endpoint,
            clients: 4,
            tenants: 16,
            frames_per_tenant: 4,
            events_per_frame: 500,
            seed: 0,
            chaos: ChaosConfig::off(),
            loris_delay: Duration::from_micros(200),
            max_retries: 8,
        }
    }
}

/// One planned `Events` frame (pure data; see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFrame {
    /// Destination tenant.
    pub tenant: u64,
    /// Scenario replayed by this frame.
    pub scenario: Scenario,
    /// Seed for the trace bytes.
    pub trace_seed: u64,
    /// Events in the frame.
    pub events: u64,
}

impl PlannedFrame {
    /// Renders the frame's trace payload (deterministic).
    pub fn payload(&self) -> Vec<u8> {
        let records = self.scenario.generate(self.events, self.trace_seed);
        let mut buf = Vec::new();
        write_trace(&mut buf, records).expect("writing to a Vec cannot fail");
        buf
    }
}

/// The deterministic frame sequence for one client: round-robin over the
/// client's tenants, `frames_per_tenant` rounds, scenario and trace seed
/// drawn from the client's forked RNG stream.
pub fn client_plan(cfg: &LoadConfig, client: usize) -> Vec<PlannedFrame> {
    let mut rng = rsc_trace::rng::Xoshiro256::seed_from(cfg.seed).fork(client as u64);
    let tenants: Vec<u64> = (0..cfg.tenants)
        .filter(|t| (*t as usize) % cfg.clients.max(1) == client)
        .collect();
    let mut plan = Vec::with_capacity(tenants.len() * cfg.frames_per_tenant as usize);
    for _round in 0..cfg.frames_per_tenant {
        for &tenant in &tenants {
            let scenario = STORM_MIX[(rng.next_u64() % STORM_MIX.len() as u64) as usize];
            let trace_seed = rng.next_u64();
            plan.push(PlannedFrame {
                tenant,
                scenario,
                trace_seed,
                events: cfg.events_per_frame,
            });
        }
    }
    plan
}

/// Chaos stream id offset for client seams (client *c* rolls from stream
/// `CLIENT_CHAOS_STREAM + c`, never colliding with the storage seam).
pub const CLIENT_CHAOS_STREAM: u64 = 0xC11E;

/// What one load run did and measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Clients that ran.
    pub clients: usize,
    /// Tenants addressed.
    pub tenants: u64,
    /// `Events` frames sent (first attempts; retries not double-counted).
    pub frames_sent: u64,
    /// Frames acknowledged.
    pub frames_acked: u64,
    /// Frames rejected (sum of `rejects_by_code`).
    pub frames_rejected: u64,
    /// Rejects indexed like [`RejectCode::ALL`].
    pub rejects_by_code: [u64; 6],
    /// Requests that failed transport even after retries.
    pub failed_requests: u64,
    /// Events the server acknowledged applying.
    pub events_acked: u64,
    /// Transport retries across all clients.
    pub retries: u64,
    /// Injected torn frames.
    pub chaos_torn: u64,
    /// Injected disconnects.
    pub chaos_disconnects: u64,
    /// Injected slow-loris sends.
    pub chaos_loris: u64,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// Ingest latency percentiles/max over acknowledged or rejected
    /// requests, in microseconds (send to response, retries included).
    pub p50_us: u64,
    /// 99th-percentile ingest latency (µs).
    pub p99_us: u64,
    /// Worst ingest latency (µs).
    pub max_us: u64,
}

impl LoadReport {
    /// Tenants served per wall-clock second.
    pub fn tenants_per_sec(&self) -> f64 {
        per_sec(self.tenants as f64, self.elapsed)
    }

    /// Frames resolved per wall-clock second.
    pub fn frames_per_sec(&self) -> f64 {
        per_sec(self.frames_sent as f64, self.elapsed)
    }
}

fn per_sec(n: f64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        n / secs
    }
}

#[derive(Default)]
struct ClientOutcome {
    frames_sent: u64,
    frames_acked: u64,
    rejects_by_code: [u64; 6],
    failed_requests: u64,
    events_acked: u64,
    retries: u64,
    chaos_torn: u64,
    chaos_disconnects: u64,
    chaos_loris: u64,
    latencies_us: Vec<u64>,
}

fn code_index(code: RejectCode) -> usize {
    RejectCode::ALL
        .iter()
        .position(|c| *c == code)
        .expect("ALL covers every code")
}

fn run_client(cfg: &LoadConfig, client_id: usize) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client_cfg = ClientConfig::new(cfg.endpoint.clone());
    client_cfg.max_retries = cfg.max_retries;
    client_cfg.loris_delay = cfg.loris_delay;
    let mut client = Client::new(client_cfg);
    let mut die = cfg.chaos.die(CLIENT_CHAOS_STREAM + client_id as u64);
    for planned in client_plan(cfg, client_id) {
        let frame = Frame::Events {
            tenant: planned.tenant,
            payload: planned.payload(),
        };
        // One roll per seam per frame keeps the roll sequence aligned
        // with the plan regardless of which faults fire.
        let torn = die.roll(cfg.chaos.torn_frame_per_mille);
        let disconnect = die.roll(cfg.chaos.disconnect_per_mille);
        let loris = die.roll(cfg.chaos.slow_loris_per_mille);
        let tear_at = die.below(frame.encode().len() as u64) as usize;
        let fault = if torn {
            out.chaos_torn += 1;
            ClientFault::Torn { keep: tear_at }
        } else if disconnect {
            out.chaos_disconnects += 1;
            ClientFault::DisconnectFirst
        } else if loris {
            out.chaos_loris += 1;
            ClientFault::SlowLoris
        } else {
            ClientFault::None
        };
        out.frames_sent += 1;
        let start = Instant::now();
        match client.request_with(&frame, fault) {
            Ok(Frame::Ack { accepted, .. }) => {
                out.frames_acked += 1;
                out.events_acked += accepted;
                out.latencies_us.push(start.elapsed().as_micros() as u64);
            }
            Ok(Frame::Reject { code, .. }) => {
                out.rejects_by_code[code_index(code)] += 1;
                out.latencies_us.push(start.elapsed().as_micros() as u64);
            }
            Ok(_) | Err(ClientError::Frame(_)) => out.failed_requests += 1,
            Err(ClientError::Io(_)) => out.failed_requests += 1,
        }
    }
    out.retries = client.retries;
    out
}

/// Runs the load: `cfg.clients` threads, each replaying its
/// deterministic plan, merged into one report.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|id| scope.spawn(move || run_client(cfg, id)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let mut report = LoadReport {
        clients: cfg.clients.max(1),
        tenants: cfg.tenants,
        elapsed: started.elapsed(),
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for out in outcomes {
        report.frames_sent += out.frames_sent;
        report.frames_acked += out.frames_acked;
        for (total, per_client) in report
            .rejects_by_code
            .iter_mut()
            .zip(out.rejects_by_code.iter())
        {
            *total += per_client;
        }
        report.failed_requests += out.failed_requests;
        report.events_acked += out.events_acked;
        report.retries += out.retries;
        report.chaos_torn += out.chaos_torn;
        report.chaos_disconnects += out.chaos_disconnects;
        report.chaos_loris += out.chaos_loris;
        latencies.extend(out.latencies_us);
    }
    report.frames_rejected = report.rejects_by_code.iter().sum();
    latencies.sort_unstable();
    if !latencies.is_empty() {
        report.p50_us = latencies[(latencies.len() - 1) / 2];
        report.p99_us = latencies[(latencies.len() - 1) * 99 / 100];
        report.max_us = *latencies.last().expect("nonempty");
    }
    report
}

/// Fetches the daemon's metrics exposition over a one-shot client.
///
/// # Errors
///
/// Returns a description of transport or protocol failures.
pub fn fetch_metrics(endpoint: &Endpoint, tenants_only: bool) -> Result<String, String> {
    let mut client = Client::new(ClientConfig::new(endpoint.clone()));
    match client.request(&Frame::MetricsRequest { tenants_only }) {
        Ok(Frame::MetricsText { text }) => Ok(text),
        Ok(other) => Err(format!("unexpected metrics response: {other:?}")),
        Err(e) => Err(e.to_string()),
    }
}

/// Asks the daemon to drain; returns `(flushed, failed)` tenant counts.
///
/// # Errors
///
/// Returns a description of transport or protocol failures.
pub fn request_drain(endpoint: &Endpoint) -> Result<(u64, u64), String> {
    let mut client = Client::new(ClientConfig::new(endpoint.clone()));
    match client.request(&Frame::Drain) {
        Ok(Frame::Ack {
            accepted,
            tenant_events,
            ..
        }) => Ok((accepted, tenant_events)),
        Ok(other) => Err(format!("unexpected drain response: {other:?}")),
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> LoadConfig {
        let mut cfg = LoadConfig::new(Endpoint::Tcp("unused".into()));
        cfg.clients = 3;
        cfg.tenants = 7;
        cfg.frames_per_tenant = 2;
        cfg.events_per_frame = 50;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn plans_are_a_pure_function_of_the_seed() {
        for client in 0..3 {
            assert_eq!(client_plan(&cfg(42), client), client_plan(&cfg(42), client));
        }
        assert_ne!(client_plan(&cfg(42), 0), client_plan(&cfg(43), 0));
    }

    #[test]
    fn tenants_are_partitioned_disjointly() {
        let mut seen = std::collections::BTreeSet::new();
        let c = cfg(1);
        for client in 0..c.clients {
            for frame in client_plan(&c, client) {
                assert!(frame.tenant < c.tenants);
                seen.insert((client, frame.tenant));
            }
        }
        // Every tenant belongs to exactly one client.
        let mut owners = std::collections::BTreeMap::new();
        for (client, tenant) in seen {
            let prev = owners.insert(tenant, client);
            assert!(
                prev.is_none() || prev == Some(client),
                "tenant {tenant} owned by two clients"
            );
        }
        assert_eq!(owners.len(), c.tenants as usize);
    }

    #[test]
    fn payloads_replay_byte_identically() {
        let plan = client_plan(&cfg(9), 1);
        let again = client_plan(&cfg(9), 1);
        for (a, b) in plan.iter().zip(again.iter()) {
            assert_eq!(a.payload(), b.payload());
        }
    }
}
