//! Durable tenant state: checkpoint files with a torn-write-proof
//! protocol.
//!
//! Each tenant persists as one file, `tenant-<id>.rsvt`, holding a small
//! header (the ingest counters that live outside the controller), the
//! controller checkpoint blob (v3, via
//! [`rsc_control::ControllerCheckpoint`]), and an FNV-1a checksum footer
//! over everything before it:
//!
//! ```text
//! magic "RSVT" | version u8 | tenant varint | bytes varint |
//! rejected varint | blob len varint | blob | fnv64 LE
//! ```
//!
//! Writes follow **write-then-atomic-rename**: the bytes go to
//! `tenant-<id>.rsvt.tmp` first and are renamed over the final name only
//! after the write completed. A crash mid-write therefore leaves either
//! the old complete file or an orphaned `.tmp` — never a half-written
//! final file. [`CheckpointStore::list`] ignores (and sweeps) orphans,
//! and every load re-verifies the footer and the strict checkpoint
//! decode, so corruption that reaches disk anyway (the chaos seam flips
//! bits deliberately) surfaces as a typed [`StoreError`], never a panic.

use crate::chaos::{ChaosConfig, ChaosDie};
use rsc_control::{CheckpointError, ControllerCheckpoint};
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"RSVT";
const VERSION: u8 = 1;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// A tenant's durable state: the controller checkpoint plus the ingest
/// counters the checkpoint does not carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecord {
    /// Tenant id (also encoded in the file name; both must agree).
    pub tenant: u64,
    /// Lifetime payload bytes accepted.
    pub bytes_ingested: u64,
    /// Lifetime events refused by quota or payload checks.
    pub rejected_events: u64,
    /// Running FNV-1a digest over every accepted payload, in order.
    pub stream_digest: u64,
    /// The controller state.
    pub checkpoint: ControllerCheckpoint,
}

/// Why a tenant record failed to load or save.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (including injected ones).
    Io(io::Error),
    /// The file does not start with the `RSVT` magic.
    BadMagic,
    /// Unsupported record version.
    BadVersion(u8),
    /// The file ended before the structure was complete.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// A field is structurally invalid.
    Corrupt {
        /// What was wrong.
        what: &'static str,
    },
    /// The footer checksum disagrees with the bytes on disk.
    ChecksumMismatch {
        /// Checksum recomputed over the file body.
        computed: u64,
        /// Checksum stored in the footer.
        stored: u64,
    },
    /// The embedded controller checkpoint failed its strict decode.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => f.write_str("not a tenant record (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported tenant record version {v}"),
            StoreError::Truncated { offset } => write!(f, "tenant record truncated at {offset}"),
            StoreError::Corrupt { what } => write!(f, "corrupt tenant record: {what}"),
            StoreError::ChecksumMismatch { computed, stored } => write!(
                f,
                "tenant record checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            StoreError::Checkpoint(e) => write!(f, "embedded checkpoint invalid: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CheckpointError> for StoreError {
    fn from(e: CheckpointError) -> Self {
        StoreError::Checkpoint(e)
    }
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or(StoreError::Truncated { offset: *pos })?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::Corrupt {
                what: "varint too long",
            });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serializes a [`TenantRecord`] (header, blob, checksum footer).
pub fn encode_record(rec: &TenantRecord) -> Vec<u8> {
    let blob = rec.checkpoint.as_bytes();
    let mut out = Vec::with_capacity(blob.len() + 32);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    push_varint(&mut out, rec.tenant);
    push_varint(&mut out, rec.bytes_ingested);
    push_varint(&mut out, rec.rejected_events);
    push_varint(&mut out, rec.stream_digest);
    push_varint(&mut out, blob.len() as u64);
    out.extend_from_slice(blob);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a [`TenantRecord`], verifying the footer and the embedded
/// blob length. The controller checkpoint inside is *not* decoded here —
/// restore does that strictly when the state is actually needed.
///
/// # Errors
///
/// Returns a typed [`StoreError`] for every malformed input.
pub fn decode_record(bytes: &[u8]) -> Result<TenantRecord, StoreError> {
    if bytes.len() < MAGIC.len() + 1 {
        return Err(StoreError::Truncated {
            offset: bytes.len(),
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(StoreError::BadVersion(bytes[4]));
    }
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(StoreError::Truncated {
            offset: bytes.len(),
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { computed, stored });
    }
    let mut pos = 5;
    let tenant = read_varint(bytes, &mut pos)?;
    let bytes_ingested = read_varint(bytes, &mut pos)?;
    let rejected_events = read_varint(bytes, &mut pos)?;
    let stream_digest = read_varint(bytes, &mut pos)?;
    let blob_len = read_varint(bytes, &mut pos)? as usize;
    if blob_len != body_end.saturating_sub(pos) {
        return Err(StoreError::Corrupt {
            what: "blob length disagrees with file size",
        });
    }
    Ok(TenantRecord {
        tenant,
        bytes_ingested,
        rejected_events,
        stream_digest,
        checkpoint: ControllerCheckpoint::from_bytes(&bytes[pos..body_end]),
    })
}

/// On-disk tenant store rooted at one directory, with chaos seams on the
/// write path.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    chaos: ChaosConfig,
    die: ChaosDie,
    /// Spurious write errors injected so far.
    pub injected_write_errors: u64,
    /// Blob corruptions injected so far.
    pub injected_corruptions: u64,
}

impl CheckpointStore {
    /// Chaos stream id for the storage seam (documented so tests can
    /// predict the roll sequence).
    pub const CHAOS_STREAM: u64 = 0x5705;

    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>, chaos: ChaosConfig) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            die: chaos.die(Self::CHAOS_STREAM),
            dir,
            chaos,
            injected_write_errors: 0,
            injected_corruptions: 0,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn final_path(&self, tenant: u64) -> PathBuf {
        self.dir.join(format!("tenant-{tenant}.rsvt"))
    }

    fn tmp_path(&self, tenant: u64) -> PathBuf {
        self.dir.join(format!("tenant-{tenant}.rsvt.tmp"))
    }

    /// Persists a tenant record: encode, write to `.tmp`, atomically
    /// rename over the final name.
    ///
    /// Chaos seams fire here: a spurious [`StoreError::Io`] before
    /// anything is written, or a single flipped bit in the encoded bytes
    /// (which the rename still publishes — modeling a disk that lied —
    /// so the *next load* detects it via the checksum footer).
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] on real or injected failures. On
    /// error the previous complete record (if any) is still in place.
    pub fn save(&mut self, rec: &TenantRecord) -> Result<(), StoreError> {
        if self.die.roll(self.chaos.write_error_per_mille) {
            self.injected_write_errors += 1;
            return Err(StoreError::Io(io::Error::other(
                "injected: spurious checkpoint write failure",
            )));
        }
        let mut bytes = encode_record(rec);
        if self.die.roll(self.chaos.corrupt_blob_per_mille) {
            self.injected_corruptions += 1;
            let at = self.die.below(bytes.len() as u64) as usize;
            let bit = self.die.below(8) as u8;
            bytes[at] ^= 1 << bit;
        }
        let tmp = self.tmp_path(rec.tenant);
        let fin = self.final_path(rec.tenant);
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &fin)?;
        Ok(())
    }

    /// Loads a tenant record, or `Ok(None)` when no complete record
    /// exists. An orphaned `.tmp` (torn write) is swept and does not
    /// count as state.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] when a *complete* record exists
    /// but fails validation (checksum, structure).
    pub fn load(&self, tenant: u64) -> Result<Option<TenantRecord>, StoreError> {
        // A leftover `.tmp` is evidence of a torn write; remove it so it
        // can never be confused for state.
        let _ = std::fs::remove_file(self.tmp_path(tenant));
        let bytes = match std::fs::read(self.final_path(tenant)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let rec = decode_record(&bytes)?;
        if rec.tenant != tenant {
            return Err(StoreError::Corrupt {
                what: "record tenant id disagrees with file name",
            });
        }
        Ok(Some(rec))
    }

    /// Deletes a tenant's record (and any orphaned `.tmp`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the file being absent.
    pub fn remove(&self, tenant: u64) -> Result<(), StoreError> {
        let _ = std::fs::remove_file(self.tmp_path(tenant));
        match std::fs::remove_file(self.final_path(tenant)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Tenant ids with a complete record on disk, sorted. Orphaned
    /// `.tmp` files are swept as they are found.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> Result<Vec<u64>, StoreError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(".rsvt.tmp") {
                if stem.starts_with("tenant-") {
                    let _ = std::fs::remove_file(entry.path());
                }
                continue;
            }
            if let Some(id) = name
                .strip_prefix("tenant-")
                .and_then(|s| s.strip_suffix(".rsvt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push(id);
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_control::{ControllerParams, ReactiveController};

    fn record(tenant: u64) -> TenantRecord {
        let ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        TenantRecord {
            tenant,
            bytes_ingested: 123,
            rejected_events: 4,
            stream_digest: 0x5eed_d16e_5700_0000,
            checkpoint: ctl.snapshot(),
        }
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join("rsc_store_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir, ChaosConfig::off()).unwrap();
        let rec = record(7);
        store.save(&rec).unwrap();
        assert_eq!(store.load(7).unwrap().as_ref(), Some(&rec));
        assert_eq!(store.list().unwrap(), vec![7]);
        assert!(store.load(8).unwrap().is_none());
        store.remove(7).unwrap();
        assert!(store.load(7).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_tmp_is_swept_not_loaded() {
        let dir = std::env::temp_dir().join("rsc_store_tmp_sweep");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir, ChaosConfig::off()).unwrap();
        let rec = record(3);
        store.save(&rec).unwrap();
        // Simulate a crash mid-write: a half-record under the tmp name.
        std::fs::write(dir.join("tenant-3.rsvt.tmp"), b"RSVT\x01half").unwrap();
        std::fs::write(dir.join("tenant-9.rsvt.tmp"), b"torn").unwrap();
        // The complete record is untouched; the orphans are ignored.
        assert_eq!(store.load(3).unwrap().as_ref(), Some(&rec));
        assert_eq!(store.list().unwrap(), vec![3]);
        assert!(!dir.join("tenant-9.rsvt.tmp").exists(), "orphan swept");
        assert!(store.load(9).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_is_a_typed_error() {
        let dir = std::env::temp_dir().join("rsc_store_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir, ChaosConfig::off()).unwrap();
        store.save(&record(5)).unwrap();
        let path = dir.join("tenant-5.rsvt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(5),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_error_leaves_previous_record_intact() {
        let dir = std::env::temp_dir().join("rsc_store_chaos_write");
        let _ = std::fs::remove_dir_all(&dir);
        let chaos = ChaosConfig {
            seed: 11,
            write_error_per_mille: 1000,
            ..ChaosConfig::off()
        };
        let mut store = CheckpointStore::open(&dir, chaos).unwrap();
        // Seed the good record through a chaos-free store.
        let rec = record(2);
        CheckpointStore::open(&dir, ChaosConfig::off())
            .unwrap()
            .save(&rec)
            .unwrap();
        let mut newer = rec.clone();
        newer.bytes_ingested = 999;
        assert!(matches!(store.save(&newer), Err(StoreError::Io(_))));
        assert_eq!(store.injected_write_errors, 1);
        assert_eq!(store.load(2).unwrap().as_ref(), Some(&rec));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_is_caught_on_the_next_load() {
        let dir = std::env::temp_dir().join("rsc_store_chaos_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let chaos = ChaosConfig {
            seed: 11,
            corrupt_blob_per_mille: 1000,
            ..ChaosConfig::off()
        };
        let mut store = CheckpointStore::open(&dir, chaos).unwrap();
        store.save(&record(1)).unwrap();
        assert_eq!(store.injected_corruptions, 1);
        assert!(
            store.load(1).is_err(),
            "deliberately corrupted record must not load cleanly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncations_of_a_valid_record_never_panic() {
        let rec = record(6);
        let bytes = encode_record(&rec);
        for cut in 0..bytes.len() {
            let err = decode_record(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded cleanly");
        }
        assert_eq!(decode_record(&bytes).unwrap(), rec);
    }
}
