//! Deterministic fault injection for the serve daemon's seams.
//!
//! The robustness thesis of this crate is that *every degradation path
//! is a tested code path*. [`ChaosConfig`] describes, in per-mille
//! probabilities, the faults to inject at the two kinds of seams:
//!
//! * **storage seams** (server side): a checkpoint write fails
//!   spuriously, or the blob is corrupted by one bit on its way to disk
//!   — exercising the typed-error restore paths and the
//!   write-then-atomic-rename protocol;
//! * **client seams** (`repro load`): a frame is torn mid-write, the
//!   connection drops between frames, or a slow-loris client dribbles a
//!   frame byte by byte — exercising the server's torn-frame handling,
//!   per-connection isolation, and read deadlines.
//!
//! All rolls come from forked [`Xoshiro256`] streams, so a chaos run is
//! a pure function of its seed: the *content* of every injected fault
//! replays exactly (wall-clock timing, of course, does not).

use rsc_trace::rng::Xoshiro256;

/// Per-mille fault probabilities for every chaos seam. A zeroed config
/// (`ChaosConfig::off()`) injects nothing and is the production default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the fault-roll RNG streams.
    pub seed: u64,
    /// Client: probability a frame is truncated mid-write and the
    /// connection dropped (per mille).
    pub torn_frame_per_mille: u16,
    /// Client: probability the connection is dropped between frames and
    /// reopened for the next one (per mille).
    pub disconnect_per_mille: u16,
    /// Client: probability a frame is written one byte at a time with
    /// delays (per mille).
    pub slow_loris_per_mille: u16,
    /// Storage: probability a checkpoint save returns a spurious write
    /// error (per mille).
    pub write_error_per_mille: u16,
    /// Storage: probability one bit of a checkpoint blob is flipped
    /// before it reaches disk (per mille).
    pub corrupt_blob_per_mille: u16,
}

impl ChaosConfig {
    /// No injected faults.
    pub fn off() -> Self {
        ChaosConfig {
            seed: 0,
            torn_frame_per_mille: 0,
            disconnect_per_mille: 0,
            slow_loris_per_mille: 0,
            write_error_per_mille: 0,
            corrupt_blob_per_mille: 0,
        }
    }

    /// True when any seam has a nonzero probability.
    pub fn enabled(&self) -> bool {
        self.torn_frame_per_mille > 0
            || self.disconnect_per_mille > 0
            || self.slow_loris_per_mille > 0
            || self.write_error_per_mille > 0
            || self.corrupt_blob_per_mille > 0
    }

    /// Named profiles for the CLI: `off`, `light` (occasional faults on
    /// every seam), `heavy` (every seam hot — the CI storm profile).
    ///
    /// # Errors
    ///
    /// Returns the unknown name so the CLI can print a diagnostic.
    pub fn profile(name: &str, seed: u64) -> Result<Self, String> {
        let base = match name {
            "off" => ChaosConfig::off(),
            "light" => ChaosConfig {
                seed,
                torn_frame_per_mille: 20,
                disconnect_per_mille: 30,
                slow_loris_per_mille: 10,
                write_error_per_mille: 50,
                corrupt_blob_per_mille: 20,
            },
            "heavy" => ChaosConfig {
                seed,
                torn_frame_per_mille: 80,
                disconnect_per_mille: 120,
                slow_loris_per_mille: 40,
                write_error_per_mille: 200,
                corrupt_blob_per_mille: 100,
            },
            other => return Err(format!("unknown chaos profile {other:?}")),
        };
        Ok(ChaosConfig { seed, ..base })
    }

    /// A die for one seam, forked off the config seed by a stable stream
    /// id so seams never share a roll sequence.
    pub fn die(&self, stream: u64) -> ChaosDie {
        ChaosDie {
            rng: Xoshiro256::seed_from(self.seed).fork(stream),
        }
    }
}

/// One seam's deterministic roll stream.
#[derive(Debug, Clone)]
pub struct ChaosDie {
    rng: Xoshiro256,
}

impl ChaosDie {
    /// Rolls a per-mille chance. Always consumes exactly one RNG step,
    /// so downstream rolls stay aligned whether or not the fault fires.
    pub fn roll(&mut self, per_mille: u16) -> bool {
        let v = self.rng.next_u64() % 1000;
        v < u64::from(per_mille.min(1000))
    }

    /// A uniform index below `n` (for picking which byte to tear or
    /// which bit to flip).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.rng.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_a_pure_function_of_the_seed() {
        let cfg = ChaosConfig {
            seed: 7,
            ..ChaosConfig::profile("heavy", 7).unwrap()
        };
        let mut a = cfg.die(3);
        let mut b = cfg.die(3);
        let seq_a: Vec<bool> = (0..100).map(|_| a.roll(100)).collect();
        let seq_b: Vec<bool> = (0..100).map(|_| b.roll(100)).collect();
        assert_eq!(seq_a, seq_b);
        // Distinct streams diverge.
        let mut c = cfg.die(4);
        let seq_c: Vec<bool> = (0..100).map(|_| c.roll(100)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn per_mille_extremes() {
        let cfg = ChaosConfig {
            seed: 1,
            ..ChaosConfig::off()
        };
        let mut die = cfg.die(0);
        assert!((0..1000).all(|_| !die.roll(0)));
        assert!((0..1000).all(|_| die.roll(1000)));
    }

    #[test]
    fn profiles_parse_and_off_is_inert() {
        assert!(!ChaosConfig::off().enabled());
        assert!(ChaosConfig::profile("light", 9).unwrap().enabled());
        assert!(ChaosConfig::profile("heavy", 9).unwrap().enabled());
        assert!(!ChaosConfig::profile("off", 9).unwrap().enabled());
        assert!(ChaosConfig::profile("nope", 9).is_err());
    }
}
