//! The golden reference controller: a deliberately naive, obviously
//! correct transliteration of the paper's three-state FSM.
//!
//! [`ReferenceController`] is the *normative specification* of controller
//! behavior (see DESIGN.md §9). It trades every performance concern for
//! legibility: one `HashMap` entry per branch, owned state values cloned
//! on every event, a freshly allocated decision path per execution, and a
//! full unbounded transition log. Nothing here is shared with the
//! optimized [`ReactiveController`](crate::ReactiveController) except the
//! parameter types, the public event/stat types, and the Wilson-bound
//! arithmetic in [`crate::confidence`] (a pure math primitive, shared so
//! the two implementations cannot drift on floating-point evaluation
//! order).
//!
//! Every future optimization of `ReactiveController` must stay
//! bit-identical to this implementation; the `rsc-conformance` crate
//! enforces that with differential fuzzing over adversarial traces.
//!
//! # The FSM, normatively
//!
//! ```text
//!              bias >= threshold            misspec counter trips
//!   Monitor ─────────────────────► Biased ──────────────────────┐
//!      ▲  │                                                      │
//!      │  │ bias < threshold                 (eviction arc)      │
//!      │  ▼                                                      │
//!   Unbiased ◄───────────────────────────────────────────────────┘
//!      │        revisit arc: after the wait period,
//!      └──────► back to Monitor
//! ```
//!
//! Deployment latency splits both optimization arcs: selection passes
//! through `PendingBiased` (old, unspeculated code still running) and
//! eviction through `PendingMonitor` (stale speculative code still
//! running — and still misspeculating) until the deadline instruction
//! count is reached. The oscillation cap refuses the `(limit+1)`-th entry
//! into the biased state and disables the branch permanently.
//!
//! # Examples
//!
//! ```
//! use rsc_control::reference::ReferenceController;
//! use rsc_control::{ControllerParams, ReactiveController};
//! use rsc_trace::{spec2000, InputId};
//!
//! let pop = spec2000::benchmark("gzip").unwrap().population(20_000);
//! let mut golden = ReferenceController::new(ControllerParams::scaled())?;
//! let mut fast = ReactiveController::builder(ControllerParams::scaled()).build()?;
//! for r in pop.trace(InputId::Eval, 20_000, 1) {
//!     assert_eq!(golden.observe(&r), fast.observe(&r));
//! }
//! assert_eq!(golden.stats(), fast.stats());
//! assert_eq!(golden.transitions(), fast.transitions());
//! # Ok::<(), rsc_control::InvalidParamsError>(())
//! ```

use crate::controller::{
    BranchSnapshot, BranchStateView, SpecDecision, TrackerView, TransitionEvent, TransitionKind,
};
use crate::params::{ControllerParams, EvictionMode, InvalidParamsError, MonitorPolicy, Revisit};
use crate::resilience::breaker::BreakerSignal;
use crate::resilience::deployer::{DeployKind, DeployOutcome, DeployRequest};
use crate::resilience::{ResilienceConfig, ResilienceState, BREAKER_BRANCH};
use crate::stats::ControlStats;
use rsc_trace::{BranchId, BranchRecord, Direction};
use std::collections::HashMap;

/// Per-branch state, written as plain owned data. Identical in content to
/// the optimized controller's private state; independent in code.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RefState {
    Monitor {
        execs: u64,
        samples: u64,
        taken: u64,
    },
    PendingBiased {
        deadline: u64,
        dir: Direction,
    },
    Biased {
        dir: Direction,
        tracker: RefTracker,
    },
    PendingMonitor {
        deadline: u64,
        dir: Direction,
    },
    Unbiased {
        remaining: Option<u64>,
    },
    Disabled,
    RetryBiased {
        next: u64,
        dir: Direction,
        attempt: u32,
    },
    RetryMonitor {
        next: u64,
        dir: Direction,
        attempt: u32,
    },
}

/// Eviction bookkeeping, re-implemented from the spec (not from
/// [`crate::counter`]): the counter saturates in `[0, threshold]`, adding
/// `up` per misspeculation and subtracting `down` per correct
/// speculation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RefTracker {
    Counter {
        value: u32,
    },
    Sampling {
        pos: u64,
        matched: u64,
        sampled: u64,
    },
    Never,
}

#[derive(Debug, Clone)]
struct RefBranch {
    state: RefState,
    entries: u32,
    entries_since_flush: u32,
    evictions: u32,
    execs: u64,
    /// Misspeculations since the storm breaker last opened (mass-eviction
    /// ranking; maintained only with a breaker, never compared).
    recent_misses: u64,
}

impl RefBranch {
    fn fresh() -> Self {
        RefBranch {
            state: RefState::Monitor {
                execs: 0,
                samples: 0,
                taken: 0,
            },
            entries: 0,
            entries_since_flush: 0,
            evictions: 0,
            execs: 0,
            recent_misses: 0,
        }
    }
}

/// The golden oracle: semantically identical to
/// [`ReactiveController`](crate::ReactiveController), structurally as
/// simple as possible.
#[derive(Debug, Clone)]
pub struct ReferenceController {
    params: ControllerParams,
    branches: HashMap<u32, RefBranch>,
    transitions: Vec<TransitionEvent>,
    events: u64,
    instructions: u64,
    correct: u64,
    incorrect: u64,
    /// Opt-in resilience layer, mirroring the optimized controller's.
    resilience: Option<ResilienceState>,
}

impl ReferenceController {
    /// Creates a reference controller.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are inconsistent.
    pub fn new(params: ControllerParams) -> Result<Self, InvalidParamsError> {
        params.validate()?;
        Ok(ReferenceController {
            params,
            branches: HashMap::new(),
            transitions: Vec::new(),
            events: 0,
            instructions: 0,
            correct: 0,
            incorrect: 0,
            resilience: None,
        })
    }

    /// Creates a reference controller with the resilience layer attached,
    /// mirroring `ReactiveController::builder(params).resilience(config)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the controller parameters or the resilience
    /// configuration are inconsistent.
    pub fn with_resilience(
        params: ControllerParams,
        config: ResilienceConfig,
    ) -> Result<Self, InvalidParamsError> {
        let mut ctl = Self::new(params)?;
        ctl.resilience = Some(ResilienceState::new(config)?);
        Ok(ctl)
    }

    /// The resilience configuration, if the layer is attached.
    pub fn resilience_config(&self) -> Option<&ResilienceConfig> {
        self.resilience.as_ref().map(|rs| &rs.config)
    }

    /// The controller's parameters.
    pub fn params(&self) -> &ControllerParams {
        &self.params
    }

    /// Routes a deployment request through the resilience layer; without
    /// one, deployment is infallible (the paper's model).
    fn deploy(
        &mut self,
        branch: BranchId,
        kind: DeployKind,
        instr: u64,
        attempt: u32,
    ) -> DeployOutcome {
        match &mut self.resilience {
            Some(rs) => rs.deployer.request(&DeployRequest {
                branch,
                kind,
                instr,
                attempt,
            }),
            None => DeployOutcome::Deployed,
        }
    }

    fn fresh_unbiased(&self) -> RefState {
        RefState::Unbiased {
            remaining: match self.params.revisit {
                Revisit::After(n) => Some(n),
                Revisit::Never => None,
            },
        }
    }

    fn retry_config(&self) -> crate::resilience::RetryPolicy {
        self.resilience
            .as_ref()
            .expect("deployment failures imply a resilience layer")
            .config
            .retry
    }

    /// Feeds one dynamic branch execution through the FSM.
    ///
    /// Step order is normative: the event counter increments first (so
    /// transitions logged during event *i* carry `event_index == i + 1`),
    /// the instruction high-water mark and per-branch execution count
    /// update next, and only then does the state machine run. Deployment
    /// deadlines are checked *before* processing, so the first
    /// post-deadline execution already runs the newly deployed code.
    pub fn observe(&mut self, r: &BranchRecord) -> SpecDecision {
        let decision = self.observe_inner(r);
        let has_breaker = self
            .resilience
            .as_ref()
            .is_some_and(|rs| rs.breaker.is_some());
        if has_breaker {
            self.breaker_tick(r, decision);
        }
        decision
    }

    fn observe_inner(&mut self, r: &BranchRecord) -> SpecDecision {
        self.events += 1;
        self.instructions = self.instructions.max(r.instr);
        self.branches
            .entry(r.branch.index() as u32)
            .or_insert_with(RefBranch::fresh)
            .execs += 1;

        // Resolve deployment deadlines (and due retries) first: a reached
        // deadline swaps the state and the event is reprocessed under the
        // new state. At most one retry is issued per event, and a *failed*
        // retry returns directly — it never re-enters this loop.
        loop {
            let state = self.branches[&(r.branch.index() as u32)].state.clone();
            match state {
                RefState::PendingBiased { deadline, dir } if r.instr >= deadline => {
                    self.set_state(
                        r.branch,
                        RefState::Biased {
                            dir,
                            tracker: self.fresh_tracker(),
                        },
                    );
                }
                RefState::PendingMonitor { deadline, .. } if r.instr >= deadline => {
                    self.set_state(
                        r.branch,
                        RefState::Monitor {
                            execs: 0,
                            samples: 0,
                            taken: 0,
                        },
                    );
                }
                RefState::RetryBiased { next, dir, attempt } if r.instr >= next => {
                    self.resilience
                        .as_mut()
                        .expect("retry states imply a resilience layer")
                        .deploy_retries += 1;
                    match self.deploy(r.branch, DeployKind::Optimize, r.instr, attempt) {
                        DeployOutcome::Deployed => {
                            if self.params.optimization_latency == 0 {
                                self.set_state(
                                    r.branch,
                                    RefState::Biased {
                                        dir,
                                        tracker: self.fresh_tracker(),
                                    },
                                );
                            } else {
                                self.set_state(
                                    r.branch,
                                    RefState::PendingBiased {
                                        deadline: r.instr + self.params.optimization_latency,
                                        dir,
                                    },
                                );
                            }
                        }
                        DeployOutcome::Failed { wasted } => {
                            let retry = self.retry_config();
                            self.resilience.as_mut().expect("checked").deploy_failures += 1;
                            self.log(r.branch, TransitionKind::DeployFailed, r.instr, Some(dir));
                            let failures = attempt + 1;
                            if failures >= retry.max_attempts {
                                self.log(r.branch, TransitionKind::EnterAbandoned, r.instr, None);
                                let parked = self.fresh_unbiased();
                                self.set_state(r.branch, parked);
                            } else {
                                self.set_state(
                                    r.branch,
                                    RefState::RetryBiased {
                                        next: r.instr + wasted + retry.backoff(failures),
                                        dir,
                                        attempt: failures,
                                    },
                                );
                            }
                            return SpecDecision::NotSpeculated;
                        }
                    }
                }
                RefState::RetryMonitor { next, dir, attempt } if r.instr >= next => {
                    self.resilience
                        .as_mut()
                        .expect("retry states imply a resilience layer")
                        .deploy_retries += 1;
                    match self.deploy(r.branch, DeployKind::Repair, r.instr, attempt) {
                        DeployOutcome::Deployed => {
                            if self.params.optimization_latency == 0 {
                                self.set_state(
                                    r.branch,
                                    RefState::Monitor {
                                        execs: 0,
                                        samples: 0,
                                        taken: 0,
                                    },
                                );
                            } else {
                                self.set_state(
                                    r.branch,
                                    RefState::PendingMonitor {
                                        deadline: r.instr + self.params.optimization_latency,
                                        dir,
                                    },
                                );
                            }
                        }
                        DeployOutcome::Failed { wasted } => {
                            let retry = self.retry_config();
                            self.resilience.as_mut().expect("checked").deploy_failures += 1;
                            self.log(r.branch, TransitionKind::DeployFailed, r.instr, Some(dir));
                            let failures = attempt + 1;
                            if failures >= retry.max_attempts {
                                // Fail safe: repair is unreachable, so the
                                // branch is disabled rather than left
                                // speculating stale.
                                self.log(r.branch, TransitionKind::ForcedDisable, r.instr, None);
                                self.resilience.as_mut().expect("checked").forced_disables += 1;
                                self.set_state(r.branch, RefState::Disabled);
                                return SpecDecision::NotSpeculated;
                            }
                            self.set_state(
                                r.branch,
                                RefState::RetryMonitor {
                                    next: r.instr + wasted + retry.backoff(failures),
                                    dir,
                                    attempt: failures,
                                },
                            );
                            // The stale speculative code is still running.
                            return self.speculate(dir, r.taken);
                        }
                    }
                }
                state => return self.step(r, state),
            }
        }
    }

    /// Advances the storm breaker by one observed event and reacts to any
    /// phase change. Only called when a breaker is configured.
    fn breaker_tick(&mut self, r: &BranchRecord, decision: SpecDecision) {
        let miss = decision == SpecDecision::Incorrect;
        if miss {
            self.branch_mut(r.branch).recent_misses += 1;
        }
        let events = self.events;
        let signal = {
            let rs = self.resilience.as_mut().expect("breaker_tick gated");
            rs.breaker
                .as_mut()
                .expect("breaker_tick gated")
                .tick(events, miss)
        };
        match signal {
            BreakerSignal::None => {}
            BreakerSignal::Opened | BreakerSignal::Reopened => {
                self.log(BREAKER_BRANCH, TransitionKind::BreakerOpened, r.instr, None);
                let top_k = self
                    .resilience
                    .as_ref()
                    .and_then(|rs| rs.config.breaker)
                    .map_or(0, |b| b.mass_evict_top_k);
                if top_k > 0 {
                    self.mass_evict(top_k, r.instr);
                }
                for b in self.branches.values_mut() {
                    b.recent_misses = 0;
                }
            }
            BreakerSignal::HalfOpened => {
                self.log(
                    BREAKER_BRANCH,
                    TransitionKind::BreakerHalfOpen,
                    r.instr,
                    None,
                );
            }
            BreakerSignal::Closed => {
                self.log(BREAKER_BRANCH, TransitionKind::BreakerClosed, r.instr, None);
            }
        }
    }

    /// Mass-evicts the `k` currently-biased branches with the most recent
    /// misspeculations, ties broken by branch index — the same
    /// deterministic order as the optimized controller despite the
    /// `HashMap` storage.
    fn mass_evict(&mut self, k: usize, instr: u64) {
        let mut candidates: Vec<(u64, u32)> = self
            .branches
            .iter()
            .filter(|(_, b)| matches!(b.state, RefState::Biased { .. }))
            .map(|(&i, b)| (b.recent_misses, i))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        candidates.truncate(k);
        for (_, i) in candidates {
            let branch = BranchId::new(i);
            let dir = match &self.branches[&i].state {
                RefState::Biased { dir, .. } => *dir,
                _ => unreachable!("candidates are biased"),
            };
            self.branch_mut(branch).evictions += 1;
            self.log(branch, TransitionKind::ExitBiased, instr, Some(dir));
            self.set_state(
                branch,
                RefState::Monitor {
                    execs: 0,
                    samples: 0,
                    taken: 0,
                },
            );
        }
    }

    /// One FSM step under a settled (non-deadline) state.
    fn step(&mut self, r: &BranchRecord, state: RefState) -> SpecDecision {
        match state {
            RefState::Disabled => SpecDecision::NotSpeculated,

            RefState::Monitor {
                execs,
                samples,
                taken,
            } => {
                // Sample every `monitor_sample_rate`-th execution,
                // starting with the first.
                let sampled = execs % self.params.monitor_sample_rate == 0;
                let samples = samples + u64::from(sampled);
                let taken = taken + u64::from(sampled && r.taken);
                let execs = execs + 1;
                match self.classify(execs, samples, taken) {
                    None => {
                        self.set_state(
                            r.branch,
                            RefState::Monitor {
                                execs,
                                samples,
                                taken,
                            },
                        );
                    }
                    Some(true) => self.select(r, samples, taken),
                    Some(false) => {
                        let remaining = match self.params.revisit {
                            Revisit::After(n) => Some(n),
                            Revisit::Never => None,
                        };
                        self.set_state(r.branch, RefState::Unbiased { remaining });
                        self.log(r.branch, TransitionKind::EnterUnbiased, r.instr, None);
                    }
                }
                SpecDecision::NotSpeculated
            }

            RefState::PendingBiased { .. } => SpecDecision::NotSpeculated,

            RefState::Biased { dir, tracker } => {
                let decision = self.speculate(dir, r.taken);
                let (tracker, evict) = self.track(tracker, dir.matches(r.taken));
                if evict {
                    self.branch_mut(r.branch).evictions += 1;
                    self.log(r.branch, TransitionKind::ExitBiased, r.instr, Some(dir));
                    match self.deploy(r.branch, DeployKind::Repair, r.instr, 0) {
                        DeployOutcome::Deployed => {
                            if self.params.optimization_latency == 0 {
                                self.set_state(
                                    r.branch,
                                    RefState::Monitor {
                                        execs: 0,
                                        samples: 0,
                                        taken: 0,
                                    },
                                );
                            } else {
                                self.set_state(
                                    r.branch,
                                    RefState::PendingMonitor {
                                        deadline: r.instr + self.params.optimization_latency,
                                        dir,
                                    },
                                );
                            }
                        }
                        DeployOutcome::Failed { wasted } => {
                            let retry = self.retry_config();
                            self.resilience.as_mut().expect("checked").deploy_failures += 1;
                            self.log(r.branch, TransitionKind::DeployFailed, r.instr, Some(dir));
                            if retry.max_attempts <= 1 {
                                self.log(r.branch, TransitionKind::ForcedDisable, r.instr, None);
                                self.resilience.as_mut().expect("checked").forced_disables += 1;
                                self.set_state(r.branch, RefState::Disabled);
                            } else {
                                self.set_state(
                                    r.branch,
                                    RefState::RetryMonitor {
                                        next: r.instr + wasted + retry.backoff(1),
                                        dir,
                                        attempt: 1,
                                    },
                                );
                            }
                        }
                    }
                } else {
                    self.set_state(r.branch, RefState::Biased { dir, tracker });
                }
                decision
            }

            // Stale speculative code runs (and misspeculates) until the
            // repaired code deploys.
            RefState::PendingMonitor { dir, .. } => self.speculate(dir, r.taken),

            RefState::Unbiased { remaining } => {
                match remaining {
                    Some(n) if n <= 1 => {
                        self.set_state(
                            r.branch,
                            RefState::Monitor {
                                execs: 0,
                                samples: 0,
                                taken: 0,
                            },
                        );
                        self.log(r.branch, TransitionKind::RevisitMonitor, r.instr, None);
                    }
                    Some(n) => {
                        self.set_state(
                            r.branch,
                            RefState::Unbiased {
                                remaining: Some(n - 1),
                            },
                        );
                    }
                    None => {}
                }
                SpecDecision::NotSpeculated
            }

            // Backoff not yet elapsed (due retries were resolved in the
            // observe pre-loop): unoptimized code runs.
            RefState::RetryBiased { .. } => SpecDecision::NotSpeculated,

            // Backoff not yet elapsed: the stale speculative code runs.
            RefState::RetryMonitor { dir, .. } => self.speculate(dir, r.taken),
        }
    }

    /// `Some(true)` = classify biased, `Some(false)` = classify unbiased,
    /// `None` = keep monitoring.
    fn classify(&self, execs: u64, samples: u64, taken: u64) -> Option<bool> {
        let majority = taken.max(samples - taken);
        let point_bias = if samples == 0 {
            0.0
        } else {
            majority as f64 / samples as f64
        };
        let threshold = self.params.selection_threshold;
        match self.params.monitor_policy {
            MonitorPolicy::FixedWindow => {
                if execs >= self.params.monitor_period {
                    Some(point_bias >= threshold)
                } else {
                    None
                }
            }
            MonitorPolicy::Confidence {
                z,
                min_execs,
                max_execs,
            } => {
                if samples < min_execs {
                    None
                } else {
                    let (lo, hi) = crate::confidence::wilson_bounds(majority, samples, z);
                    if lo >= threshold {
                        Some(true)
                    } else if hi < threshold {
                        Some(false)
                    } else if samples >= max_execs {
                        Some(point_bias >= threshold)
                    } else {
                        None
                    }
                }
            }
        }
    }

    /// The monitor classified the branch biased: enter (or refuse, under
    /// the oscillation cap) the biased state.
    fn select(&mut self, r: &BranchRecord, samples: u64, taken: u64) {
        let dir = if taken * 2 >= samples {
            Direction::Taken
        } else {
            Direction::NotTaken
        };
        // An open storm breaker suppresses the deployment: the branch
        // parks as unbiased (no entry, no log) and the revisit arc
        // re-monitors it after the storm.
        if self
            .resilience
            .as_ref()
            .is_some_and(|rs| rs.breaker.as_ref().is_some_and(|b| b.suppressing()))
        {
            if let Some(rs) = &mut self.resilience {
                rs.suppressed_enters += 1;
            }
            let parked = self.fresh_unbiased();
            self.set_state(r.branch, parked);
            return;
        }
        if let Some(limit) = self.params.oscillation_limit {
            if self.branches[&(r.branch.index() as u32)].entries_since_flush >= limit {
                self.set_state(r.branch, RefState::Disabled);
                self.log(r.branch, TransitionKind::Disabled, r.instr, None);
                return;
            }
        }
        let b = self.branch_mut(r.branch);
        b.entries += 1;
        b.entries_since_flush += 1;
        self.log(r.branch, TransitionKind::EnterBiased, r.instr, Some(dir));
        match self.deploy(r.branch, DeployKind::Optimize, r.instr, 0) {
            DeployOutcome::Deployed => {
                if self.params.optimization_latency == 0 {
                    self.set_state(
                        r.branch,
                        RefState::Biased {
                            dir,
                            tracker: self.fresh_tracker(),
                        },
                    );
                } else {
                    self.set_state(
                        r.branch,
                        RefState::PendingBiased {
                            deadline: r.instr + self.params.optimization_latency,
                            dir,
                        },
                    );
                }
            }
            DeployOutcome::Failed { wasted } => {
                let retry = self.retry_config();
                self.resilience.as_mut().expect("checked").deploy_failures += 1;
                self.log(r.branch, TransitionKind::DeployFailed, r.instr, Some(dir));
                if retry.max_attempts <= 1 {
                    self.log(r.branch, TransitionKind::EnterAbandoned, r.instr, None);
                    let parked = self.fresh_unbiased();
                    self.set_state(r.branch, parked);
                } else {
                    self.set_state(
                        r.branch,
                        RefState::RetryBiased {
                            next: r.instr + wasted + retry.backoff(1),
                            dir,
                            attempt: 1,
                        },
                    );
                }
            }
        }
    }

    /// Scores one speculated execution and updates the global counters.
    fn speculate(&mut self, dir: Direction, taken: bool) -> SpecDecision {
        if dir.matches(taken) {
            self.correct += 1;
            SpecDecision::Correct
        } else {
            self.incorrect += 1;
            SpecDecision::Incorrect
        }
    }

    /// Advances the eviction tracker by one execution; returns the updated
    /// tracker and whether the eviction policy fired.
    fn track(&self, tracker: RefTracker, correct: bool) -> (RefTracker, bool) {
        match tracker {
            RefTracker::Counter { value } => {
                let (up, down, threshold) = match self.params.eviction {
                    EvictionMode::Counter {
                        up,
                        down,
                        threshold,
                    } => (up, down, threshold),
                    _ => unreachable!("tracker matches eviction mode"),
                };
                let value = if correct {
                    value.saturating_sub(down)
                } else {
                    value.saturating_add(up).min(threshold)
                };
                (RefTracker::Counter { value }, value >= threshold)
            }
            RefTracker::Sampling {
                pos,
                matched,
                sampled,
            } => {
                let (period, samples, bias_threshold) = match self.params.eviction {
                    EvictionMode::Sampling {
                        period,
                        samples,
                        bias_threshold,
                    } => (period, samples, bias_threshold),
                    _ => unreachable!("tracker matches eviction mode"),
                };
                let mut fire = false;
                let (mut pos, mut matched, mut sampled) = (pos, matched, sampled);
                if pos < samples {
                    sampled += 1;
                    matched += u64::from(correct);
                    if sampled == samples {
                        let bias = matched as f64 / sampled as f64;
                        fire = bias < bias_threshold;
                    }
                }
                pos += 1;
                if pos >= period {
                    pos = 0;
                    matched = 0;
                    sampled = 0;
                }
                (
                    RefTracker::Sampling {
                        pos,
                        matched,
                        sampled,
                    },
                    fire,
                )
            }
            RefTracker::Never => (RefTracker::Never, false),
        }
    }

    fn fresh_tracker(&self) -> RefTracker {
        match self.params.eviction {
            EvictionMode::Counter { .. } => RefTracker::Counter { value: 0 },
            EvictionMode::Sampling { .. } => RefTracker::Sampling {
                pos: 0,
                matched: 0,
                sampled: 0,
            },
            EvictionMode::Never => RefTracker::Never,
        }
    }

    fn branch_mut(&mut self, branch: BranchId) -> &mut RefBranch {
        self.branches
            .get_mut(&(branch.index() as u32))
            .expect("branch inserted at observe entry")
    }

    fn set_state(&mut self, branch: BranchId, state: RefState) {
        self.branch_mut(branch).state = state;
    }

    fn log(
        &mut self,
        branch: BranchId,
        kind: TransitionKind,
        instr: u64,
        direction: Option<Direction>,
    ) {
        self.transitions.push(TransitionEvent {
            branch,
            kind,
            event_index: self.events,
            instr,
            direction,
        });
    }

    /// Forgets every classification (fragment-cache flush), mirroring
    /// [`ReactiveController::flush_all`](crate::ReactiveController::flush_all).
    pub fn flush_all(&mut self) {
        for b in self.branches.values_mut() {
            b.state = RefState::Monitor {
                execs: 0,
                samples: 0,
                taken: 0,
            };
            b.entries_since_flush = 0;
        }
    }

    /// The full transition log (the reference always retains everything).
    pub fn transitions(&self) -> &[TransitionEvent] {
        &self.transitions
    }

    /// Exact number of transitions of `kind`, recomputed naively from the
    /// full log.
    pub fn transition_count(&self, kind: TransitionKind) -> u64 {
        self.transitions.iter().filter(|t| t.kind == kind).count() as u64
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ControlStats {
        let mut s = ControlStats {
            events: self.events,
            instructions: self.instructions,
            correct: self.correct,
            incorrect: self.incorrect,
            ..ControlStats::default()
        };
        for b in self.branches.values() {
            if b.execs == 0 {
                continue;
            }
            s.touched += 1;
            if b.entries > 0 {
                s.entered_biased += 1;
                s.total_entries += u64::from(b.entries);
            }
            if b.evictions > 0 {
                s.evicted_branches += 1;
                s.total_evictions += u64::from(b.evictions);
            }
            if matches!(b.state, RefState::Disabled) {
                s.disabled_branches += 1;
            }
        }
        s.reopt_requests = s.total_entries + s.total_evictions;
        if let Some(rs) = &self.resilience {
            s.deploy_failures = rs.deploy_failures;
            s.deploy_retries = rs.deploy_retries;
            s.forced_disables = rs.forced_disables;
            s.suppressed_enters = rs.suppressed_enters;
        }
        s
    }

    /// Externally comparable snapshot of `branch` (see
    /// [`ReactiveController::branch_snapshot`](crate::ReactiveController::branch_snapshot)).
    pub fn branch_snapshot(&self, branch: BranchId) -> BranchSnapshot {
        let Some(b) = self.branches.get(&(branch.index() as u32)) else {
            return BranchSnapshot::untouched();
        };
        let state = match &b.state {
            RefState::Monitor {
                execs,
                samples,
                taken,
            } => BranchStateView::Monitor {
                execs: *execs,
                samples: *samples,
                taken: *taken,
            },
            RefState::PendingBiased { deadline, dir } => BranchStateView::PendingBiased {
                deadline: *deadline,
                dir: *dir,
            },
            RefState::Biased { dir, tracker } => BranchStateView::Biased {
                dir: *dir,
                tracker: match tracker {
                    RefTracker::Counter { value } => TrackerView::Counter { value: *value },
                    RefTracker::Sampling {
                        pos,
                        matched,
                        sampled,
                    } => TrackerView::Sampling {
                        pos: *pos,
                        matched: *matched,
                        sampled: *sampled,
                    },
                    RefTracker::Never => TrackerView::Never,
                },
            },
            RefState::PendingMonitor { deadline, dir } => BranchStateView::PendingMonitor {
                deadline: *deadline,
                dir: *dir,
            },
            RefState::Unbiased { remaining } => BranchStateView::Unbiased {
                remaining: *remaining,
            },
            RefState::Disabled => BranchStateView::Disabled,
            RefState::RetryBiased { next, dir, attempt } => BranchStateView::RetryBiased {
                next: *next,
                dir: *dir,
                attempt: *attempt,
            },
            RefState::RetryMonitor { next, dir, attempt } => BranchStateView::RetryMonitor {
                next: *next,
                dir: *dir,
                attempt: *attempt,
            },
        };
        BranchSnapshot {
            state,
            entries: b.entries,
            entries_since_flush: b.entries_since_flush,
            evictions: b.evictions,
            execs: b.execs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReactiveController;

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    fn tiny() -> ControllerParams {
        ControllerParams {
            monitor_period: 10,
            monitor_policy: MonitorPolicy::FixedWindow,
            monitor_sample_rate: 1,
            selection_threshold: 0.995,
            eviction: EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 100,
            },
            revisit: Revisit::After(20),
            oscillation_limit: Some(5),
            optimization_latency: 0,
        }
    }

    /// A stream exercising selection, eviction, oscillation disable, the
    /// unbiased/revisit arc, and deployment latency cascades.
    fn lifecycle_stream() -> Vec<BranchRecord> {
        let mut v = Vec::new();
        let mut instr = 0u64;
        for round in 0..8u64 {
            for _ in 0..10 {
                instr += 5;
                v.push(rec(0, true, instr));
            }
            for _ in 0..3 {
                instr += 5;
                v.push(rec(0, false, instr));
            }
            for i in 0..25u64 {
                instr += 5;
                v.push(rec(1, (i + round) % 2 == 0, instr));
            }
            // A long gap so pending deadlines resolve under latency
            // parameterizations.
            instr += 60;
        }
        v
    }

    fn assert_lockstep(params: ControllerParams) {
        let mut golden = ReferenceController::new(params).unwrap();
        let mut fast = ReactiveController::builder(params).build().unwrap();
        for (i, r) in lifecycle_stream().iter().enumerate() {
            let a = golden.observe(r);
            let b = fast.observe(r);
            assert_eq!(a, b, "decision diverged at event {i}");
        }
        assert_eq!(golden.stats(), fast.stats());
        assert_eq!(golden.transitions(), fast.transitions());
        for b in 0..3u32 {
            assert_eq!(
                golden.branch_snapshot(BranchId::new(b)),
                fast.branch_snapshot(BranchId::new(b)),
                "branch {b}"
            );
        }
    }

    #[test]
    fn matches_optimized_controller_across_lifecycle() {
        assert_lockstep(tiny());
    }

    #[test]
    fn matches_optimized_controller_with_latency() {
        assert_lockstep(tiny().with_latency(40));
    }

    #[test]
    fn matches_optimized_controller_without_eviction() {
        assert_lockstep(tiny().without_eviction());
    }

    #[test]
    fn matches_optimized_controller_with_sampled_eviction() {
        let mut p = tiny();
        p.eviction = EvictionMode::Sampling {
            period: 20,
            samples: 10,
            bias_threshold: 0.98,
        };
        assert_lockstep(p);
    }

    #[test]
    fn matches_optimized_controller_with_confidence_monitor() {
        assert_lockstep(tiny().with_confidence_monitor(2.58, 4, 32));
    }

    #[test]
    fn matches_optimized_controller_with_monitor_sampling() {
        assert_lockstep(tiny().with_monitor_sampling(3));
    }

    mod resilient_lockstep {
        use super::*;
        use crate::resilience::{
            BreakerConfig, DeployerSpec, FaultMode, FaultScope, FaultSpec, ResilienceConfig,
            RetryPolicy,
        };

        fn assert_lockstep_resilient(params: ControllerParams, config: ResilienceConfig) {
            let mut golden = ReferenceController::with_resilience(params, config).unwrap();
            let mut fast = ReactiveController::builder(params)
                .resilience(config)
                .build()
                .unwrap();
            for (i, r) in lifecycle_stream().iter().enumerate() {
                let a = golden.observe(r);
                let b = fast.observe(r);
                assert_eq!(a, b, "decision diverged at event {i}");
            }
            assert_eq!(golden.stats(), fast.stats());
            assert_eq!(golden.transitions(), fast.transitions());
            for b in 0..3u32 {
                assert_eq!(
                    golden.branch_snapshot(BranchId::new(b)),
                    fast.branch_snapshot(BranchId::new(b)),
                    "branch {b}"
                );
            }
        }

        fn faulty(mode: FaultMode, scope: FaultScope) -> ResilienceConfig {
            ResilienceConfig {
                deployer: DeployerSpec::Faulty(FaultSpec {
                    seed: 11,
                    mode,
                    scope,
                    wasted: 7,
                }),
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_backoff: 15,
                    max_backoff: 60,
                },
                breaker: None,
            }
        }

        #[test]
        fn reliable_layer_matches_layerless_reference() {
            let params = tiny();
            let mut golden = ReferenceController::new(params).unwrap();
            let mut fast = ReactiveController::builder(params)
                .resilience(ResilienceConfig::reliable())
                .build()
                .unwrap();
            for r in lifecycle_stream() {
                assert_eq!(golden.observe(&r), fast.observe(&r));
            }
            assert_eq!(golden.stats(), fast.stats());
            assert_eq!(golden.transitions(), fast.transitions());
        }

        #[test]
        fn matches_under_random_faults() {
            assert_lockstep_resilient(
                tiny(),
                faulty(FaultMode::FixedRate { per_mille: 500 }, FaultScope::All),
            );
        }

        #[test]
        fn matches_under_random_faults_with_latency() {
            assert_lockstep_resilient(
                tiny().with_latency(40),
                faulty(FaultMode::FixedRate { per_mille: 500 }, FaultScope::All),
            );
        }

        #[test]
        fn matches_under_burst_outages() {
            assert_lockstep_resilient(
                tiny(),
                faulty(FaultMode::Burst { period: 3, len: 1 }, FaultScope::All),
            );
        }

        #[test]
        fn matches_under_total_repair_outage() {
            // 100% repair failure exercises RetryMonitor and the
            // forced-disable fail-safe in both implementations.
            assert_lockstep_resilient(
                tiny(),
                faulty(
                    FaultMode::FixedRate { per_mille: 1000 },
                    FaultScope::RepairOnly,
                ),
            );
        }

        #[test]
        fn matches_under_targeted_branch_outage() {
            assert_lockstep_resilient(
                tiny(),
                faulty(FaultMode::TargetedBranch { branch: 0 }, FaultScope::All),
            );
        }

        #[test]
        fn matches_with_storm_breaker_and_mass_eviction() {
            let config = ResilienceConfig {
                deployer: DeployerSpec::Instant,
                retry: RetryPolicy::default_policy(),
                breaker: Some(BreakerConfig {
                    bucket_events: 8,
                    buckets: 2,
                    open_threshold: 0.1,
                    close_threshold: 0.05,
                    cooldown_events: 16,
                    probe_events: 8,
                    mass_evict_top_k: 2,
                }),
            };
            assert_lockstep_resilient(tiny(), config);
        }

        #[test]
        fn matches_with_faults_and_breaker_combined() {
            let config = ResilienceConfig {
                deployer: DeployerSpec::Faulty(FaultSpec {
                    seed: 5,
                    mode: FaultMode::FixedRate { per_mille: 300 },
                    scope: FaultScope::All,
                    wasted: 12,
                }),
                retry: RetryPolicy {
                    max_attempts: 4,
                    base_backoff: 10,
                    max_backoff: 40,
                },
                breaker: Some(BreakerConfig {
                    bucket_events: 8,
                    buckets: 2,
                    open_threshold: 0.1,
                    close_threshold: 0.05,
                    cooldown_events: 16,
                    probe_events: 8,
                    mass_evict_top_k: 1,
                }),
            };
            assert_lockstep_resilient(tiny(), config);
            assert_lockstep_resilient(tiny().with_latency(40), config);
        }
    }

    #[test]
    fn untouched_branch_reports_fresh_snapshot() {
        let golden = ReferenceController::new(tiny()).unwrap();
        assert_eq!(
            golden.branch_snapshot(BranchId::new(99)),
            BranchSnapshot::untouched()
        );
    }

    #[test]
    fn flush_matches_optimized_flush() {
        let params = tiny();
        let mut golden = ReferenceController::new(params).unwrap();
        let mut fast = ReactiveController::builder(params).build().unwrap();
        let stream = lifecycle_stream();
        let (head, tail) = stream.split_at(stream.len() / 2);
        for r in head {
            golden.observe(r);
            fast.observe(r);
        }
        golden.flush_all();
        fast.flush_all();
        for r in tail {
            assert_eq!(golden.observe(r), fast.observe(r));
        }
        assert_eq!(golden.stats(), fast.stats());
        for b in 0..3u32 {
            assert_eq!(
                golden.branch_snapshot(BranchId::new(b)),
                fast.branch_snapshot(BranchId::new(b))
            );
        }
    }

    #[test]
    fn transition_counts_match_log() {
        let mut golden = ReferenceController::new(tiny()).unwrap();
        for r in lifecycle_stream() {
            golden.observe(&r);
        }
        let total: u64 = TransitionKind::ALL
            .iter()
            .map(|&k| golden.transition_count(k))
            .sum();
        assert_eq!(total, golden.transitions().len() as u64);
        assert!(golden.transition_count(TransitionKind::EnterBiased) > 0);
    }

    #[test]
    fn rejects_invalid_params() {
        let mut p = tiny();
        p.monitor_period = 0;
        assert!(ReferenceController::new(p).is_err());
    }
}
