//! Wilson-score confidence bounds for bias estimation.
//!
//! The paper's monitor uses a fixed window ("a moderately long monitoring
//! period as a simple filter"). A statistically principled alternative
//! classifies as soon as the evidence suffices: select when the *lower*
//! confidence bound of the bias exceeds the threshold, reject when the
//! *upper* bound falls below it. Clearly biased branches classify in tens
//! of executions instead of thousands; borderline branches automatically
//! get longer windows.

/// Wilson score interval for a Bernoulli proportion.
///
/// Returns `(lower, upper)` bounds for the true success probability given
/// `successes` out of `n` trials at the given `z` value (1.96 ≈ 95%,
/// 2.58 ≈ 99%, 3.29 ≈ 99.9%).
///
/// # Panics
///
/// Panics if `successes > n` or `z` is not positive and finite.
///
/// # Examples
///
/// ```
/// use rsc_control::confidence::wilson_bounds;
/// let (lo, hi) = wilson_bounds(99, 100, 2.58);
/// assert!(lo > 0.9 && hi < 1.0);
/// ```
pub fn wilson_bounds(successes: u64, n: u64, z: f64) -> (f64, f64) {
    assert!(successes <= n, "successes cannot exceed trials");
    assert!(z.is_finite() && z > 0.0, "z must be positive and finite");
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((center - margin) / denom).max(0.0),
        ((center + margin) / denom).min(1.0),
    )
}

/// An incremental classifier: feed Bernoulli outcomes, and it reports
/// whether the majority-direction bias is confidently above or below a
/// target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasClassifier {
    taken: u64,
    n: u64,
    target: f64,
    z: f64,
}

/// What the classifier can conclude so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasVerdict {
    /// The majority-direction bias confidently meets the target.
    Biased,
    /// The bias is confidently below the target.
    NotBiased,
    /// More evidence is needed.
    Undecided,
}

impl BiasClassifier {
    /// Creates a classifier for the given bias `target` and `z` value.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0.5, 1.0]` or `z` is invalid.
    pub fn new(target: f64, z: f64) -> Self {
        assert!(
            target > 0.5 && target <= 1.0,
            "target must be in (0.5, 1.0], got {target}"
        );
        assert!(z.is_finite() && z > 0.0, "z must be positive and finite");
        BiasClassifier {
            taken: 0,
            n: 0,
            target,
            z,
        }
    }

    /// Records one outcome.
    pub fn record(&mut self, taken: bool) {
        self.taken += u64::from(taken);
        self.n += 1;
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Taken count recorded so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Returns the current verdict on the *majority direction's* bias.
    pub fn verdict(&self) -> BiasVerdict {
        if self.n == 0 {
            return BiasVerdict::Undecided;
        }
        let majority = self.taken.max(self.n - self.taken);
        let (lo, hi) = wilson_bounds(majority, self.n, self.z);
        if lo >= self.target {
            BiasVerdict::Biased
        } else if hi < self.target {
            BiasVerdict::NotBiased
        } else {
            BiasVerdict::Undecided
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_bracket_the_point_estimate() {
        for &(s, n) in &[(0u64, 10u64), (5, 10), (10, 10), (990, 1000)] {
            let (lo, hi) = wilson_bounds(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12, "lo {lo} > p {p}");
            assert!(hi >= p - 1e-12, "hi {hi} < p {p}");
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn bounds_tighten_with_evidence() {
        let (lo1, hi1) = wilson_bounds(9, 10, 1.96);
        let (lo2, hi2) = wilson_bounds(900, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn empty_sample_is_vacuous() {
        assert_eq!(wilson_bounds(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed trials")]
    fn rejects_impossible_counts() {
        wilson_bounds(11, 10, 1.96);
    }

    #[test]
    fn classifier_decides_perfect_bias_quickly() {
        let mut c = BiasClassifier::new(0.95, 2.58);
        let mut decided_at = None;
        for i in 0..10_000 {
            c.record(true);
            if c.verdict() == BiasVerdict::Biased {
                decided_at = Some(i + 1);
                break;
            }
        }
        let at = decided_at.expect("must classify");
        assert!(at < 300, "took {at} samples");
    }

    #[test]
    fn classifier_rejects_coin_quickly() {
        let mut c = BiasClassifier::new(0.995, 2.58);
        let mut decided_at = None;
        for i in 0..10_000u64 {
            c.record(i % 2 == 0);
            if c.verdict() == BiasVerdict::NotBiased {
                decided_at = Some(i + 1);
                break;
            }
        }
        let at = decided_at.expect("must reject");
        assert!(at < 200, "took {at} samples");
    }

    #[test]
    fn classifier_stays_undecided_near_the_boundary() {
        // True bias exactly at the target: neither bound should clear it
        // quickly.
        let mut c = BiasClassifier::new(0.9, 2.58);
        for i in 0..50u64 {
            c.record(i % 10 != 0); // 90% taken
        }
        assert_eq!(c.verdict(), BiasVerdict::Undecided);
    }

    #[test]
    fn classifier_uses_majority_direction() {
        let mut c = BiasClassifier::new(0.95, 2.58);
        for _ in 0..500 {
            c.record(false);
        }
        assert_eq!(
            c.verdict(),
            BiasVerdict::Biased,
            "not-taken bias counts too"
        );
    }
}
