//! # rsc-control — reactive speculation control
//!
//! The core contribution of *Reactive Techniques for Controlling Software
//! Speculation* (Zilles & Neelakantam, CGO 2005): a simple three-state
//! model — monitor, biased, unbiased — that keeps aggressive software
//! speculation robust by *re-classifying* branches when their behavior
//! changes.
//!
//! The two arcs that separate this model from one-shot profile-guided
//! selection are:
//!
//! * **eviction** (biased → monitor): an asymmetric saturating counter
//!   (+50 on a misspeculation, −1 otherwise, evict at 10,000) detects
//!   branches whose bias has degraded and requests repair;
//! * **revisit** (unbiased → monitor): after a long wait period, rejected
//!   branches get another chance, harvesting late-developing bias.
//!
//! Everything else — thresholds, sampling, latency — is a second-order
//! knob, which this crate's sensitivity presets let you verify.
//!
//! ## Quick start
//!
//! ```
//! use rsc_control::{engine, ControllerParams};
//! use rsc_trace::{spec2000, InputId};
//!
//! let pop = spec2000::benchmark("gcc").unwrap().population(200_000);
//! let closed = engine::run_population(
//!     ControllerParams::scaled(),
//!     &pop, InputId::Eval, 200_000, 7,
//! )?;
//! let open = engine::run_population(
//!     ControllerParams::scaled().without_eviction(),
//!     &pop, InputId::Eval, 200_000, 7,
//! )?;
//! // The open-loop controller misspeculates far more.
//! assert!(open.stats.incorrect >= closed.stats.incorrect);
//! # Ok::<(), rsc_control::InvalidParamsError>(())
//! ```
//!
//! ## Construction and observability
//!
//! Controllers are assembled through one builder —
//! [`ReactiveController::builder`] — which also attaches the optional
//! observability layer (a [`observe::MetricsRegistry`] and/or an
//! [`observe::EventSink`]) and selects the control [`policy::Policy`]
//! (the paper's FSM is [`policy::PaperFsm`], the default, one of a small
//! zoo of competing implementations); see [`ControllerBuilder`] for the
//! migration table from the removed legacy constructors. The [`prelude`]
//! re-exports the types a typical consumer needs.

#![warn(deprecated)]

pub mod analysis;
pub mod builder;
pub mod checkpoint;
pub mod confidence;
pub mod controller;
pub mod counter;
pub mod engine;
pub mod observe;
pub mod params;
pub mod policy;
pub mod reference;
pub mod resilience;
pub mod shard;
pub mod stats;
pub mod translog;

pub use builder::ControllerBuilder;
pub use checkpoint::{CheckpointError, ControllerCheckpoint};
pub use controller::{
    BranchSnapshot, BranchStateView, ChunkSummary, EvictTracker, ReactiveController, SpecDecision,
    TrackerView, TransitionEvent, TransitionKind,
};
pub use engine::{
    run_population, run_population_chunked, run_population_chunked_with, run_trace, run_trace_with,
    RunResult,
};
pub use observe::{EventSink, JsonlSink, MetricsRegistry, NullSink, ObsEvent, VecSink};
pub use params::{ControllerParams, EvictionMode, InvalidParamsError, MonitorPolicy, Revisit};
pub use policy::{
    builtin_policy, policy_from_blob, AdaptiveHysteresis, CostAware, MonitorCounts, PaperFsm,
    Perceptron, Policy, SpecChoice, BUILTIN_POLICY_IDS,
};
pub use reference::ReferenceController;
pub use resilience::ResilienceConfig;
pub use shard::ShardedController;
pub use stats::ControlStats;
pub use translog::{TransitionLog, TransitionLogPolicy};

/// One-stop imports for assembling and observing controllers.
///
/// ```
/// use rsc_control::prelude::*;
///
/// let ctl = ReactiveController::builder(ControllerParams::scaled()).build()?;
/// assert!(ctl.metrics().is_none());
/// # Ok::<(), InvalidParamsError>(())
/// ```
pub mod prelude {
    pub use crate::builder::ControllerBuilder;
    pub use crate::controller::{
        ChunkSummary, EvictTracker, ReactiveController, SpecDecision, TransitionEvent,
        TransitionKind,
    };
    pub use crate::observe::{EventSink, JsonlSink, MetricsRegistry, NullSink, ObsEvent, VecSink};
    pub use crate::params::{ControllerParams, InvalidParamsError};
    pub use crate::policy::{
        AdaptiveHysteresis, CostAware, MonitorCounts, PaperFsm, Perceptron, Policy, SpecChoice,
    };
    pub use crate::resilience::ResilienceConfig;
    pub use crate::shard::ShardedController;
    pub use crate::stats::ControlStats;
    pub use crate::translog::TransitionLogPolicy;
}
