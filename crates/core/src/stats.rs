//! Aggregate controller statistics (the quantities behind Tables 3 and 4).

/// Counters accumulated by a [`ReactiveController`](crate::ReactiveController)
/// run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Total dynamic branch events observed.
    pub events: u64,
    /// Total dynamic instructions observed.
    pub instructions: u64,
    /// Dynamic branches speculated correctly.
    pub correct: u64,
    /// Dynamic branches misspeculated.
    pub incorrect: u64,
    /// Static branches that executed at least once (Table 3 "touch").
    pub touched: usize,
    /// Static branches that entered the biased state (Table 3 "bias").
    pub entered_biased: usize,
    /// Static branches evicted at least once (Table 3 "evict").
    pub evicted_branches: usize,
    /// Total evictions (Table 3 "total evicts").
    pub total_evictions: u64,
    /// Total entries into the biased state.
    pub total_entries: u64,
    /// Static branches permanently disabled by the oscillation cap.
    pub disabled_branches: usize,
    /// Re-optimization requests issued (entries plus evictions).
    pub reopt_requests: u64,
    /// Deployment requests that failed (resilience layer; 0 without it).
    pub deploy_failures: u64,
    /// Deployment retries issued after failures (resilience layer).
    pub deploy_retries: u64,
    /// Branches force-disabled because repair retries ran out
    /// (resilience layer).
    pub forced_disables: u64,
    /// `EnterBiased` decisions suppressed by an open storm breaker
    /// (resilience layer).
    pub suppressed_enters: u64,
}

impl ControlStats {
    /// Fraction of dynamic branches speculated correctly (Table 3
    /// "% spec.", Table 4 "correct").
    pub fn correct_frac(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.correct as f64 / self.events as f64
        }
    }

    /// Fraction of dynamic branches misspeculated (Table 4 "incorrect").
    pub fn incorrect_frac(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.incorrect as f64 / self.events as f64
        }
    }

    /// Average instructions between misspeculations (Table 3 "misspec
    /// dist."), or `None` if there were none.
    pub fn misspec_distance(&self) -> Option<u64> {
        self.instructions.checked_div(self.incorrect)
    }

    /// Fraction of touched branches that entered the biased state (the
    /// paper reports 34% on average).
    pub fn biased_frac(&self) -> f64 {
        if self.touched == 0 {
            0.0
        } else {
            self.entered_biased as f64 / self.touched as f64
        }
    }

    /// Fraction of touched branches that were evicted (the paper reports
    /// about 2% on average).
    pub fn evicted_frac(&self) -> f64 {
        if self.touched == 0 {
            0.0
        } else {
            self.evicted_branches as f64 / self.touched as f64
        }
    }

    /// Average evictions per evicted branch (the paper reports ~1.6).
    pub fn evictions_per_evicted_branch(&self) -> f64 {
        if self.evicted_branches == 0 {
            0.0
        } else {
            self.total_evictions as f64 / self.evicted_branches as f64
        }
    }

    /// Sums per-benchmark stats into campaign totals.
    pub fn accumulate(&mut self, other: &ControlStats) {
        self.events += other.events;
        self.instructions += other.instructions;
        self.correct += other.correct;
        self.incorrect += other.incorrect;
        self.touched += other.touched;
        self.entered_biased += other.entered_biased;
        self.evicted_branches += other.evicted_branches;
        self.total_evictions += other.total_evictions;
        self.total_entries += other.total_entries;
        self.disabled_branches += other.disabled_branches;
        self.reopt_requests += other.reopt_requests;
        self.deploy_failures += other.deploy_failures;
        self.deploy_retries += other.deploy_retries;
        self.forced_disables += other.forced_disables;
        self.suppressed_enters += other.suppressed_enters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ControlStats {
        ControlStats {
            events: 1000,
            instructions: 6500,
            correct: 448,
            incorrect: 2,
            touched: 100,
            entered_biased: 34,
            evicted_branches: 2,
            total_evictions: 3,
            total_entries: 37,
            disabled_branches: 1,
            reopt_requests: 40,
            deploy_failures: 4,
            deploy_retries: 3,
            forced_disables: 1,
            suppressed_enters: 2,
        }
    }

    #[test]
    fn fractions() {
        let s = sample();
        assert!((s.correct_frac() - 0.448).abs() < 1e-12);
        assert!((s.incorrect_frac() - 0.002).abs() < 1e-12);
        assert!((s.biased_frac() - 0.34).abs() < 1e-12);
        assert!((s.evicted_frac() - 0.02).abs() < 1e-12);
        assert!((s.evictions_per_evicted_branch() - 1.5).abs() < 1e-12);
        assert_eq!(s.misspec_distance(), Some(3250));
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = ControlStats::default();
        assert_eq!(s.correct_frac(), 0.0);
        assert_eq!(s.incorrect_frac(), 0.0);
        assert_eq!(s.biased_frac(), 0.0);
        assert_eq!(s.evicted_frac(), 0.0);
        assert_eq!(s.evictions_per_evicted_branch(), 0.0);
        assert_eq!(s.misspec_distance(), None);
    }

    #[test]
    fn accumulate_adds_all_fields() {
        let mut a = sample();
        a.accumulate(&sample());
        assert_eq!(a.events, 2000);
        assert_eq!(a.correct, 896);
        assert_eq!(a.touched, 200);
        assert_eq!(a.reopt_requests, 80);
    }
}
