//! [`ShardedController`]: a parallel controller engine that partitions
//! branches across N worker shards and merges their results
//! deterministically.
//!
//! The paper's FSM is *per-branch*: the decision for branch `b` reads
//! only `b`'s own counters and the record's instruction count, never
//! another branch's state. That makes control embarrassingly
//! partitionable — route every record for the same branch to the same
//! shard (preserving its per-branch event order) and each shard's FSM
//! evolves exactly as it would in a sequential run. The engine then
//! merges [`ControlStats`], [`ChunkSummary`], per-kind transition
//! counts, and metrics histograms with **order-independent reductions
//! only** (sums, maxes, bucket-wise adds), so every merged quantity is
//! independent of thread count and scheduling:
//!
//! * identical to a sequential [`ReactiveController`] run: chunk
//!   summaries, stats (with `instructions` as a high-water max), per-kind
//!   transition counts, per-branch snapshots, metric counters and gauges;
//! * **per-shard** semantics (documented, not merged back to global):
//!   the ordered transition log (`event_index` is a shard-local ordinal)
//!   and the interval-style histograms (misspeculation intervals and
//!   residencies are measured in shard-local event time).
//!
//! # Engine architecture: persistent pool + single-pass grouped routing
//!
//! `observe_chunk` splits the chunk into cache-sized blocks and, per
//! block, routes **once** on the caller side — a stable counting sort
//! that groups each shard's records *by branch* into an SoA layout
//! (`(branch, len)` run headers over parallel `taken`/`offs` arrays —
//! 3 scattered bytes per event, with `offs` pointing back into the
//! original block for the rare slow-path arms).
//! Each shard then consumes whole runs via
//! [`ReactiveController::observe_routed`], which keeps one branch's FSM
//! state in registers for an entire run instead of re-loading it per
//! event. Because all compared quantities are order-independent (see
//! above) and per-branch order is preserved, grouping is contractually
//! invisible — and it is the engine's main speed win on top of
//! parallelism.
//!
//! Worker threads are *persistent*: built once by the builder, each
//! owning a contiguous range of shard controllers for its whole life
//! (`WorkerPool`), fed borrowed route buffers per block and joined by a
//! completion barrier. Two route buffers alternate so the caller routes
//! block `i+1` while the workers observe block `i`:
//!
//! ```text
//!  caller:   route(b0→A) | dispatch(A), route(b1→B) | dispatch(B), route(b2→A) | …
//!  workers:               |  observe A               |  observe B               | …
//! ```
//!
//! The pool honors the global [`max_threads`] cap at build time
//! (`pool size = min(shards, cap)`); with a cap of 1 the engine runs the
//! same routing + grouped observation inline with no threads at all, so
//! results are bit-identical across every pool size by construction.
//!
//! Construction goes through the one builder:
//!
//! ```
//! use rsc_control::prelude::*;
//! use rsc_trace::{spec2000, InputId};
//!
//! let pop = spec2000::benchmark("gzip").unwrap().population(20_000);
//! let mut seq = ReactiveController::builder(ControllerParams::scaled()).build()?;
//! let mut shd = ReactiveController::builder(ControllerParams::scaled())
//!     .shards(4)
//!     .build_sharded()?;
//! let records: Vec<_> = pop.trace(InputId::Eval, 20_000, 1).collect();
//! let mut expect = ChunkSummary::default();
//! for r in &records {
//!     let d = seq.observe(r);
//!     expect.events += 1;
//!     expect.speculated += u64::from(d.speculated());
//!     expect.correct += u64::from(d == SpecDecision::Correct);
//!     expect.incorrect += u64::from(d == SpecDecision::Incorrect);
//! }
//! assert_eq!(shd.observe_chunk(&records), expect);
//! assert_eq!(shd.stats(), seq.stats());
//! # Ok::<(), InvalidParamsError>(())
//! ```

use crate::controller::{
    BranchSnapshot, ChunkSummary, ReactiveController, SpecDecision, TransitionKind,
};
use crate::observe::{ControllerMetrics, MetricsRegistry};
use crate::params::ControllerParams;
use crate::stats::ControlStats;
use rsc_trace::{BranchId, BranchRecord};
use rsc_util::parallel::WorkerPool;
use std::ops::Range;
use std::sync::Mutex;

/// Routing/observation block size. Small enough that one block's SoA
/// payload (`taken` + `offs` + run headers) stays cache-resident while
/// it is scattered and then immediately consumed; large enough to
/// amortize the per-block branch-table passes. Also the hard ceiling
/// for the router's `u16` fields: block-local offsets and per-branch
/// counts both top out at 65535.
const BLOCK: usize = u16::MAX as usize;

/// Stable shard routing: a splitmix64-style finalizer over the branch
/// index, reduced modulo the shard count. Seed-free and
/// version-independent, so checkpoints and artifacts route identically
/// across builds.
#[inline]
pub(crate) fn shard_of(branch: BranchId, shards: usize) -> usize {
    let mut x = branch.index() as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

#[inline]
fn add_summary(total: &mut ChunkSummary, s: ChunkSummary) {
    total.events += s.events;
    total.speculated += s.speculated;
    total.correct += s.correct;
    total.incorrect += s.incorrect;
}

/// One routed block in SoA layout, shard-major then branch-grouped:
/// `runs` holds `(branch_index, len)` headers; `taken` the per-event
/// outcomes and `offs` each event's index back into the original block
/// (so rare slow-path arms can re-read the full record — only 3 bytes
/// per event are scattered on the hot path). `shard_runs` / `shard_data`
/// delimit each shard's slice of the arrays, and `max_instr` carries the
/// block's instruction high-water mark (computed during counting, so
/// observation never has to re-scan `instr` values). All buffers are
/// reused across blocks — lengths (not capacities) define validity, so
/// no stale data from an earlier, larger block can leak.
#[derive(Debug, Clone, Default)]
struct RouteBuf {
    runs: Vec<(u32, u32)>,
    taken: Vec<u8>,
    offs: Vec<u16>,
    shard_runs: Vec<(u32, u32)>,
    shard_data: Vec<(u32, u32)>,
    max_instr: u64,
}

/// Reusable routing scratch: the per-branch count/cursor table, the
/// cached branch→shard map, and per-shard sizing accumulators. One
/// instance per engine; grows monotonically with the branch table.
#[derive(Debug, Clone, Default)]
struct RouteScratch {
    /// Per-branch event count, converted in place to the scatter cursor
    /// by the layout pass. One `u16` array: both roles fit because a
    /// block holds at most [`BLOCK`] = 65535 events. Always all-zero
    /// between [`route`](Self::route) calls.
    table: Vec<u16>,
    shard_cache: Vec<u32>,
    run_cursor: Vec<u32>,
    data_cursor: Vec<u32>,
}

impl RouteScratch {
    /// Ensures the table and shard cache cover branch index `b`.
    #[cold]
    fn grow(&mut self, b: usize, n: usize) {
        let old = self.shard_cache.len();
        self.shard_cache.resize(b + 1, 0);
        self.table.resize(b + 1, 0);
        for g in old..=b {
            self.shard_cache[g] = shard_of(BranchId::new(g as u32), n) as u32;
        }
    }

    /// Routes one block into `buf`: a single O(block) counting pass, two
    /// O(table) sizing/layout passes, and a single O(block) SoA scatter.
    /// Stable per branch, so per-branch event order is preserved exactly.
    ///
    /// These two per-event loops are the engine's routing overhead in
    /// its entirety, and they are instruction-bound, not bandwidth-bound
    /// — hence the unchecked indexing, with every index bounded by
    /// construction (see the inline safety notes).
    fn route(&mut self, records: &[BranchRecord], n: usize, buf: &mut RouteBuf) {
        // Hard cap, not just a debug assert: the u16 counts, cursors,
        // and offsets below all rely on it.
        assert!(records.len() <= BLOCK, "route blocks are capped at 65535");
        buf.shard_runs.clear();
        buf.shard_runs.resize(n, (0, 0));
        buf.shard_data.clear();
        buf.shard_data.resize(n, (0, 0));
        buf.runs.clear();
        buf.taken.clear();
        buf.offs.clear();
        buf.max_instr = 0;
        if records.is_empty() {
            return;
        }
        // Counting pass; the instruction high-water mark falls out for
        // free, so the observe side never reads `instr` on its hot path.
        let mut max_instr = 0u64;
        for r in records {
            let b = r.branch.index();
            max_instr = max_instr.max(r.instr);
            if b >= self.table.len() {
                self.grow(b, n);
            }
            // SAFETY: `grow` above guarantees `b < table.len()`; counts
            // cannot overflow u16 because the block holds ≤ 65535 events.
            unsafe { *self.table.get_unchecked_mut(b) += 1 };
        }
        buf.max_instr = max_instr;
        // Sizing pass over the whole table (bounded by the branch-index
        // high-water mark across the engine's lifetime; entries outside
        // this block are zero and skipped).
        self.run_cursor.clear();
        self.run_cursor.resize(n, 0);
        self.data_cursor.clear();
        self.data_cursor.resize(n, 0);
        for b in 0..self.table.len() {
            let c = self.table[b];
            if c > 0 {
                let k = self.shard_cache[b] as usize;
                self.run_cursor[k] += 1;
                self.data_cursor[k] += u32::from(c);
            }
        }
        let mut runs_total = 0u32;
        let mut data_total = 0u32;
        for k in 0..n {
            let rc = self.run_cursor[k];
            let dc = self.data_cursor[k];
            buf.shard_runs[k] = (runs_total, runs_total + rc);
            buf.shard_data[k] = (data_total, data_total + dc);
            self.run_cursor[k] = runs_total;
            self.data_cursor[k] = data_total;
            runs_total += rc;
            data_total += dc;
        }
        buf.runs.resize(runs_total as usize, (0, 0));
        buf.taken.resize(data_total as usize, 0);
        buf.offs.resize(data_total as usize, 0);
        // Layout: run headers in (shard, ascending branch) order — so
        // each shard walks its branch table sequentially — while the
        // count table becomes the scatter cursor in place.
        for b in 0..self.table.len() {
            let c = self.table[b];
            if c > 0 {
                let k = self.shard_cache[b] as usize;
                buf.runs[self.run_cursor[k] as usize] = (b as u32, u32::from(c));
                self.run_cursor[k] += 1;
                self.table[b] = self.data_cursor[k] as u16;
                self.data_cursor[k] += u32::from(c);
            }
        }
        // The hot pass: one stable scatter of 3 bytes per event.
        for (j, r) in records.iter().enumerate() {
            let b = r.branch.index();
            // SAFETY: `b < table.len()` (counting pass grew the table);
            // each branch's cursor starts at its run's data offset and is
            // incremented once per event of that branch, so it stays
            // below `data_total`, the exact length of `taken`/`offs`.
            unsafe {
                let c = self.table.get_unchecked_mut(b);
                let pos = usize::from(*c);
                *c += 1;
                *buf.taken.get_unchecked_mut(pos) = u8::from(r.taken);
                *buf.offs.get_unchecked_mut(pos) = j as u16;
            }
        }
        // Restore the all-zero invariant for the next block. A plain
        // memset of the whole table: ~16 KiB per 64 Ki events.
        self.table.fill(0);
    }
}

/// Observes one routed buffer's slice for worker `w` (owning the shard
/// range `shards`), returning the summed summary over those shards.
fn observe_buf(
    ctls: &mut [ReactiveController],
    shards: Range<usize>,
    records: &[BranchRecord],
    buf: &RouteBuf,
) -> ChunkSummary {
    let mut sum = ChunkSummary::default();
    for (slot, k) in shards.enumerate() {
        let (rs, re) = buf.shard_runs[k];
        let (ds, de) = buf.shard_data[k];
        let s = ctls[slot].observe_routed(
            &buf.runs[rs as usize..re as usize],
            &buf.taken[ds as usize..de as usize],
            &buf.offs[ds as usize..de as usize],
            records,
            buf.max_instr,
        );
        add_summary(&mut sum, s);
    }
    sum
}

/// The execution engine behind a [`ShardedController`].
enum Engine {
    /// No threads: every shard lives on the caller and observes routed
    /// blocks inline. Used for one shard, a thread cap of 1, or as the
    /// fallback when worker threads cannot be spawned.
    Inline { slots: Vec<ReactiveController> },
    /// Persistent worker pool: each worker owns a contiguous range of
    /// shard controllers for its whole life. The `Mutex` only serializes
    /// `&self` queries; `observe_chunk` goes through `get_mut`.
    Pooled {
        pool: Mutex<WorkerPool<Vec<ReactiveController>>>,
        /// Worker → contiguous shard range.
        assign: Vec<Range<usize>>,
        /// Shard → (worker, slot within the worker's range).
        shard_worker: Vec<(u32, u32)>,
    },
}

/// A parallel controller: N independent [`ReactiveController`] shards,
/// branches partitioned by a stable hash of [`BranchId`], results merged
/// with order-independent reductions.
///
/// Built via [`ControllerBuilder::build_sharded`](crate::ControllerBuilder::build_sharded);
/// see the [module docs](self) for the engine architecture and exactly
/// which quantities are bit-identical to a sequential run and which are
/// per-shard.
pub struct ShardedController {
    n: usize,
    params: ControllerParams,
    engine: Engine,
    scratch: RouteScratch,
    buf_a: RouteBuf,
    buf_b: RouteBuf,
}

impl ShardedController {
    /// Assembles the engine from already-built shard controllers (empty
    /// from the builder, or carrying state from a checkpoint restore).
    /// The builder guarantees they share parameters and telemetry shape.
    ///
    /// `thread_cap` bounds the worker pool: `pool size = min(shards,
    /// thread_cap)`. A cap of ≤ 1 (or one shard, where the single shard
    /// *is* the sequential controller) selects the inline engine; so
    /// does a failed thread spawn — the states are recovered and run on
    /// the caller, keeping results identical.
    pub(crate) fn from_parts(ctls: Vec<ReactiveController>, thread_cap: usize) -> Self {
        assert!(!ctls.is_empty(), "builder rejects zero shards");
        let n = ctls.len();
        let params = *ctls[0].params();
        let pool_size = thread_cap.min(n);
        let engine = if pool_size <= 1 {
            Engine::Inline { slots: ctls }
        } else {
            let assign: Vec<Range<usize>> = (0..pool_size)
                .map(|w| (w * n / pool_size)..((w + 1) * n / pool_size))
                .collect();
            let mut shard_worker = vec![(0u32, 0u32); n];
            for (w, r) in assign.iter().enumerate() {
                for (slot, k) in r.clone().enumerate() {
                    shard_worker[k] = (w as u32, slot as u32);
                }
            }
            let mut states: Vec<Vec<ReactiveController>> =
                assign.iter().map(|r| Vec::with_capacity(r.len())).collect();
            let mut it = ctls.into_iter();
            for (w, r) in assign.iter().enumerate() {
                states[w].extend(it.by_ref().take(r.len()));
            }
            match WorkerPool::new(states, "rsc-shard") {
                Ok(pool) => Engine::Pooled {
                    pool: Mutex::new(pool),
                    assign,
                    shard_worker,
                },
                Err((_, states)) => Engine::Inline {
                    slots: states.into_iter().flatten().collect(),
                },
            }
        };
        ShardedController {
            n,
            params,
            engine,
            scratch: RouteScratch::default(),
            buf_a: RouteBuf::default(),
            buf_b: RouteBuf::default(),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.n
    }

    /// Number of OS threads backing the engine: the worker-pool size, or
    /// 1 for the inline engine.
    pub fn pool_threads(&self) -> usize {
        match &self.engine {
            Engine::Inline { .. } => 1,
            Engine::Pooled { pool, .. } => pool.lock().expect("pool lock").len(),
        }
    }

    /// The shard that owns `branch` under this engine's routing.
    pub fn shard_for(&self, branch: BranchId) -> usize {
        shard_of(branch, self.n)
    }

    /// The shared controller parameters.
    pub fn params(&self) -> &ControllerParams {
        &self.params
    }

    /// Runs `f` over every shard controller in shard order and collects
    /// the results (dispatched to the owning workers under the pooled
    /// engine).
    pub(crate) fn map_shards<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &ReactiveController) -> R + Sync,
    {
        match &self.engine {
            Engine::Inline { slots } => slots.iter().enumerate().map(|(k, c)| f(k, c)).collect(),
            Engine::Pooled { pool, assign, .. } => {
                let mut pool = pool.lock().expect("pool lock");
                let per_worker: Vec<Vec<R>> = pool.map(|w, ctls| {
                    assign[w]
                        .clone()
                        .zip(ctls.iter())
                        .map(|(k, c)| f(k, c))
                        .collect()
                });
                per_worker.into_iter().flatten().collect()
            }
        }
    }

    /// Runs `f` against one shard's controller on its owning worker.
    fn with_shard<R, F>(&self, k: usize, f: F) -> R
    where
        R: Send,
        F: FnOnce(&ReactiveController) -> R + Send,
    {
        match &self.engine {
            Engine::Inline { slots } => f(&slots[k]),
            Engine::Pooled {
                pool, shard_worker, ..
            } => {
                let (w, slot) = shard_worker[k];
                pool.lock()
                    .expect("pool lock")
                    .call(w as usize, move |_, ctls| f(&ctls[slot as usize]))
            }
        }
    }

    /// Mutable counterpart of [`with_shard`](Self::with_shard).
    fn with_shard_mut<R, F>(&mut self, k: usize, f: F) -> R
    where
        R: Send,
        F: FnOnce(&mut ReactiveController) -> R + Send,
    {
        match &mut self.engine {
            Engine::Inline { slots } => f(&mut slots[k]),
            Engine::Pooled {
                pool, shard_worker, ..
            } => {
                let (w, slot) = shard_worker[k];
                pool.get_mut()
                    .expect("pool lock")
                    .call(w as usize, move |_, ctls| f(&mut ctls[slot as usize]))
            }
        }
    }

    /// Observes one event, routed to the owning shard.
    pub fn observe(&mut self, r: &BranchRecord) -> SpecDecision {
        let k = shard_of(r.branch, self.n);
        self.with_shard_mut(k, |ctl| ctl.observe(r))
    }

    /// Observes a chunk of events: routes each block of the chunk to its
    /// owning shards in one stable branch-grouping pass, observes the
    /// routed blocks (in parallel under the pooled engine, with routing
    /// of the next block overlapping observation of the current one),
    /// and returns the summed [`ChunkSummary`].
    ///
    /// The summary is bit-identical to a sequential controller's over
    /// the same chunk regardless of shard count, thread count, or
    /// scheduling: each shard's summary depends only on its own records
    /// (in preserved per-branch order), and the merge is a sum.
    pub fn observe_chunk(&mut self, records: &[BranchRecord]) -> ChunkSummary {
        let n = self.n;
        if n == 1 {
            // The single shard *is* a sequential controller; keep its
            // exact semantics (including the ordered transition log) and
            // an honest 1-shard baseline for scaling comparisons.
            return match &mut self.engine {
                Engine::Inline { slots } => slots[0].observe_chunk(records),
                Engine::Pooled { .. } => unreachable!("one shard always runs inline"),
            };
        }
        match &mut self.engine {
            Engine::Inline { slots } => {
                let mut total = ChunkSummary::default();
                for block in records.chunks(BLOCK) {
                    self.scratch.route(block, n, &mut self.buf_a);
                    add_summary(&mut total, observe_buf(slots, 0..n, block, &self.buf_a));
                }
                total
            }
            Engine::Pooled { pool, assign, .. } => {
                if records.is_empty() {
                    return ChunkSummary::default();
                }
                let pool = pool.get_mut().expect("pool lock");
                let scratch = &mut self.scratch;
                let blocks: Vec<&[BranchRecord]> = records.chunks(BLOCK).collect();
                let out: Vec<Mutex<ChunkSummary>> = (0..pool.len())
                    .map(|_| Mutex::new(ChunkSummary::default()))
                    .collect();
                let mut cur = &mut self.buf_a;
                let mut next = &mut self.buf_b;
                scratch.route(blocks[0], n, cur);
                for i in 1..=blocks.len() {
                    let cur_ref: &RouteBuf = cur;
                    let cur_blk: &[BranchRecord] = blocks[i - 1];
                    let assign_ref: &[Range<usize>] = assign;
                    let out_ref = &out;
                    pool.run_with(
                        |w, ctls| {
                            let sum = observe_buf(ctls, assign_ref[w].clone(), cur_blk, cur_ref);
                            let mut slot = out_ref[w].lock().expect("summary slot");
                            add_summary(&mut slot, sum);
                        },
                        || {
                            if i < blocks.len() {
                                scratch.route(blocks[i], n, next);
                            }
                        },
                    );
                    std::mem::swap(&mut cur, &mut next);
                }
                let mut total = ChunkSummary::default();
                for m in out {
                    add_summary(&mut total, m.into_inner().expect("summary slot"));
                }
                total
            }
        }
    }

    /// Merged aggregate statistics: every field is a sum over shards
    /// except `instructions`, which is a high-water mark of the dynamic
    /// instruction counter and therefore merges as a max.
    pub fn stats(&self) -> ControlStats {
        let mut total = ControlStats::default();
        for s in self.map_shards(|_, ctl| ctl.stats()) {
            total.events += s.events;
            total.instructions = total.instructions.max(s.instructions);
            total.correct += s.correct;
            total.incorrect += s.incorrect;
            total.touched += s.touched;
            total.entered_biased += s.entered_biased;
            total.evicted_branches += s.evicted_branches;
            total.total_evictions += s.total_evictions;
            total.total_entries += s.total_entries;
            total.disabled_branches += s.disabled_branches;
            total.reopt_requests += s.reopt_requests;
            total.deploy_failures += s.deploy_failures;
            total.deploy_retries += s.deploy_retries;
            total.forced_disables += s.forced_disables;
            total.suppressed_enters += s.suppressed_enters;
        }
        total
    }

    /// Exact transition count of `kind`, summed across shards (counts
    /// stay exact under every log policy).
    pub fn transition_count(&self, kind: TransitionKind) -> u64 {
        self.map_shards(|_, ctl| ctl.transition_log().count(kind))
            .into_iter()
            .sum()
    }

    /// Times `branch` entered the biased state (from its owning shard).
    pub fn entries(&self, branch: BranchId) -> u32 {
        self.with_shard(self.shard_for(branch), |ctl| ctl.entries(branch))
    }

    /// Times `branch` was evicted from the biased state.
    pub fn evictions(&self, branch: BranchId) -> u32 {
        self.with_shard(self.shard_for(branch), |ctl| ctl.evictions(branch))
    }

    /// Whether `branch` is currently speculated.
    pub fn is_speculating(&self, branch: BranchId) -> bool {
        self.with_shard(self.shard_for(branch), |ctl| ctl.is_speculating(branch))
    }

    /// Whether `branch` has been permanently disabled.
    pub fn is_disabled(&self, branch: BranchId) -> bool {
        self.with_shard(self.shard_for(branch), |ctl| ctl.is_disabled(branch))
    }

    /// Externally comparable snapshot of `branch`'s FSM state, identical
    /// to the sequential controller's for every branch.
    pub fn branch_snapshot(&self, branch: BranchId) -> BranchSnapshot {
        self.with_shard(self.shard_for(branch), |ctl| ctl.branch_snapshot(branch))
    }

    /// One shard's own metrics registry (shard-local view), or `None`
    /// without metrics or for an out-of-range index.
    pub fn shard_metrics(&self, shard: usize) -> Option<MetricsRegistry> {
        if shard >= self.n {
            return None;
        }
        self.with_shard(shard, |ctl| ctl.metrics())
    }

    /// The merged metrics registry, or `None` unless the engine was
    /// built with [`metrics`](crate::ControllerBuilder::metrics).
    ///
    /// Counters and gauges carry the same schema and the same values a
    /// sequential controller would report for the same input. Histograms
    /// are merged bucket-wise across shards, so their totals are exact
    /// but interval-style observations are measured in shard-local event
    /// time (see the [module docs](self)). Per-shard counter families
    /// (`rsc_shard_*_total{shard="k"}`) are appended after the standard
    /// schema.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        // One trip through the shards gathers everything the merge needs.
        let views: Vec<(Option<ControllerMetrics>, ControlStats, Vec<u64>)> =
            self.map_shards(|_, ctl| {
                (
                    ctl.telemetry.as_ref().and_then(|t| t.metrics.clone()),
                    ctl.stats(),
                    TransitionKind::ALL
                        .iter()
                        .map(|&kind| ctl.transition_log().count(kind))
                        .collect(),
                )
            });
        let first = views[0].0.as_ref()?;
        let bounds = first.interval_bounds().to_vec();
        let cm = ControllerMetrics::with_interval_bounds(&bounds)
            .expect("bounds were validated at build time");
        let mut reg = cm.registry.clone();
        let ids = &cm.ids;
        for (scm, _, _) in &views {
            let scm = scm.as_ref()?;
            for (agg, shard) in cm
                .histograms_in_order()
                .iter()
                .zip(scm.histograms_in_order())
            {
                reg.histogram_mut(*agg)
                    .merge_from(scm.registry.histogram_ref(shard));
            }
        }
        let s = self.stats();
        reg.set_counter(ids.events, s.events);
        reg.set_counter(ids.instructions, s.instructions);
        reg.set_counter(ids.correct, s.correct);
        reg.set_counter(ids.incorrect, s.incorrect);
        for kind in TransitionKind::ALL {
            let total: u64 = views.iter().map(|(_, _, c)| c[kind.index()]).sum();
            reg.set_counter(ids.transitions[kind.index()], total);
        }
        // Sharding rejects the resilience layer, so deployment is
        // implicit: one deployment per re-optimization request.
        reg.set_counter(ids.deploy_requests, s.reopt_requests);
        reg.set_counter(ids.deploy_failures, s.deploy_failures);
        reg.set_counter(ids.deploy_retries, s.deploy_retries);
        reg.set_counter(ids.forced_disables, s.forced_disables);
        reg.set_counter(ids.suppressed_enters, s.suppressed_enters);
        reg.set_gauge(ids.branches_tracked, s.touched as f64);
        reg.set_gauge(ids.branches_disabled, s.disabled_branches as f64);
        for (k, (_, ss, counts)) in views.iter().enumerate() {
            let label = k.to_string();
            let id = reg.counter_labeled(
                "rsc_shard_events_total",
                "shard",
                &label,
                "dynamic branch events observed, per shard",
            );
            reg.set_counter(id, ss.events);
            let id = reg.counter_labeled(
                "rsc_shard_spec_incorrect_total",
                "shard",
                &label,
                "misspeculations, per shard",
            );
            reg.set_counter(id, ss.incorrect);
            let id = reg.counter_labeled(
                "rsc_shard_transitions_total",
                "shard",
                &label,
                "classification transitions of every kind, per shard",
            );
            reg.set_counter(id, counts.iter().sum());
        }
        Some(reg)
    }
}

impl Clone for ShardedController {
    /// Clones the full engine state: every shard controller is copied
    /// out of its worker and a fresh pool (same size) is spun up for the
    /// clone.
    fn clone(&self) -> Self {
        let ctls = self.map_shards(|_, ctl| ctl.clone());
        ShardedController::from_parts(ctls, self.pool_threads())
    }
}

impl std::fmt::Debug for ShardedController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedController")
            .field("shards", &self.n)
            .field(
                "engine",
                &match &self.engine {
                    Engine::Inline { .. } => "inline",
                    Engine::Pooled { .. } => "pooled",
                },
            )
            .field("pool_threads", &self.pool_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EvictionMode;
    use crate::translog::TransitionLogPolicy;
    use crate::ReactiveController;

    fn tiny() -> ControllerParams {
        let mut p = ControllerParams::scaled()
            .with_monitor_period(10)
            .with_latency(0);
        p.eviction = EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 100,
        };
        p.revisit = crate::params::Revisit::After(20);
        p
    }

    fn oscillating(branches: u32, flip: u64, events: u64) -> Vec<BranchRecord> {
        let mut out = Vec::with_capacity(events as usize);
        let mut execs = vec![0u64; branches as usize];
        for i in 0..events {
            let b = (i % u64::from(branches)) as usize;
            let n = execs[b];
            execs[b] += 1;
            out.push(BranchRecord {
                branch: BranchId::new(b as u32),
                taken: (n / flip).is_multiple_of(2),
                instr: 3 * i + 1,
            });
        }
        out
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for n in 1..=8 {
            for b in 0..1000u32 {
                let k = shard_of(BranchId::new(b), n);
                assert!(k < n);
                assert_eq!(k, shard_of(BranchId::new(b), n));
            }
        }
        // The hash actually spreads consecutive indices around.
        let hits: std::collections::BTreeSet<usize> =
            (0..64u32).map(|b| shard_of(BranchId::new(b), 8)).collect();
        assert!(hits.len() > 1, "all branches landed on one shard");
    }

    #[test]
    fn sharded_matches_sequential_across_shard_counts() {
        let trace = oscillating(7, 9, 6_000);
        let mut seq = ReactiveController::builder(tiny()).build().unwrap();
        let mut seq_total = ChunkSummary::default();
        for window in trace.chunks(257) {
            let s = seq.observe_chunk(window);
            seq_total.events += s.events;
            seq_total.speculated += s.speculated;
            seq_total.correct += s.correct;
            seq_total.incorrect += s.incorrect;
        }
        for n in 1..=8 {
            let mut shd = ReactiveController::builder(tiny())
                .shards(n)
                .build_sharded()
                .unwrap();
            let mut total = ChunkSummary::default();
            for window in trace.chunks(257) {
                let s = shd.observe_chunk(window);
                total.events += s.events;
                total.speculated += s.speculated;
                total.correct += s.correct;
                total.incorrect += s.incorrect;
            }
            assert_eq!(total, seq_total, "{n} shards: summed summaries");
            assert_eq!(shd.stats(), seq.stats(), "{n} shards: stats");
            for kind in TransitionKind::ALL {
                assert_eq!(
                    shd.transition_count(kind),
                    seq.transition_log().count(kind),
                    "{n} shards: {kind:?}"
                );
            }
            for b in 0..7u32 {
                let id = BranchId::new(b);
                assert_eq!(
                    shd.branch_snapshot(id),
                    seq.branch_snapshot(id),
                    "{n} shards: branch {b}"
                );
            }
        }
    }

    #[test]
    fn per_event_and_chunked_sharded_agree() {
        let trace = oscillating(5, 7, 3_000);
        let mut by_event = ReactiveController::builder(tiny())
            .shards(3)
            .build_sharded()
            .unwrap();
        let mut by_chunk = ReactiveController::builder(tiny())
            .shards(3)
            .build_sharded()
            .unwrap();
        for r in &trace {
            by_event.observe(r);
        }
        by_chunk.observe_chunk(&trace);
        assert_eq!(by_event.stats(), by_chunk.stats());
    }

    #[test]
    fn one_thread_fast_path_matches_parallel_path() {
        let trace = oscillating(9, 11, 8_000);
        let run = |cap: usize| {
            rsc_util::parallel::set_max_threads(cap);
            let mut ctl = ReactiveController::builder(tiny())
                .shards(5)
                .build_sharded()
                .unwrap();
            rsc_util::parallel::set_max_threads(0);
            let mut summaries = Vec::new();
            for chunk in trace.chunks(313) {
                summaries.push(ctl.observe_chunk(chunk));
            }
            let snapshots: Vec<BranchSnapshot> = (0..9)
                .map(|b| ctl.branch_snapshot(BranchId::new(b)))
                .collect();
            (summaries, ctl.stats(), snapshots)
        };
        let capped = run(1);
        let pooled = run(4);
        assert_eq!(capped, pooled);
    }

    #[test]
    fn pool_size_honors_thread_cap_and_shard_count() {
        let build = |cap: usize, shards: usize| {
            rsc_util::parallel::set_max_threads(cap);
            let ctl = ReactiveController::builder(tiny())
                .shards(shards)
                .build_sharded()
                .unwrap();
            rsc_util::parallel::set_max_threads(0);
            ctl.pool_threads()
        };
        assert_eq!(build(1, 6), 1, "cap 1 → inline engine");
        assert_eq!(build(4, 6), 4, "pool = cap when cap < shards");
        assert_eq!(build(16, 6), 6, "pool = shards when cap > shards");
        assert_eq!(build(16, 1), 1, "one shard always runs inline");
    }

    #[test]
    fn spawn_failure_falls_back_to_inline_with_identical_results() {
        let trace = oscillating(11, 9, 8_000);

        // Reference: a normal pooled build over the same trace.
        let mut pooled = ReactiveController::builder(tiny())
            .shards(4)
            .pool_threads(4)
            .log_policy(TransitionLogPolicy::CountsOnly)
            .build_sharded()
            .unwrap();
        assert_eq!(pooled.pool_threads(), 4);

        // Same build, but the very first worker spawn fails: from_parts
        // must recover every shard state and run the inline engine.
        rsc_util::parallel::fail_nth_spawn(1);
        let mut fallback = ReactiveController::builder(tiny())
            .shards(4)
            .pool_threads(4)
            .log_policy(TransitionLogPolicy::CountsOnly)
            .build_sharded()
            .unwrap();
        assert_eq!(fallback.pool_threads(), 1, "fallback engine is inline");
        assert_eq!(fallback.shard_count(), 4, "all shards recovered");

        for window in trace.chunks(257) {
            let a = pooled.observe_chunk(window);
            let b = fallback.observe_chunk(window);
            assert_eq!(a, b, "chunk summaries are bit-identical");
        }
        assert_eq!(pooled.stats(), fallback.stats());
        for b in 0..11u32 {
            let id = BranchId::new(b);
            assert_eq!(pooled.branch_snapshot(id), fallback.branch_snapshot(id));
        }
    }

    #[test]
    fn mid_way_spawn_failure_recovers_every_shard() {
        // Fail the *second* spawn: worker 0 is already live and must be
        // joined, its states reclaimed, and the remainder drained.
        rsc_util::parallel::fail_nth_spawn(2);
        let ctl = ReactiveController::builder(tiny())
            .shards(6)
            .pool_threads(3)
            .build_sharded()
            .unwrap();
        assert_eq!(ctl.pool_threads(), 1);
        assert_eq!(ctl.shard_count(), 6);
    }

    #[test]
    fn builder_pool_threads_overrides_global_cap() {
        rsc_util::parallel::set_max_threads(1);
        let ctl = ReactiveController::builder(tiny())
            .shards(6)
            .pool_threads(3)
            .build_sharded()
            .unwrap();
        rsc_util::parallel::set_max_threads(0);
        assert_eq!(ctl.pool_threads(), 3);
    }

    #[test]
    fn routing_buffers_survive_wildly_different_chunk_sizes() {
        // Same trace, radically different chunk layouts — including an
        // empty chunk, a 1-event chunk, and a chunk larger than any
        // buffer seen before — must leave no stale routing data behind.
        let trace = oscillating(23, 11, 60_000);
        let mut seq = ReactiveController::builder(tiny()).build().unwrap();
        for r in &trace {
            seq.observe(r);
        }
        for cap in [1usize, 4] {
            rsc_util::parallel::set_max_threads(cap);
            let mut shd = ReactiveController::builder(tiny())
                .shards(4)
                .build_sharded()
                .unwrap();
            rsc_util::parallel::set_max_threads(0);
            let mut start = 0usize;
            let mut total = ChunkSummary::default();
            // 4096-event warmup, empty, 1 event, then one chunk far
            // larger than anything routed so far (spanning many blocks),
            // then the tail.
            for len in [4096usize, 0, 1, 50_000, usize::MAX] {
                let end = start.saturating_add(len).min(trace.len());
                let s = shd.observe_chunk(&trace[start..end]);
                assert_eq!(s.events, (end - start) as u64, "cap {cap}: chunk events");
                add_summary(&mut total, s);
                start = end;
            }
            assert_eq!(start, trace.len(), "layout covers the whole trace");
            assert_eq!(shd.stats(), seq.stats(), "cap {cap}: stats");
            assert_eq!(total.correct, seq.stats().correct, "cap {cap}: correct");
            assert_eq!(
                total.incorrect,
                seq.stats().incorrect,
                "cap {cap}: incorrect"
            );
            for b in 0..23u32 {
                let id = BranchId::new(b);
                assert_eq!(
                    shd.branch_snapshot(id),
                    seq.branch_snapshot(id),
                    "cap {cap}: branch {b}"
                );
            }
        }
    }

    #[test]
    fn pooled_engine_clones_and_drops_cleanly() {
        let trace = oscillating(9, 7, 5_000);
        rsc_util::parallel::set_max_threads(4);
        let mut a = ReactiveController::builder(tiny())
            .shards(4)
            .build_sharded()
            .unwrap();
        rsc_util::parallel::set_max_threads(0);
        a.observe_chunk(&trace[..2_500]);
        let mut b = a.clone();
        assert_eq!(b.pool_threads(), a.pool_threads());
        a.observe_chunk(&trace[2_500..]);
        b.observe_chunk(&trace[2_500..]);
        assert_eq!(a.stats(), b.stats(), "clone diverges from original");
        drop(a);
        drop(b); // both pools join cleanly; a hang here fails the test
    }

    #[test]
    fn merged_metrics_counters_match_sequential() {
        let trace = oscillating(6, 8, 4_000);
        let mut seq = ReactiveController::builder(tiny())
            .metrics()
            .build()
            .unwrap();
        let mut shd = ReactiveController::builder(tiny())
            .shards(4)
            .metrics()
            .build_sharded()
            .unwrap();
        seq.observe_chunk(&trace);
        shd.observe_chunk(&trace);
        let sreg = seq.metrics().unwrap();
        let mreg = shd.metrics().unwrap();
        for name in [
            "rsc_events_total",
            "rsc_instructions_total",
            "rsc_spec_correct_total",
            "rsc_spec_incorrect_total",
            "rsc_deploy_requests_total",
        ] {
            assert_eq!(mreg.counter_value(name), sreg.counter_value(name), "{name}");
        }
        for kind in TransitionKind::ALL {
            assert_eq!(
                mreg.counter_value_labeled("rsc_transitions_total", Some(("kind", kind.name()))),
                sreg.counter_value_labeled("rsc_transitions_total", Some(("kind", kind.name()))),
                "{kind:?}"
            );
        }
        assert_eq!(
            mreg.gauge_value("rsc_branches_tracked"),
            sreg.gauge_value("rsc_branches_tracked")
        );
        // Histogram totals are exact even though intervals are shard-local.
        let sh = sreg.histogram_value("rsc_misspec_interval_events").unwrap();
        let mh = mreg.histogram_value("rsc_misspec_interval_events").unwrap();
        assert_eq!(mh.count(), sh.count(), "every misspeculation is counted");
        // Per-shard families sum to the aggregate.
        let per_shard: u64 = (0..4)
            .map(|k| {
                mreg.counter_value_labeled(
                    "rsc_shard_events_total",
                    Some(("shard", k.to_string().as_str())),
                )
                .unwrap()
            })
            .sum();
        assert_eq!(Some(per_shard), mreg.counter_value("rsc_events_total"));
        // A shard's own registry is the standard schema.
        let one = shd.shard_metrics(0).unwrap();
        assert!(one.counter_value("rsc_events_total").is_some());
        assert!(shd.shard_metrics(99).is_none());
    }

    #[test]
    fn builder_rejects_incompatible_configs() {
        let err = ReactiveController::builder(tiny())
            .shards(4)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
        let err = ReactiveController::builder(tiny())
            .shards(0)
            .build_sharded()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
        let err = ReactiveController::builder(tiny())
            .resilience(crate::resilience::ResilienceConfig::reliable())
            .shards(2)
            .build_sharded()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
        let err = ReactiveController::builder(tiny())
            .event_sink(std::sync::Arc::new(crate::observe::VecSink::new()))
            .shards(2)
            .build_sharded()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
    }

    #[test]
    fn log_policy_propagates_to_every_shard() {
        let trace = oscillating(4, 50, 2_000);
        let mut shd = ReactiveController::builder(tiny())
            .shards(2)
            .log_policy(TransitionLogPolicy::CountsOnly)
            .build_sharded()
            .unwrap();
        shd.observe_chunk(&trace);
        assert!(shd.transition_count(TransitionKind::EnterBiased) > 0);
        let empties = shd.map_shards(|_, ctl| ctl.transitions().is_empty());
        assert!(
            empties.into_iter().all(|e| e),
            "CountsOnly stores no events"
        );
    }
}
