//! [`ShardedController`]: a parallel controller engine that partitions
//! branches across N worker shards and merges their results
//! deterministically.
//!
//! The paper's FSM is *per-branch*: the decision for branch `b` reads
//! only `b`'s own counters and the record's instruction count, never
//! another branch's state. That makes control embarrassingly
//! partitionable — route every record for the same branch to the same
//! shard (preserving its per-branch event order) and each shard's FSM
//! evolves exactly as it would in a sequential run. The engine then
//! merges [`ControlStats`], [`ChunkSummary`], per-kind transition
//! counts, and metrics histograms with **order-independent reductions
//! only** (sums, maxes, bucket-wise adds), so every merged quantity is
//! independent of thread count and scheduling:
//!
//! * identical to a sequential [`ReactiveController`] run: chunk
//!   summaries, stats (with `instructions` as a high-water max), per-kind
//!   transition counts, per-branch snapshots, metric counters and gauges;
//! * **per-shard** semantics (documented, not merged back to global):
//!   the ordered transition log (`event_index` is a shard-local ordinal)
//!   and the interval-style histograms (misspeculation intervals and
//!   residencies are measured in shard-local event time).
//!
//! Construction goes through the one builder:
//!
//! ```
//! use rsc_control::prelude::*;
//! use rsc_trace::{spec2000, InputId};
//!
//! let pop = spec2000::benchmark("gzip").unwrap().population(20_000);
//! let mut seq = ReactiveController::builder(ControllerParams::scaled()).build()?;
//! let mut shd = ReactiveController::builder(ControllerParams::scaled())
//!     .shards(4)
//!     .build_sharded()?;
//! let records: Vec<_> = pop.trace(InputId::Eval, 20_000, 1).collect();
//! let mut expect = ChunkSummary::default();
//! for r in &records {
//!     let d = seq.observe(r);
//!     expect.events += 1;
//!     expect.speculated += u64::from(d.speculated());
//!     expect.correct += u64::from(d == SpecDecision::Correct);
//!     expect.incorrect += u64::from(d == SpecDecision::Incorrect);
//! }
//! assert_eq!(shd.observe_chunk(&records), expect);
//! assert_eq!(shd.stats(), seq.stats());
//! # Ok::<(), InvalidParamsError>(())
//! ```

use crate::controller::{
    BranchSnapshot, ChunkSummary, ReactiveController, SpecDecision, TransitionKind,
};
use crate::observe::{ControllerMetrics, MetricsRegistry};
use crate::params::ControllerParams;
use crate::stats::ControlStats;
use rsc_trace::{BranchId, BranchRecord};
use rsc_util::parallel::{max_threads, par_map};

/// Stable shard routing: a splitmix64-style finalizer over the branch
/// index, reduced modulo the shard count. Seed-free and
/// version-independent, so checkpoints and artifacts route identically
/// across builds.
#[inline]
pub(crate) fn shard_of(branch: BranchId, shards: usize) -> usize {
    let mut x = branch.index() as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// One worker shard: a full sequential controller plus a reusable
/// routing buffer (so steady-state chunk routing allocates nothing).
#[derive(Debug, Clone)]
pub(crate) struct ShardSlot {
    pub(crate) ctl: ReactiveController,
    scratch: Vec<BranchRecord>,
}

/// A parallel controller: N independent [`ReactiveController`] shards,
/// branches partitioned by a stable hash of [`BranchId`], results merged
/// with order-independent reductions.
///
/// Built via [`ControllerBuilder::build_sharded`](crate::ControllerBuilder::build_sharded);
/// see the [module docs](self) for exactly which quantities are
/// bit-identical to a sequential run and which are per-shard.
#[derive(Debug, Clone)]
pub struct ShardedController {
    shards: Vec<ShardSlot>,
}

impl ShardedController {
    /// Assembles the engine from already-built (empty) shard controllers.
    /// The builder guarantees they share parameters and telemetry shape.
    pub(crate) fn from_parts(ctls: Vec<ReactiveController>) -> Self {
        assert!(!ctls.is_empty(), "builder rejects zero shards");
        ShardedController {
            shards: ctls
                .into_iter()
                .map(|ctl| ShardSlot {
                    ctl,
                    scratch: Vec::new(),
                })
                .collect(),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `branch` under this engine's routing.
    pub fn shard_for(&self, branch: BranchId) -> usize {
        shard_of(branch, self.shards.len())
    }

    /// The shared controller parameters.
    pub fn params(&self) -> &ControllerParams {
        self.shards[0].ctl.params()
    }

    /// Observes one event, routed to the owning shard.
    pub fn observe(&mut self, r: &BranchRecord) -> SpecDecision {
        let k = shard_of(r.branch, self.shards.len());
        self.shards[k].ctl.observe(r)
    }

    /// Observes a chunk of events: routes each record to its owning
    /// shard (preserving per-branch order — routing is a stable filter
    /// over the chunk), runs the shards in parallel, and returns the
    /// summed [`ChunkSummary`].
    ///
    /// The summary is bit-identical to a sequential controller's over
    /// the same chunk regardless of shard count, thread count, or
    /// scheduling: each shard's summary depends only on its own
    /// sub-chunk, and the merge is a sum.
    pub fn observe_chunk(&mut self, records: &[BranchRecord]) -> ChunkSummary {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].ctl.observe_chunk(records);
        }
        if max_threads() <= 1 {
            return self.observe_chunk_sequential(records);
        }
        // Each worker filters the chunk for its own branches; the scan is
        // read-only and embarrassingly parallel, so routing happens
        // inside the parallel region rather than as a sequential prefix.
        let slots = std::mem::take(&mut self.shards);
        let indexed: Vec<(usize, ShardSlot)> = slots.into_iter().enumerate().collect();
        let results = par_map(indexed, |(k, mut slot)| {
            slot.scratch.clear();
            slot.scratch.extend(
                records
                    .iter()
                    .filter(|r| shard_of(r.branch, n) == k)
                    .copied(),
            );
            let summary = slot.ctl.observe_chunk(&slot.scratch);
            slot.scratch.clear();
            (slot, summary)
        });
        let mut total = ChunkSummary::default();
        self.shards = results
            .into_iter()
            .map(|(slot, s)| {
                total.events += s.events;
                total.speculated += s.speculated;
                total.correct += s.correct;
                total.incorrect += s.incorrect;
                slot
            })
            .collect();
        total
    }

    /// The one-thread fallback: with no parallelism available, the
    /// worker-side filtering above would scan the full chunk once per
    /// shard on a single core. Route in one pass instead, then drain the
    /// sub-chunks shard by shard — same routing, same per-shard record
    /// order, same order-independent merge, so the result stays
    /// bit-identical to the parallel path.
    fn observe_chunk_sequential(&mut self, records: &[BranchRecord]) -> ChunkSummary {
        let n = self.shards.len();
        for slot in &mut self.shards {
            slot.scratch.clear();
        }
        for r in records {
            self.shards[shard_of(r.branch, n)].scratch.push(*r);
        }
        let mut total = ChunkSummary::default();
        for slot in &mut self.shards {
            let s = slot.ctl.observe_chunk(&slot.scratch);
            slot.scratch.clear();
            total.events += s.events;
            total.speculated += s.speculated;
            total.correct += s.correct;
            total.incorrect += s.incorrect;
        }
        total
    }

    /// Merged aggregate statistics: every field is a sum over shards
    /// except `instructions`, which is a high-water mark of the dynamic
    /// instruction counter and therefore merges as a max.
    pub fn stats(&self) -> ControlStats {
        let mut total = ControlStats::default();
        for slot in &self.shards {
            let s = slot.ctl.stats();
            total.events += s.events;
            total.instructions = total.instructions.max(s.instructions);
            total.correct += s.correct;
            total.incorrect += s.incorrect;
            total.touched += s.touched;
            total.entered_biased += s.entered_biased;
            total.evicted_branches += s.evicted_branches;
            total.total_evictions += s.total_evictions;
            total.total_entries += s.total_entries;
            total.disabled_branches += s.disabled_branches;
            total.reopt_requests += s.reopt_requests;
            total.deploy_failures += s.deploy_failures;
            total.deploy_retries += s.deploy_retries;
            total.forced_disables += s.forced_disables;
            total.suppressed_enters += s.suppressed_enters;
        }
        total
    }

    /// Exact transition count of `kind`, summed across shards (counts
    /// stay exact under every log policy).
    pub fn transition_count(&self, kind: TransitionKind) -> u64 {
        self.shards
            .iter()
            .map(|slot| slot.ctl.transition_log().count(kind))
            .sum()
    }

    /// Times `branch` entered the biased state (from its owning shard).
    pub fn entries(&self, branch: BranchId) -> u32 {
        self.owner(branch).entries(branch)
    }

    /// Times `branch` was evicted from the biased state.
    pub fn evictions(&self, branch: BranchId) -> u32 {
        self.owner(branch).evictions(branch)
    }

    /// Whether `branch` is currently speculated.
    pub fn is_speculating(&self, branch: BranchId) -> bool {
        self.owner(branch).is_speculating(branch)
    }

    /// Whether `branch` has been permanently disabled.
    pub fn is_disabled(&self, branch: BranchId) -> bool {
        self.owner(branch).is_disabled(branch)
    }

    /// Externally comparable snapshot of `branch`'s FSM state, identical
    /// to the sequential controller's for every branch.
    pub fn branch_snapshot(&self, branch: BranchId) -> BranchSnapshot {
        self.owner(branch).branch_snapshot(branch)
    }

    fn owner(&self, branch: BranchId) -> &ReactiveController {
        &self.shards[shard_of(branch, self.shards.len())].ctl
    }

    /// One shard's own metrics registry (shard-local view), or `None`
    /// without metrics or for an out-of-range index.
    pub fn shard_metrics(&self, shard: usize) -> Option<MetricsRegistry> {
        self.shards.get(shard)?.ctl.metrics()
    }

    /// The merged metrics registry, or `None` unless the engine was
    /// built with [`metrics`](crate::ControllerBuilder::metrics).
    ///
    /// Counters and gauges carry the same schema and the same values a
    /// sequential controller would report for the same input. Histograms
    /// are merged bucket-wise across shards, so their totals are exact
    /// but interval-style observations are measured in shard-local event
    /// time (see the [module docs](self)). Per-shard counter families
    /// (`rsc_shard_*_total{shard="k"}`) are appended after the standard
    /// schema.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        let first = self.shards[0].ctl.telemetry.as_ref()?.metrics.as_ref()?;
        let bounds = first.interval_bounds().to_vec();
        let cm = ControllerMetrics::with_interval_bounds(&bounds)
            .expect("bounds were validated at build time");
        let mut reg = cm.registry.clone();
        let ids = &cm.ids;
        for slot in &self.shards {
            let scm = slot.ctl.telemetry.as_ref()?.metrics.as_ref()?;
            for (agg, shard) in cm
                .histograms_in_order()
                .iter()
                .zip(scm.histograms_in_order())
            {
                reg.histogram_mut(*agg)
                    .merge_from(scm.registry.histogram_ref(shard));
            }
        }
        let s = self.stats();
        reg.set_counter(ids.events, s.events);
        reg.set_counter(ids.instructions, s.instructions);
        reg.set_counter(ids.correct, s.correct);
        reg.set_counter(ids.incorrect, s.incorrect);
        for kind in TransitionKind::ALL {
            reg.set_counter(ids.transitions[kind.index()], self.transition_count(kind));
        }
        // Sharding rejects the resilience layer, so deployment is
        // implicit: one deployment per re-optimization request.
        reg.set_counter(ids.deploy_requests, s.reopt_requests);
        reg.set_counter(ids.deploy_failures, s.deploy_failures);
        reg.set_counter(ids.deploy_retries, s.deploy_retries);
        reg.set_counter(ids.forced_disables, s.forced_disables);
        reg.set_counter(ids.suppressed_enters, s.suppressed_enters);
        reg.set_gauge(ids.branches_tracked, s.touched as f64);
        reg.set_gauge(ids.branches_disabled, s.disabled_branches as f64);
        for (k, slot) in self.shards.iter().enumerate() {
            let ss = slot.ctl.stats();
            let label = k.to_string();
            let id = reg.counter_labeled(
                "rsc_shard_events_total",
                "shard",
                &label,
                "dynamic branch events observed, per shard",
            );
            reg.set_counter(id, ss.events);
            let id = reg.counter_labeled(
                "rsc_shard_spec_incorrect_total",
                "shard",
                &label,
                "misspeculations, per shard",
            );
            reg.set_counter(id, ss.incorrect);
            let transitions: u64 = TransitionKind::ALL
                .iter()
                .map(|&kind| slot.ctl.transition_log().count(kind))
                .sum();
            let id = reg.counter_labeled(
                "rsc_shard_transitions_total",
                "shard",
                &label,
                "classification transitions of every kind, per shard",
            );
            reg.set_counter(id, transitions);
        }
        Some(reg)
    }

    /// Read-only access to the shard controllers, in shard order (used
    /// by the checkpoint writer).
    pub(crate) fn shard_controllers(&self) -> impl Iterator<Item = &ReactiveController> {
        self.shards.iter().map(|slot| &slot.ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EvictionMode;
    use crate::translog::TransitionLogPolicy;
    use crate::ReactiveController;

    fn tiny() -> ControllerParams {
        let mut p = ControllerParams::scaled()
            .with_monitor_period(10)
            .with_latency(0);
        p.eviction = EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 100,
        };
        p.revisit = crate::params::Revisit::After(20);
        p
    }

    fn oscillating(branches: u32, flip: u64, events: u64) -> Vec<BranchRecord> {
        let mut out = Vec::with_capacity(events as usize);
        let mut execs = vec![0u64; branches as usize];
        for i in 0..events {
            let b = (i % u64::from(branches)) as usize;
            let n = execs[b];
            execs[b] += 1;
            out.push(BranchRecord {
                branch: BranchId::new(b as u32),
                taken: (n / flip) % 2 == 0,
                instr: 3 * i + 1,
            });
        }
        out
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for n in 1..=8 {
            for b in 0..1000u32 {
                let k = shard_of(BranchId::new(b), n);
                assert!(k < n);
                assert_eq!(k, shard_of(BranchId::new(b), n));
            }
        }
        // The hash actually spreads consecutive indices around.
        let hits: std::collections::BTreeSet<usize> =
            (0..64u32).map(|b| shard_of(BranchId::new(b), 8)).collect();
        assert!(hits.len() > 1, "all branches landed on one shard");
    }

    #[test]
    fn sharded_matches_sequential_across_shard_counts() {
        let trace = oscillating(7, 9, 6_000);
        let mut seq = ReactiveController::builder(tiny()).build().unwrap();
        let mut seq_total = ChunkSummary::default();
        for window in trace.chunks(257) {
            let s = seq.observe_chunk(window);
            seq_total.events += s.events;
            seq_total.speculated += s.speculated;
            seq_total.correct += s.correct;
            seq_total.incorrect += s.incorrect;
        }
        for n in 1..=8 {
            let mut shd = ReactiveController::builder(tiny())
                .shards(n)
                .build_sharded()
                .unwrap();
            let mut total = ChunkSummary::default();
            for window in trace.chunks(257) {
                let s = shd.observe_chunk(window);
                total.events += s.events;
                total.speculated += s.speculated;
                total.correct += s.correct;
                total.incorrect += s.incorrect;
            }
            assert_eq!(total, seq_total, "{n} shards: summed summaries");
            assert_eq!(shd.stats(), seq.stats(), "{n} shards: stats");
            for kind in TransitionKind::ALL {
                assert_eq!(
                    shd.transition_count(kind),
                    seq.transition_log().count(kind),
                    "{n} shards: {kind:?}"
                );
            }
            for b in 0..7u32 {
                let id = BranchId::new(b);
                assert_eq!(
                    shd.branch_snapshot(id),
                    seq.branch_snapshot(id),
                    "{n} shards: branch {b}"
                );
            }
        }
    }

    #[test]
    fn per_event_and_chunked_sharded_agree() {
        let trace = oscillating(5, 7, 3_000);
        let mut by_event = ReactiveController::builder(tiny())
            .shards(3)
            .build_sharded()
            .unwrap();
        let mut by_chunk = ReactiveController::builder(tiny())
            .shards(3)
            .build_sharded()
            .unwrap();
        for r in &trace {
            by_event.observe(r);
        }
        by_chunk.observe_chunk(&trace);
        assert_eq!(by_event.stats(), by_chunk.stats());
    }

    #[test]
    fn one_thread_fast_path_matches_parallel_path() {
        let trace = oscillating(9, 11, 8_000);
        let run = |cap: usize| {
            rsc_util::parallel::set_max_threads(cap);
            let mut ctl = ReactiveController::builder(tiny())
                .shards(5)
                .build_sharded()
                .unwrap();
            let mut summaries = Vec::new();
            for chunk in trace.chunks(313) {
                summaries.push(ctl.observe_chunk(chunk));
            }
            rsc_util::parallel::set_max_threads(0);
            let snapshots: Vec<BranchSnapshot> = (0..9)
                .map(|b| ctl.branch_snapshot(BranchId::new(b)))
                .collect();
            (summaries, ctl.stats(), snapshots)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn merged_metrics_counters_match_sequential() {
        let trace = oscillating(6, 8, 4_000);
        let mut seq = ReactiveController::builder(tiny())
            .metrics()
            .build()
            .unwrap();
        let mut shd = ReactiveController::builder(tiny())
            .shards(4)
            .metrics()
            .build_sharded()
            .unwrap();
        seq.observe_chunk(&trace);
        shd.observe_chunk(&trace);
        let sreg = seq.metrics().unwrap();
        let mreg = shd.metrics().unwrap();
        for name in [
            "rsc_events_total",
            "rsc_instructions_total",
            "rsc_spec_correct_total",
            "rsc_spec_incorrect_total",
            "rsc_deploy_requests_total",
        ] {
            assert_eq!(mreg.counter_value(name), sreg.counter_value(name), "{name}");
        }
        for kind in TransitionKind::ALL {
            assert_eq!(
                mreg.counter_value_labeled("rsc_transitions_total", Some(("kind", kind.name()))),
                sreg.counter_value_labeled("rsc_transitions_total", Some(("kind", kind.name()))),
                "{kind:?}"
            );
        }
        assert_eq!(
            mreg.gauge_value("rsc_branches_tracked"),
            sreg.gauge_value("rsc_branches_tracked")
        );
        // Histogram totals are exact even though intervals are shard-local.
        let sh = sreg.histogram_value("rsc_misspec_interval_events").unwrap();
        let mh = mreg.histogram_value("rsc_misspec_interval_events").unwrap();
        assert_eq!(mh.count(), sh.count(), "every misspeculation is counted");
        // Per-shard families sum to the aggregate.
        let per_shard: u64 = (0..4)
            .map(|k| {
                mreg.counter_value_labeled(
                    "rsc_shard_events_total",
                    Some(("shard", k.to_string().as_str())),
                )
                .unwrap()
            })
            .sum();
        assert_eq!(Some(per_shard), mreg.counter_value("rsc_events_total"));
        // A shard's own registry is the standard schema.
        let one = shd.shard_metrics(0).unwrap();
        assert!(one.counter_value("rsc_events_total").is_some());
        assert!(shd.shard_metrics(99).is_none());
    }

    #[test]
    fn builder_rejects_incompatible_configs() {
        let err = ReactiveController::builder(tiny())
            .shards(4)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
        let err = ReactiveController::builder(tiny())
            .shards(0)
            .build_sharded()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
        let err = ReactiveController::builder(tiny())
            .resilience(crate::resilience::ResilienceConfig::reliable())
            .shards(2)
            .build_sharded()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
        let err = ReactiveController::builder(tiny())
            .event_sink(std::sync::Arc::new(crate::observe::VecSink::new()))
            .shards(2)
            .build_sharded()
            .unwrap_err();
        assert_eq!(err.field(), Some("shards"));
    }

    #[test]
    fn log_policy_propagates_to_every_shard() {
        let trace = oscillating(4, 50, 2_000);
        let mut shd = ReactiveController::builder(tiny())
            .shards(2)
            .log_policy(TransitionLogPolicy::CountsOnly)
            .build_sharded()
            .unwrap();
        shd.observe_chunk(&trace);
        assert!(shd.transition_count(TransitionKind::EnterBiased) > 0);
        for ctl in shd.shard_controllers() {
            assert!(ctl.transitions().is_empty());
        }
    }
}
