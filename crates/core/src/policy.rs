//! The pluggable control-policy seam and the built-in controller zoo.
//!
//! The paper's contribution is a *family* of reactive control policies
//! compared on benefit-vs-misspeculation curves (its Figure 2), but until
//! this module the 3-state FSM's decision rules were hardwired into
//! [`ReactiveController`](crate::ReactiveController). A [`Policy`] now
//! owns exactly the decision points, while the controller keeps everything
//! the paper treats as environment: pending/retry deployment states, the
//! oscillation cap, the revisit countdown, resilience, and telemetry.
//!
//! The seams are:
//!
//! * [`decide`](Policy::decide) — monitor-state classification: given the
//!   window counters accumulated so far, keep monitoring, speculate in a
//!   direction, or reject the branch as unbiased;
//! * [`observe`](Policy::observe) — biased-state observation: fold one
//!   speculated outcome into the eviction bookkeeping and say whether to
//!   evict;
//! * [`evict`](Policy::evict) — eviction *parametrization*: the tracker a
//!   branch carries into the biased state (its shape and thresholds may
//!   depend on how often the branch was evicted before);
//! * [`observe_run`](Policy::observe_run) — the chunked fast-path hook:
//!   how many further monitored executions are guaranteed to
//!   [`Continue`](SpecChoice::Continue), letting
//!   [`observe_chunk`](crate::ReactiveController::observe_chunk) and the
//!   sharded bulk-routed path absorb monitor windows in closed form.
//!
//! # Fast-path obligations
//!
//! The chunked paths inline the [`EvictTracker::Counter`] and
//! [`EvictTracker::Never`] update rules (the asymmetric saturating
//! counter's semantics are fixed by [`HysteresisCounter`]). A policy that
//! overrides [`observe`](Policy::observe) with anything else must also
//! return `true` from [`custom_observe`](Policy::custom_observe) so the
//! chunked paths route biased branches through the per-event path.
//! Similarly, [`observe_run`](Policy::observe_run) must never report
//! headroom across an execution on which [`decide`](Policy::decide) would
//! classify — returning 0 (the default) is always safe, merely slower.
//!
//! # The zoo
//!
//! * [`PaperFsm`] — the paper's exact rules (fixed window or confidence
//!   bounds from [`ControllerParams`], counter/sampled/no eviction).
//!   Bit-identical to the pre-policy controller and to the golden
//!   [`ReferenceController`](crate::ReferenceController).
//! * [`AdaptiveHysteresis`] — the paper's rules, but each time a branch is
//!   evicted its next counter threshold halves: repeat offenders are
//!   evicted faster, first offenders keep the paper's full burst
//!   tolerance.
//! * [`Perceptron`] — a confidence-weighted bias estimator for the
//!   hard-to-predict tail ("Branch Prediction Is Not a Solved Problem"):
//!   a signed excitement `w = 2·taken − samples` classifies as soon as
//!   `|w|` clears a confidence margin `theta` instead of waiting out the
//!   window, and the biased state carries a weight that misses deplete.
//! * [`CostAware`] — weighs the ~400-cycle misspeculation recovery
//!   penalty explicitly: a branch is selected only when its observed bias
//!   makes the expected net benefit positive, and eviction fires as soon
//!   as the accumulated net benefit of the current biased episode goes
//!   negative.
//!
//! ```
//! use rsc_control::prelude::*;
//!
//! let ctl = ReactiveController::builder(ControllerParams::scaled())
//!     .policy(AdaptiveHysteresis)
//!     .build()?;
//! assert_eq!(ctl.policy_id(), "adaptive-hysteresis");
//! # Ok::<(), InvalidParamsError>(())
//! ```

use crate::controller::EvictTracker;
use crate::counter::HysteresisCounter;
use crate::params::{ControllerParams, EvictionMode, MonitorPolicy};
use rsc_trace::Direction;
use std::fmt;
use std::sync::Arc;

/// The window counters a branch accumulates in the monitor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorCounts {
    /// Executions observed in this monitor window (already including the
    /// one being decided).
    pub execs: u64,
    /// Executions sampled (equal to `execs` at sample rate 1).
    pub samples: u64,
    /// Sampled executions that were taken.
    pub taken: u64,
}

impl MonitorCounts {
    /// The majority outcome count.
    pub fn majority(&self) -> u64 {
        self.taken.max(self.samples - self.taken)
    }

    /// The observed bias toward the majority direction (0 when nothing
    /// was sampled).
    pub fn point_bias(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.majority() as f64 / self.samples as f64
        }
    }

    /// The majority direction (ties resolve to taken, matching the paper
    /// model's `taken * 2 >= samples`).
    pub fn direction(&self) -> Direction {
        if self.taken * 2 >= self.samples {
            Direction::Taken
        } else {
            Direction::NotTaken
        }
    }
}

/// A classification decision from the monitor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecChoice {
    /// Keep monitoring.
    Continue,
    /// Classify biased: speculate in this direction.
    Speculate(Direction),
    /// Classify unbiased: park the branch (the revisit arc may bring it
    /// back).
    Reject,
}

/// A reactive control policy: the decision rules of the per-branch FSM.
///
/// Policies are configuration, not state — all mutable per-branch state
/// lives in the controller (`MonitorCounts` inside the monitor state, an
/// [`EvictTracker`] inside the biased state), so one policy value is
/// shared (`Arc`) across every branch, shard, and clone of a controller.
///
/// See the [module docs](self) for the seam contract and the fast-path
/// obligations.
pub trait Policy: fmt::Debug + Send + Sync {
    /// Stable identifier, used in checkpoints, metrics labels, and
    /// conformance artifacts.
    fn id(&self) -> &'static str;

    /// Monitor-state classification, consulted after every monitored
    /// execution (with `counts` already including it).
    fn decide(&self, counts: MonitorCounts, params: &ControllerParams) -> SpecChoice;

    /// Chunked-observe hook: how many *further* monitored executions are
    /// guaranteed to [`Continue`](SpecChoice::Continue) regardless of
    /// their outcomes. The bulk paths absorb that many events in closed
    /// form; 0 (the default) routes every event through
    /// [`decide`](Policy::decide) — always safe, merely slower.
    fn observe_run(&self, counts: MonitorCounts, params: &ControllerParams) -> u64 {
        let _ = (counts, params);
        0
    }

    /// The eviction bookkeeping a branch carries into the biased state.
    /// `evictions` is how often this branch was evicted before, letting a
    /// policy adapt per-branch thresholds.
    fn evict(&self, params: &ControllerParams, evictions: u32) -> EvictTracker;

    /// Biased-state observation: fold one speculated outcome into the
    /// tracker; `true` evicts the branch. The default implements the
    /// standard tracker semantics (saturating counter, periodic
    /// re-sampling, never) that the chunked fast paths inline — see the
    /// module docs before overriding.
    fn observe(
        &self,
        tracker: &mut EvictTracker,
        correct: bool,
        params: &ControllerParams,
    ) -> bool {
        standard_observe(tracker, correct, params)
    }

    /// Must return `true` when [`observe`](Policy::observe) is overridden
    /// with non-standard semantics, so the chunked paths fall back to the
    /// per-event path for biased branches.
    fn custom_observe(&self) -> bool {
        false
    }

    /// Serialized policy configuration for checkpoints. Restored through
    /// [`policy_from_blob`]; built-ins use fixed-width little-endian
    /// fields (empty when the policy has no configuration).
    fn config_blob(&self) -> Vec<u8> {
        Vec::new()
    }
}

/// The standard tracker update: the semantics the chunked fast paths
/// inline for [`EvictTracker::Counter`] and [`EvictTracker::Never`].
///
/// A [`EvictTracker::Sampling`] tracker under parameters whose eviction
/// mode is not [`EvictionMode::Sampling`] never fires (there is no period
/// to schedule against).
pub fn standard_observe(
    tracker: &mut EvictTracker,
    correct: bool,
    params: &ControllerParams,
) -> bool {
    match tracker {
        EvictTracker::Counter(c) => {
            if correct {
                c.correct();
            } else {
                c.misspeculation();
            }
            c.should_evict()
        }
        EvictTracker::Sampling {
            pos,
            matched,
            sampled,
        } => {
            let EvictionMode::Sampling {
                period,
                samples,
                bias_threshold,
            } = params.eviction
            else {
                return false;
            };
            let mut fire = false;
            if *pos < samples {
                *sampled += 1;
                *matched += u64::from(correct);
                if *sampled == samples {
                    let bias = *matched as f64 / *sampled as f64;
                    fire = bias < bias_threshold;
                }
            }
            *pos += 1;
            if *pos >= period {
                *pos = 0;
                *matched = 0;
                *sampled = 0;
            }
            fire
        }
        EvictTracker::Never => false,
    }
}

/// The paper-exact classification: fixed window or Wilson confidence
/// bounds, per [`ControllerParams::monitor_policy`]. Shared by the
/// policies that keep the paper's monitor rules.
fn paper_decide(counts: MonitorCounts, params: &ControllerParams) -> SpecChoice {
    let threshold = params.selection_threshold;
    let outcome = match params.monitor_policy {
        MonitorPolicy::FixedWindow => {
            if counts.execs >= params.monitor_period {
                Some(counts.point_bias() >= threshold)
            } else {
                None
            }
        }
        MonitorPolicy::Confidence {
            z,
            min_execs,
            max_execs,
        } => {
            if counts.samples < min_execs {
                None
            } else {
                let (lo, hi) =
                    crate::confidence::wilson_bounds(counts.majority(), counts.samples, z);
                if lo >= threshold {
                    Some(true)
                } else if hi < threshold {
                    Some(false)
                } else if counts.samples >= max_execs {
                    Some(counts.point_bias() >= threshold)
                } else {
                    None
                }
            }
        }
    };
    match outcome {
        None => SpecChoice::Continue,
        Some(true) => SpecChoice::Speculate(counts.direction()),
        Some(false) => SpecChoice::Reject,
    }
}

/// Paper-exact fixed-window headroom: everything up to (but excluding)
/// the execution that completes the window is guaranteed `Continue`.
/// Confidence monitoring can classify on any execution, so it reports no
/// headroom.
fn paper_observe_run(counts: MonitorCounts, params: &ControllerParams) -> u64 {
    match params.monitor_policy {
        MonitorPolicy::FixedWindow if counts.execs + 1 < params.monitor_period => {
            params.monitor_period - 1 - counts.execs
        }
        _ => 0,
    }
}

/// The tracker described by [`ControllerParams::eviction`] (the paper's
/// parametrization), at its initial value.
fn paper_tracker(params: &ControllerParams) -> EvictTracker {
    match params.eviction {
        EvictionMode::Counter {
            up,
            down,
            threshold,
        } => EvictTracker::Counter(HysteresisCounter::new(up, down, threshold)),
        EvictionMode::Sampling { .. } => EvictTracker::Sampling {
            pos: 0,
            matched: 0,
            sampled: 0,
        },
        EvictionMode::Never => EvictTracker::Never,
    }
}

// ---------------------------------------------------------------------------
// The zoo
// ---------------------------------------------------------------------------

/// The paper's exact 3-state policy (the default). Every decision rule is
/// read from [`ControllerParams`]; conformance holds this implementation
/// bit-identical to the golden
/// [`ReferenceController`](crate::ReferenceController).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperFsm;

impl Policy for PaperFsm {
    fn id(&self) -> &'static str {
        "paper-fsm"
    }

    fn decide(&self, counts: MonitorCounts, params: &ControllerParams) -> SpecChoice {
        paper_decide(counts, params)
    }

    fn observe_run(&self, counts: MonitorCounts, params: &ControllerParams) -> u64 {
        paper_observe_run(counts, params)
    }

    fn evict(&self, params: &ControllerParams, _evictions: u32) -> EvictTracker {
        paper_tracker(params)
    }
}

/// The paper's rules with a per-branch adaptive eviction threshold: each
/// eviction halves the counter threshold the branch gets on its next
/// biased entry (floored at the `up` increment, so eviction stays
/// reachable). A branch that keeps degrading is cut off with less and
/// less patience, while the paper's full burst tolerance is preserved for
/// first offenders. Non-counter eviction modes fall back to the paper's
/// behavior unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveHysteresis;

impl Policy for AdaptiveHysteresis {
    fn id(&self) -> &'static str {
        "adaptive-hysteresis"
    }

    fn decide(&self, counts: MonitorCounts, params: &ControllerParams) -> SpecChoice {
        paper_decide(counts, params)
    }

    fn observe_run(&self, counts: MonitorCounts, params: &ControllerParams) -> u64 {
        paper_observe_run(counts, params)
    }

    fn evict(&self, params: &ControllerParams, evictions: u32) -> EvictTracker {
        match params.eviction {
            EvictionMode::Counter {
                up,
                down,
                threshold,
            } => {
                let adapted = (threshold >> evictions.min(31)).max(up);
                EvictTracker::Counter(HysteresisCounter::new(up, down, adapted))
            }
            _ => paper_tracker(params),
        }
    }
}

/// A perceptron-style confidence-weighted bias estimator for the
/// hard-to-predict tail.
///
/// Monitoring keeps a signed excitement `w = 2·taken − samples` and
/// classifies as soon as `|w| >= theta` — clearly biased branches
/// classify in roughly `theta` executions instead of waiting out the
/// window, and a window that expires without the margin rejects. The
/// biased state carries a weight starting at `w_max / 2` that each miss
/// depletes by `miss_weight` and each correct speculation replenishes by
/// 1 (saturating at `w_max`); eviction fires when it is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perceptron {
    /// Confidence margin needed to classify (in net outcomes).
    pub theta: u32,
    /// Bias-weight ceiling of the biased state.
    pub w_max: u32,
    /// Bias-weight cost of one misspeculation.
    pub miss_weight: u32,
}

impl Default for Perceptron {
    fn default() -> Self {
        Perceptron {
            theta: 48,
            w_max: 256,
            miss_weight: 32,
        }
    }
}

impl Policy for Perceptron {
    fn id(&self) -> &'static str {
        "perceptron"
    }

    fn decide(&self, counts: MonitorCounts, params: &ControllerParams) -> SpecChoice {
        let w = 2 * counts.taken as i64 - counts.samples as i64;
        let theta = i64::from(self.theta.max(1));
        if w >= theta {
            SpecChoice::Speculate(Direction::Taken)
        } else if -w >= theta {
            SpecChoice::Speculate(Direction::NotTaken)
        } else if counts.execs >= params.monitor_period {
            SpecChoice::Reject
        } else {
            SpecChoice::Continue
        }
    }

    // `decide` can classify on any execution: no headroom (default 0).

    fn evict(&self, _params: &ControllerParams, _evictions: u32) -> EvictTracker {
        let w_max = self.w_max.max(2).max(self.miss_weight.max(1));
        let mut c = HysteresisCounter::new(self.miss_weight.max(1), 1, w_max);
        // The counter tracks *depletion*: value = w_max − weight, so the
        // weight starts at w_max / 2 and eviction (value ≥ w_max) is
        // weight exhaustion.
        c.set_value(w_max - w_max / 2);
        EvictTracker::Counter(c)
    }

    fn config_blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&self.theta.to_le_bytes());
        out.extend_from_slice(&self.w_max.to_le_bytes());
        out.extend_from_slice(&self.miss_weight.to_le_bytes());
        out
    }
}

/// A policy that weighs the misspeculation recovery penalty explicitly.
///
/// Selection: a branch is classified biased (at the end of the fixed
/// monitor window) only when its observed bias clears the break-even
/// point `recovery / (recovery + benefit)` — with the paper's ~400-cycle
/// recovery and 1 cycle of benefit per correct speculation, that is a
/// ~99.75% bias. Eviction: the biased state tracks the episode's net
/// benefit (starting with `2·recovery` of credit, capped at
/// `10·recovery`); each correct speculation adds `benefit`, each miss
/// subtracts `recovery`, and the branch is evicted the moment the
/// episode goes net-negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostAware {
    /// Cycles lost recovering from one misspeculation.
    pub recovery: u32,
    /// Cycles gained by one correct speculation.
    pub benefit: u32,
}

impl Default for CostAware {
    fn default() -> Self {
        CostAware {
            recovery: 400,
            benefit: 1,
        }
    }
}

impl CostAware {
    fn recovery_clamped(&self) -> u32 {
        self.recovery.max(1)
    }

    /// The bias above which speculation is expected net-positive.
    pub fn break_even(&self) -> f64 {
        let r = f64::from(self.recovery_clamped());
        let b = f64::from(self.benefit.max(1));
        r / (r + b)
    }
}

impl Policy for CostAware {
    fn id(&self) -> &'static str {
        "cost-aware"
    }

    fn decide(&self, counts: MonitorCounts, params: &ControllerParams) -> SpecChoice {
        if counts.execs >= params.monitor_period {
            if counts.point_bias() >= self.break_even() {
                SpecChoice::Speculate(counts.direction())
            } else {
                SpecChoice::Reject
            }
        } else {
            SpecChoice::Continue
        }
    }

    fn observe_run(&self, counts: MonitorCounts, params: &ControllerParams) -> u64 {
        // Fixed-window classification regardless of the params' monitor
        // policy, so the headroom is the paper's closed form.
        if counts.execs + 1 < params.monitor_period {
            params.monitor_period - 1 - counts.execs
        } else {
            0
        }
    }

    fn evict(&self, _params: &ControllerParams, _evictions: u32) -> EvictTracker {
        let recovery = self.recovery_clamped();
        let cap = recovery.saturating_mul(10);
        let mut c = HysteresisCounter::new(recovery, self.benefit.max(1), cap);
        // value = cap − net benefit: start with 2·recovery of credit;
        // eviction (value ≥ cap) is the episode going net-negative.
        c.set_value(cap - recovery.saturating_mul(2).min(cap));
        EvictTracker::Counter(c)
    }

    fn config_blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&self.recovery.to_le_bytes());
        out.extend_from_slice(&self.benefit.to_le_bytes());
        out
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The identifiers of every built-in policy, in a stable order (the order
/// `repro pareto` sweeps them).
pub const BUILTIN_POLICY_IDS: [&str; 4] = [
    "paper-fsm",
    "adaptive-hysteresis",
    "perceptron",
    "cost-aware",
];

/// Reconstructs a built-in policy from its checkpoint identity: the
/// stable [`id`](Policy::id) plus the [`config_blob`](Policy::config_blob)
/// it serialized. Returns `None` for an unknown id or a blob that does
/// not decode as that policy's configuration.
pub fn policy_from_blob(id: &str, blob: &[u8]) -> Option<Arc<dyn Policy>> {
    fn u32_at(blob: &[u8], at: usize) -> u32 {
        u32::from_le_bytes(blob[at..at + 4].try_into().expect("bounds checked"))
    }
    match id {
        "paper-fsm" if blob.is_empty() => Some(Arc::new(PaperFsm)),
        "adaptive-hysteresis" if blob.is_empty() => Some(Arc::new(AdaptiveHysteresis)),
        "perceptron" if blob.len() == 12 => Some(Arc::new(Perceptron {
            theta: u32_at(blob, 0),
            w_max: u32_at(blob, 4),
            miss_weight: u32_at(blob, 8),
        })),
        "cost-aware" if blob.len() == 8 => Some(Arc::new(CostAware {
            recovery: u32_at(blob, 0),
            benefit: u32_at(blob, 4),
        })),
        _ => None,
    }
}

/// A built-in policy at its default configuration, by id.
pub fn builtin_policy(id: &str) -> Option<Arc<dyn Policy>> {
    match id {
        "paper-fsm" => Some(Arc::new(PaperFsm)),
        "adaptive-hysteresis" => Some(Arc::new(AdaptiveHysteresis)),
        "perceptron" => Some(Arc::new(Perceptron::default())),
        "cost-aware" => Some(Arc::new(CostAware::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ControllerParams {
        ControllerParams::scaled().with_monitor_period(10)
    }

    fn counts(execs: u64, samples: u64, taken: u64) -> MonitorCounts {
        MonitorCounts {
            execs,
            samples,
            taken,
        }
    }

    #[test]
    fn paper_fsm_matches_fixed_window_math() {
        let p = tiny();
        assert_eq!(PaperFsm.decide(counts(9, 9, 9), &p), SpecChoice::Continue);
        assert_eq!(
            PaperFsm.decide(counts(10, 10, 10), &p),
            SpecChoice::Speculate(Direction::Taken)
        );
        assert_eq!(
            PaperFsm.decide(counts(10, 10, 0), &p),
            SpecChoice::Speculate(Direction::NotTaken)
        );
        assert_eq!(PaperFsm.decide(counts(10, 10, 9), &p), SpecChoice::Reject);
        // Headroom: everything strictly before the classifying execution.
        assert_eq!(PaperFsm.observe_run(counts(0, 0, 0), &p), 9);
        assert_eq!(PaperFsm.observe_run(counts(8, 8, 8), &p), 1);
        assert_eq!(PaperFsm.observe_run(counts(9, 9, 9), &p), 0);
        // Confidence monitoring reports no headroom.
        let c = tiny().with_confidence_monitor(2.58, 4, 100);
        assert_eq!(PaperFsm.observe_run(counts(0, 0, 0), &c), 0);
    }

    #[test]
    fn headroom_never_spans_a_classification() {
        // Contract shared by every built-in: after absorbing `observe_run`
        // further executions (worst case: all one direction), `decide`
        // still returns Continue on each of them.
        for policy in BUILTIN_POLICY_IDS {
            let p = builtin_policy(policy).unwrap();
            for params in [tiny(), tiny().with_confidence_monitor(2.58, 4, 100)] {
                let mut c = counts(0, 0, 0);
                loop {
                    let h = p.observe_run(c, &params);
                    for step in 0..h {
                        c = counts(c.execs + 1, c.samples + 1, c.taken + 1);
                        assert_eq!(
                            p.decide(c, &params),
                            SpecChoice::Continue,
                            "{policy} classified {step} events into its own headroom"
                        );
                    }
                    c = counts(c.execs + 1, c.samples + 1, c.taken + 1);
                    if p.decide(c, &params) != SpecChoice::Continue || c.execs > 64 {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_halves_threshold_per_eviction() {
        let p = tiny(); // counter 50 / 1 / 1000
        for (evictions, want) in [(0u32, 1000u32), (1, 500), (2, 250), (5, 50), (31, 50)] {
            let EvictTracker::Counter(c) = AdaptiveHysteresis.evict(&p, evictions) else {
                panic!("adaptive under counter params must build a counter");
            };
            let mut c = c;
            let mut steps = 0;
            while !c.should_evict() {
                c.misspeculation();
                steps += 1;
            }
            assert_eq!(steps, want.div_ceil(50), "evictions = {evictions}");
        }
    }

    #[test]
    fn perceptron_classifies_on_margin_not_window() {
        let z = Perceptron {
            theta: 4,
            w_max: 16,
            miss_weight: 4,
        };
        let p = tiny();
        assert_eq!(z.decide(counts(3, 3, 3), &p), SpecChoice::Continue);
        assert_eq!(
            z.decide(counts(4, 4, 4), &p),
            SpecChoice::Speculate(Direction::Taken)
        );
        assert_eq!(
            z.decide(counts(4, 4, 0), &p),
            SpecChoice::Speculate(Direction::NotTaken)
        );
        // Window expires without the margin: reject.
        assert_eq!(z.decide(counts(10, 10, 6), &p), SpecChoice::Reject);
        // Weight exhaustion: w starts at w_max/2 = 8, one miss costs 4.
        let mut t = z.evict(&p, 0);
        assert!(!z.observe(&mut t, false, &p));
        assert!(
            z.observe(&mut t, false, &p),
            "two misses exhaust the weight"
        );
    }

    #[test]
    fn cost_aware_break_even_selects_conservatively() {
        let z = CostAware::default();
        let p = tiny();
        // 99.75% break-even: 10/10 selects, 199/200-grade bias does not.
        assert!((z.break_even() - 400.0 / 401.0).abs() < 1e-12);
        assert_eq!(
            z.decide(counts(10, 10, 10), &p),
            SpecChoice::Speculate(Direction::Taken)
        );
        assert_eq!(z.decide(counts(10, 10, 9), &p), SpecChoice::Reject);
        // Net-benefit eviction: 2·recovery of credit, each miss costs 400.
        let mut t = z.evict(&p, 0);
        assert!(!z.observe(&mut t, false, &p));
        assert!(
            z.observe(&mut t, false, &p),
            "second miss goes net-negative"
        );
    }

    #[test]
    fn registry_round_trips_every_builtin() {
        for id in BUILTIN_POLICY_IDS {
            let p = builtin_policy(id).expect("builtin");
            assert_eq!(p.id(), id);
            let blob = p.config_blob();
            let back = policy_from_blob(id, &blob).expect("round trip");
            assert_eq!(back.id(), id);
            assert_eq!(back.config_blob(), blob);
        }
        assert!(policy_from_blob("no-such-policy", &[]).is_none());
        assert!(policy_from_blob("perceptron", &[1, 2, 3]).is_none());
    }

    #[test]
    fn standard_observe_is_safe_for_mismatched_sampling() {
        // A Sampling tracker under counter params never fires.
        let mut t = EvictTracker::Sampling {
            pos: 0,
            matched: 0,
            sampled: 0,
        };
        for _ in 0..100 {
            assert!(!standard_observe(&mut t, false, &tiny()));
        }
    }
}
