//! Bounded-memory transition logging.
//!
//! The controller historically pushed every [`TransitionEvent`] into an
//! unbounded `Vec`, which is fine for 16M-event experiments but grows
//! without limit on runs scaled toward the paper's 9–45B-instruction
//! regime. [`TransitionLog`] keeps the per-kind counters exact under every
//! policy while letting long runs cap (or drop) event storage.

use crate::controller::{TransitionEvent, TransitionKind};

/// How much of the transition stream a controller retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionLogPolicy {
    /// Keep every transition event (the historical default).
    Full,
    /// Keep no events, only the per-kind counters — O(1) memory, the right
    /// choice for throughput runs.
    CountsOnly,
    /// Keep the most recent `n` events plus the counters — bounded memory
    /// with a tail window for post-mortem analysis.
    RingBuffer(usize),
}

/// A transition log with a retention policy and exact per-kind counters.
///
/// Counters are maintained under every policy, so
/// [`count`](TransitionLog::count) is always the true number of
/// transitions regardless of how many events are retained.
///
/// # Examples
///
/// ```
/// use rsc_control::translog::{TransitionLog, TransitionLogPolicy};
/// use rsc_control::TransitionKind;
///
/// let log = TransitionLog::new(TransitionLogPolicy::CountsOnly);
/// assert_eq!(log.count(TransitionKind::EnterBiased), 0);
/// assert!(log.as_slice().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TransitionLog {
    policy: TransitionLogPolicy,
    events: Vec<TransitionEvent>,
    counts: [u64; TransitionKind::ALL.len()],
}

impl TransitionLog {
    /// Creates an empty log with the given retention policy.
    pub fn new(policy: TransitionLogPolicy) -> Self {
        let capacity = match policy {
            TransitionLogPolicy::Full => 0,
            TransitionLogPolicy::CountsOnly => 0,
            // Amortized ring: compact from 2n back to n (see `push`).
            TransitionLogPolicy::RingBuffer(n) => 2 * n,
        };
        TransitionLog {
            policy,
            events: Vec::with_capacity(capacity),
            counts: [0; TransitionKind::ALL.len()],
        }
    }

    /// The active retention policy.
    pub fn policy(&self) -> TransitionLogPolicy {
        self.policy
    }

    /// Switches the retention policy. Tightening the policy drops already
    /// retained events as needed; loosening it cannot recover dropped ones.
    pub fn set_policy(&mut self, policy: TransitionLogPolicy) {
        self.policy = policy;
        match policy {
            TransitionLogPolicy::Full => {}
            TransitionLogPolicy::CountsOnly => self.events.clear(),
            TransitionLogPolicy::RingBuffer(n) => {
                let len = self.events.len();
                if len > n {
                    self.events.copy_within(len - n.., 0);
                    self.events.truncate(n);
                }
            }
        }
    }

    /// Records one transition (counters always; storage per policy).
    #[inline]
    pub fn push(&mut self, ev: TransitionEvent) {
        self.counts[ev.kind.index()] += 1;
        match self.policy {
            TransitionLogPolicy::Full => self.events.push(ev),
            TransitionLogPolicy::CountsOnly => {}
            TransitionLogPolicy::RingBuffer(0) => {}
            TransitionLogPolicy::RingBuffer(n) => {
                // Amortized O(1): let the vec grow to 2n, then slide the
                // most recent n back to the front.
                if self.events.len() == 2 * n {
                    self.events.copy_within(n.., 0);
                    self.events.truncate(n);
                }
                self.events.push(ev);
            }
        }
    }

    /// The retained events, oldest first. `Full` returns everything,
    /// `RingBuffer(n)` at most the last `n`, `CountsOnly` nothing.
    pub fn as_slice(&self) -> &[TransitionEvent] {
        match self.policy {
            TransitionLogPolicy::RingBuffer(n) => {
                &self.events[self.events.len().saturating_sub(n)..]
            }
            _ => &self.events,
        }
    }

    /// Exact number of transitions of `kind` seen so far (independent of
    /// retention).
    pub fn count(&self, kind: TransitionKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Exact total number of transitions seen so far.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl TransitionLog {
    /// Raw internal storage for checkpointing: the *full* retained vector
    /// (a `RingBuffer(n)` log may hold up to `2n` events between
    /// compactions, and resume must reproduce that amortization state
    /// bit-identically) plus the exact per-kind counters.
    pub(crate) fn raw_storage(&self) -> (&[TransitionEvent], &[u64; TransitionKind::ALL.len()]) {
        (&self.events, &self.counts)
    }

    pub(crate) fn from_raw_storage(
        policy: TransitionLogPolicy,
        events: Vec<TransitionEvent>,
        counts: [u64; TransitionKind::ALL.len()],
    ) -> Self {
        TransitionLog {
            policy,
            events,
            counts,
        }
    }
}

impl Default for TransitionLog {
    fn default() -> Self {
        TransitionLog::new(TransitionLogPolicy::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::BranchId;

    fn ev(i: u64, kind: TransitionKind) -> TransitionEvent {
        TransitionEvent {
            branch: BranchId::new(0),
            kind,
            event_index: i,
            instr: i * 10,
            direction: None,
        }
    }

    #[test]
    fn full_retains_everything_in_order() {
        let mut log = TransitionLog::new(TransitionLogPolicy::Full);
        for i in 0..100 {
            log.push(ev(i, TransitionKind::EnterBiased));
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.as_slice()[0].event_index, 0);
        assert_eq!(log.as_slice()[99].event_index, 99);
        assert_eq!(log.count(TransitionKind::EnterBiased), 100);
    }

    #[test]
    fn counts_only_counts_without_storing() {
        let mut log = TransitionLog::new(TransitionLogPolicy::CountsOnly);
        for i in 0..50 {
            let kind = if i % 2 == 0 {
                TransitionKind::EnterBiased
            } else {
                TransitionKind::ExitBiased
            };
            log.push(ev(i, kind));
        }
        assert!(log.is_empty());
        assert_eq!(log.count(TransitionKind::EnterBiased), 25);
        assert_eq!(log.count(TransitionKind::ExitBiased), 25);
        assert_eq!(log.total(), 50);
    }

    #[test]
    fn ring_buffer_keeps_exactly_the_tail() {
        let mut log = TransitionLog::new(TransitionLogPolicy::RingBuffer(8));
        for i in 0..1000 {
            log.push(ev(i, TransitionKind::RevisitMonitor));
            // Invariant at every step: the retained slice is the suffix.
            let s = log.as_slice();
            assert!(s.len() <= 8);
            let lo = (i + 1).saturating_sub(8);
            let expect: Vec<u64> = (lo..=i).collect();
            let got: Vec<u64> = s.iter().map(|e| e.event_index).collect();
            assert_eq!(got, expect, "after push {i}");
        }
        assert_eq!(log.count(TransitionKind::RevisitMonitor), 1000);
    }

    #[test]
    fn ring_buffer_of_zero_stores_nothing() {
        let mut log = TransitionLog::new(TransitionLogPolicy::RingBuffer(0));
        for i in 0..10 {
            log.push(ev(i, TransitionKind::Disabled));
        }
        assert!(log.is_empty());
        assert_eq!(log.count(TransitionKind::Disabled), 10);
    }

    #[test]
    fn ring_buffer_of_one_keeps_only_the_newest() {
        let mut log = TransitionLog::new(TransitionLogPolicy::RingBuffer(1));
        for i in 0..10 {
            log.push(ev(i, TransitionKind::EnterBiased));
            let got: Vec<u64> = log.as_slice().iter().map(|e| e.event_index).collect();
            assert_eq!(got, vec![i], "after push {i}");
        }
        assert_eq!(log.len(), 1);
        assert_eq!(log.count(TransitionKind::EnterBiased), 10);
    }

    #[test]
    fn ring_buffer_wrap_exactly_at_capacity() {
        // n pushes fill the window without evicting; push n+1 is the
        // first eviction. Check the boundary on both sides, including the
        // internal 2n compaction point.
        let n = 4;
        let mut log = TransitionLog::new(TransitionLogPolicy::RingBuffer(n));
        for i in 0..n as u64 {
            log.push(ev(i, TransitionKind::EnterBiased));
        }
        let got: Vec<u64> = log.as_slice().iter().map(|e| e.event_index).collect();
        assert_eq!(got, vec![0, 1, 2, 3], "full window, nothing evicted");

        log.push(ev(n as u64, TransitionKind::EnterBiased));
        let got: Vec<u64> = log.as_slice().iter().map(|e| e.event_index).collect();
        assert_eq!(got, vec![1, 2, 3, 4], "oldest evicted on push n+1");

        // Drive through the 2n amortization boundary (push 2n triggers
        // the internal compaction) and verify the visible window is
        // unaffected.
        for i in (n as u64 + 1)..(2 * n as u64 + 2) {
            log.push(ev(i, TransitionKind::EnterBiased));
        }
        let got: Vec<u64> = log.as_slice().iter().map(|e| e.event_index).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        assert_eq!(log.count(TransitionKind::EnterBiased), 2 * n as u64 + 2);
    }

    #[test]
    fn per_kind_counts_stay_exact_after_wrap() {
        // A window far smaller than the stream, fed a mix of kinds; the
        // retained slice forgets, the counters must not.
        let mut log = TransitionLog::new(TransitionLogPolicy::RingBuffer(3));
        let mut expect = [0u64; TransitionKind::ALL.len()];
        for i in 0..500u64 {
            let kind = TransitionKind::ALL[(i % 5) as usize];
            expect[kind.index()] += 1;
            log.push(ev(i, kind));
        }
        assert_eq!(log.len(), 3);
        for kind in TransitionKind::ALL {
            assert_eq!(log.count(kind), expect[kind.index()], "{kind:?}");
        }
        assert_eq!(log.total(), 500);
    }

    #[test]
    fn set_policy_tightens_and_preserves_counts() {
        let mut log = TransitionLog::new(TransitionLogPolicy::Full);
        for i in 0..20 {
            log.push(ev(i, TransitionKind::EnterUnbiased));
        }
        log.set_policy(TransitionLogPolicy::RingBuffer(5));
        let got: Vec<u64> = log.as_slice().iter().map(|e| e.event_index).collect();
        assert_eq!(got, vec![15, 16, 17, 18, 19]);
        log.set_policy(TransitionLogPolicy::CountsOnly);
        assert!(log.is_empty());
        assert_eq!(log.count(TransitionKind::EnterUnbiased), 20);
    }
}
