//! The observability layer: a zero-dependency metrics registry and a
//! pluggable event sink.
//!
//! The paper's whole argument is closed-loop reaction to *observed*
//! behavior, yet until this module the runtime was open-loop to its own
//! operators: the only visibility was post-hoc scraping of
//! [`ControlStats`](crate::ControlStats) or the transition log. This
//! module makes the controller observable in flight:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and fixed-bucket
//!   histograms (misspeculation intervals, biased-state residency, retry
//!   depth, breaker phase durations), exportable as Prometheus text
//!   ([`MetricsRegistry::render_prometheus`]) or JSON
//!   ([`MetricsRegistry::render_json`]). No external crates, no atomics
//!   on the hot path: histograms update live at rare instrumentation
//!   points, while counters and gauges are synthesized from the
//!   controller's existing exact state at export time.
//! * [`EventSink`] — a trait receiving [`ObsEvent`]s (classification
//!   transitions, deployment attempts, breaker phase changes, checkpoint
//!   save/restore) as they happen. Ships with [`NullSink`] (drop
//!   everything), [`VecSink`] (buffer in memory, for tests and
//!   programmatic consumers), and [`JsonlSink`] (stream one JSON object
//!   per line to any writer).
//!
//! Telemetry is assembled exclusively through
//! [`ControllerBuilder`](crate::ControllerBuilder):
//!
//! ```
//! use rsc_control::prelude::*;
//! use std::sync::Arc;
//!
//! let sink = Arc::new(VecSink::new());
//! let mut ctl = ReactiveController::builder(ControllerParams::scaled())
//!     .metrics()
//!     .event_sink(sink.clone())
//!     .build()?;
//! # let _ = &mut ctl;
//! let registry = ctl.metrics().expect("metrics were enabled");
//! assert!(registry.render_prometheus().contains("rsc_events_total"));
//! assert!(sink.is_empty());
//! # Ok::<(), InvalidParamsError>(())
//! ```
//!
//! A controller built *without* telemetry carries only a `None` check on
//! the chunked hot path, keeping `BENCH_pipeline.json` throughput within
//! noise of the pre-observability build (pinned by
//! `tests/telemetry_overhead.rs`).

use crate::controller::{TransitionEvent, TransitionKind};
use crate::params::InvalidParamsError;
use crate::resilience::deployer::{DeployKind, DeployOutcome};
use rsc_trace::BranchId;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Metric identity
// ---------------------------------------------------------------------------

/// Handle to a registered counter (index into the registry; cheap Copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram over `u64` observations.
///
/// `bounds` are inclusive upper bounds (`le` in Prometheus terms), strictly
/// increasing; one implicit `+Inf` bucket catches everything above the last
/// bound. Buckets are stored *non-cumulative*; the Prometheus renderer
/// accumulates them on the way out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Validating constructor: bounds must be strictly increasing, or the
    /// bucket index computed by [`observe`](Histogram::observe) (a
    /// `partition_point` over `bounds`) silently misclassifies values in
    /// release builds.
    fn try_new(bounds: &[u64]) -> Result<Self, &'static str> {
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err("histogram bounds must be strictly increasing");
        }
        Ok(Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        })
    }

    #[cfg(test)]
    fn new(bounds: &[u64]) -> Self {
        Histogram::try_new(bounds).expect("histogram bounds must be strictly increasing")
    }

    #[inline]
    fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| value > b);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The inclusive upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Non-cumulative bucket counts (`bounds.len() + 1` entries; the last
    /// is the `+Inf` bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Checkpoint restore: overwrite the mutable state in place. The
    /// bucket count must match this histogram's shape, and `count` must
    /// equal the bucket total — every observation lands in exactly one
    /// bucket, so a disagreement can only mean a corrupted payload.
    pub(crate) fn set_raw(
        &mut self,
        buckets: Vec<u64>,
        count: u64,
        sum: u64,
    ) -> Result<(), &'static str> {
        if buckets.len() != self.buckets.len() {
            return Err("histogram bucket count disagrees with this build");
        }
        if buckets.iter().sum::<u64>() != count {
            return Err("histogram count disagrees with bucket sum");
        }
        self.buckets = buckets;
        self.count = count;
        self.sum = sum;
        Ok(())
    }

    /// Adds another histogram's observations into this one (used by the
    /// sharded controller's deterministic merge). Both histograms must
    /// share the same bounds.
    pub(crate) fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Test hook: corrupt the observation count without touching the
    /// buckets, to exercise the checkpoint consistency check.
    #[cfg(test)]
    pub(crate) fn force_count(&mut self, count: u64) {
        self.count = count;
    }
}

#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone, PartialEq)]
struct Metric {
    /// Family name (`rsc_events_total`).
    name: String,
    /// Optional single label pair (`kind` → `enter_biased`).
    label: Option<(&'static str, String)>,
    help: &'static str,
    value: MetricValue,
}

impl Metric {
    /// `name` or `name{key="value"}`.
    fn sample_name(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
        }
    }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// A zero-dependency metrics registry: monotonic counters, gauges, and
/// fixed-bucket histograms, addressable by cheap integer handles.
///
/// Registration returns a typed id; updates are array indexing, no string
/// hashing. Metrics within one family may differ by a single label pair
/// (used for per-kind transition counters). Export with
/// [`render_prometheus`](MetricsRegistry::render_prometheus) or
/// [`render_json`](MetricsRegistry::render_json).
///
/// # Examples
///
/// ```
/// use rsc_control::observe::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let hits = reg.counter("cache_hits_total", "cache hits");
/// reg.inc_by(hits, 3);
/// assert_eq!(reg.counter_value("cache_hits_total"), Some(3));
/// assert!(reg.render_prometheus().contains("cache_hits_total 3"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn find(&self, name: &str, label: Option<(&str, &str)>) -> Option<usize> {
        self.metrics.iter().position(|m| {
            m.name == name && m.label.as_ref().map(|(k, v)| (*k, v.as_str())) == label
        })
    }

    fn register(
        &mut self,
        name: &str,
        label: Option<(&'static str, String)>,
        help: &'static str,
        value: MetricValue,
    ) -> usize {
        let label_ref = label.as_ref().map(|(k, v)| (*k, v.as_str()));
        if let Some(i) = self.find(name, label_ref) {
            assert!(
                std::mem::discriminant(&self.metrics[i].value) == std::mem::discriminant(&value),
                "metric {name} re-registered with a different kind"
            );
            return i;
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            label,
            help,
            value,
        });
        self.metrics.len() - 1
    }

    /// Registers (or finds) a monotonic counter.
    pub fn counter(&mut self, name: &str, help: &'static str) -> CounterId {
        CounterId(self.register(name, None, help, MetricValue::Counter(0)))
    }

    /// Registers (or finds) a counter with one label pair, e.g. a per-kind
    /// member of a family like `rsc_transitions_total{kind="enter_biased"}`.
    pub fn counter_labeled(
        &mut self,
        name: &str,
        key: &'static str,
        value: &str,
        help: &'static str,
    ) -> CounterId {
        CounterId(self.register(
            name,
            Some((key, value.to_string())),
            help,
            MetricValue::Counter(0),
        ))
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &str, help: &'static str) -> GaugeId {
        GaugeId(self.register(name, None, help, MetricValue::Gauge(0.0)))
    }

    /// Registers (or finds) a fixed-bucket histogram with the given
    /// inclusive upper bounds (`+Inf` is implicit).
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not strictly increasing; use
    /// [`try_histogram`](MetricsRegistry::try_histogram) to surface the
    /// problem as an error instead.
    pub fn histogram(&mut self, name: &str, help: &'static str, bounds: &[u64]) -> HistogramId {
        self.try_histogram(name, help, bounds)
            .expect("histogram bounds must be strictly increasing")
    }

    /// Registers (or finds) a fixed-bucket histogram, rejecting bounds
    /// that are not strictly increasing.
    ///
    /// # Errors
    ///
    /// Returns an [`InvalidParamsError`] naming the offending bounds when
    /// they are not strictly increasing — with unordered or duplicate
    /// bounds the bucket search would silently misclassify observations.
    pub fn try_histogram(
        &mut self,
        name: &str,
        help: &'static str,
        bounds: &[u64],
    ) -> Result<HistogramId, InvalidParamsError> {
        let h = Histogram::try_new(bounds).map_err(|reason| {
            InvalidParamsError::bad_field("histogram_bounds", format!("{bounds:?}"), reason)
        })?;
        Ok(HistogramId(self.register(
            name,
            None,
            help,
            MetricValue::Histogram(h),
        )))
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.inc_by(id, 1);
    }

    /// Increments a counter.
    #[inline]
    pub fn inc_by(&mut self, id: CounterId, by: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Counter(v) => *v += by,
            _ => unreachable!("CounterId always points at a counter"),
        }
    }

    /// Sets a counter to an absolute value, for counters synchronized from
    /// an external monotonic source (the caller guarantees monotonicity).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Counter(v) => *v = value,
            _ => unreachable!("CounterId always points at a counter"),
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Gauge(v) => *v = value,
            _ => unreachable!("GaugeId always points at a gauge"),
        }
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Histogram(h) => h.observe(value),
            _ => unreachable!("HistogramId always points at a histogram"),
        }
    }

    pub(crate) fn histogram_mut(&mut self, id: HistogramId) -> &mut Histogram {
        match &mut self.metrics[id.0].value {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("HistogramId always points at a histogram"),
        }
    }

    pub(crate) fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        match &self.metrics[id.0].value {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("HistogramId always points at a histogram"),
        }
    }

    /// Looks up an unlabeled counter's value by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counter_value_labeled(name, None)
    }

    /// Looks up a counter's value by name and optional label pair.
    pub fn counter_value_labeled(&self, name: &str, label: Option<(&str, &str)>) -> Option<u64> {
        match &self.metrics[self.find(name, label)?].value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a gauge's value by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match &self.metrics[self.find(name, None)?].value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a histogram by name.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        match &self.metrics[self.find(name, None)?].value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Number of registered metrics (labeled family members count
    /// individually).
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers once per family (in registration
    /// order), then one sample line per metric; histograms expand into
    /// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen_families: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen_families.contains(&m.name.as_str()) {
                seen_families.push(&m.name);
                let ty = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.name, ty);
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {}", m.sample_name(), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", m.sample_name(), fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &b) in h.bounds.iter().enumerate() {
                        cum += h.buckets[i];
                        let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, b, cum);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count);
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum);
                    let _ = writeln!(out, "{}_count {}", m.name, h.count);
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON object with `counters`, `gauges`,
    /// and `histograms` sections. Hand-rolled (the crate stays
    /// zero-dependency); metric names are used as object keys.
    pub fn render_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    let _ = write!(counters, "{}:{}", json_str(&m.sample_name()), v);
                }
                MetricValue::Gauge(v) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    let _ = write!(gauges, "{}:{}", json_str(&m.sample_name()), fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    let _ = write!(
                        histograms,
                        "{}:{{\"bounds\":{:?},\"buckets\":{:?},\"count\":{},\"sum\":{}}}",
                        json_str(&m.name),
                        h.bounds,
                        h.buckets,
                        h.count,
                        h.sum
                    );
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }
}

/// Formats an f64 so integral values print without a fractional part and
/// the output is always a valid Prometheus/JSON number.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Events and sinks
// ---------------------------------------------------------------------------

/// One observability event emitted by the controller.
///
/// Marked `#[non_exhaustive]`: new controller subsystems add event
/// kinds over time (deployment, breaker, checkpoint events all arrived
/// after the first release of this enum), so downstream matches must
/// keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ObsEvent {
    /// A classification transition (including the global breaker
    /// transitions, which carry the
    /// [`BREAKER_BRANCH`](crate::resilience::BREAKER_BRANCH) sentinel).
    Transition(TransitionEvent),
    /// One deployment attempt went through the pipeline.
    Deploy {
        /// The branch whose code was (re)deployed.
        branch: BranchId,
        /// Optimize or repair.
        kind: DeployKind,
        /// Failed attempts before this one (0 = first try).
        attempt: u32,
        /// Dynamic instruction count at the request.
        instr: u64,
        /// Whether the pipeline accepted the request.
        deployed: bool,
        /// Instructions wasted by a failed attempt (0 when deployed).
        wasted: u64,
    },
    /// [`ReactiveController::snapshot`](crate::ReactiveController::snapshot)
    /// produced a checkpoint.
    CheckpointSaved {
        /// Events observed at save time.
        events: u64,
        /// Serialized size.
        bytes: u64,
    },
    /// A controller was rebuilt from a checkpoint (emitted by
    /// [`restore_with_sink`](crate::ReactiveController::restore_with_sink)).
    CheckpointRestored {
        /// Events observed at the original save.
        events: u64,
        /// Serialized size.
        bytes: u64,
    },
}

impl ObsEvent {
    /// Renders the event as one self-contained JSON object (the line
    /// format written by [`JsonlSink`]).
    pub fn to_json(&self) -> String {
        match self {
            ObsEvent::Transition(ev) => {
                let dir = match ev.direction {
                    None => "null".to_string(),
                    Some(d) => json_str(&format!("{d:?}")),
                };
                format!(
                    "{{\"type\":\"transition\",\"kind\":{},\"branch\":{},\"event\":{},\"instr\":{},\"direction\":{}}}",
                    json_str(ev.kind.name()),
                    ev.branch.index(),
                    ev.event_index,
                    ev.instr,
                    dir
                )
            }
            ObsEvent::Deploy {
                branch,
                kind,
                attempt,
                instr,
                deployed,
                wasted,
            } => format!(
                "{{\"type\":\"deploy\",\"kind\":{},\"branch\":{},\"attempt\":{},\"instr\":{},\"deployed\":{},\"wasted\":{}}}",
                json_str(kind.name()),
                branch.index(),
                attempt,
                instr,
                deployed,
                wasted
            ),
            ObsEvent::CheckpointSaved { events, bytes } => format!(
                "{{\"type\":\"checkpoint_saved\",\"events\":{events},\"bytes\":{bytes}}}"
            ),
            ObsEvent::CheckpointRestored { events, bytes } => format!(
                "{{\"type\":\"checkpoint_restored\",\"events\":{events},\"bytes\":{bytes}}}"
            ),
        }
    }
}

/// Receives [`ObsEvent`]s from a controller.
///
/// Sinks are shared (`Arc`) so a cloned controller keeps streaming to the
/// same destination; implementations use interior mutability and must be
/// cheap — `emit` is called synchronously from the controller's
/// transition, deployment, and checkpoint paths (never per branch event).
pub trait EventSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &ObsEvent);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Drops every event. Useful as an explicit "no sink" placeholder.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &ObsEvent) {}
}

/// Buffers events in memory behind a mutex. The consumer keeps a clone of
/// the `Arc` handed to the builder and inspects it after (or during) the
/// run.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Copies out everything emitted so far.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        self.events.lock().expect("VecSink mutex").clone()
    }

    /// Removes and returns everything emitted so far.
    pub fn take(&self) -> Vec<ObsEvent> {
        std::mem::take(&mut *self.events.lock().expect("VecSink mutex"))
    }

    /// Events buffered so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("VecSink mutex").len()
    }

    /// Returns `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: &ObsEvent) {
        self.events.lock().expect("VecSink mutex").push(*event);
    }
}

/// Streams events as JSON Lines (one [`ObsEvent::to_json`] object per
/// line) to any writer. Write errors never propagate into the controller;
/// they are counted and reported via [`JsonlSink::dropped`].
pub struct JsonlSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
    dropped: AtomicU64,
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn from_writer(w: impl std::io::Write + Send + 'static) -> Self {
        JsonlSink {
            out: Mutex::new(Box::new(w)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) a file and streams to it through a buffer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(std::io::BufWriter::new(file)))
    }

    /// Events that failed to write (telemetry is best-effort; the
    /// controller never sees sink errors).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &ObsEvent) {
        let mut out = self.out.lock().expect("JsonlSink mutex");
        if writeln!(out, "{}", event.to_json()).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("JsonlSink mutex").flush();
    }
}

// ---------------------------------------------------------------------------
// Controller-side telemetry wiring
// ---------------------------------------------------------------------------

/// Histogram bounds: event-count intervals spanning tight loops to whole
/// scaled runs (powers of four).
const INTERVAL_BOUNDS: [u64; 11] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

/// Histogram bounds for retry depth (attempt ordinal of each deployment
/// request; retries are bounded by the retry policy, so the range is
/// small).
const RETRY_BOUNDS: [u64; 6] = [0, 1, 2, 3, 4, 8];

/// Handles for every metric the controller maintains, in registration
/// order. The schema is fixed at build time so checkpoints can serialize
/// histogram state positionally.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MetricIds {
    pub(crate) events: CounterId,
    pub(crate) instructions: CounterId,
    pub(crate) correct: CounterId,
    pub(crate) incorrect: CounterId,
    pub(crate) transitions: [CounterId; TransitionKind::ALL.len()],
    pub(crate) deploy_requests: CounterId,
    pub(crate) deploy_failures: CounterId,
    pub(crate) deploy_retries: CounterId,
    pub(crate) forced_disables: CounterId,
    pub(crate) suppressed_enters: CounterId,
    pub(crate) branches_tracked: GaugeId,
    pub(crate) branches_disabled: GaugeId,
    pub(crate) breaker_state: GaugeId,
    pub(crate) misspec_interval: HistogramId,
    pub(crate) biased_residency: HistogramId,
    pub(crate) retry_depth: HistogramId,
    pub(crate) breaker_open_duration: HistogramId,
    pub(crate) breaker_half_open_duration: HistogramId,
}

/// Live metric state carried inside a controller when the builder enabled
/// [`metrics`](crate::ControllerBuilder::metrics).
///
/// Only histograms (and the small amount of side state needed to compute
/// them) update on the hot path; counters and gauges are synthesized from
/// the controller's exact counters at export time by
/// [`ReactiveController::metrics`](crate::ReactiveController::metrics).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ControllerMetrics {
    pub(crate) registry: MetricsRegistry,
    pub(crate) ids: MetricIds,
    /// Event ordinal of the most recent misspeculation (None before the
    /// first), feeding the misspec-interval histogram.
    pub(crate) last_misspec_event: Option<u64>,
    /// Per-branch event ordinal of the last `EnterBiased` (`u64::MAX` =
    /// not currently measured), feeding the biased-residency histogram.
    pub(crate) enter_event: Vec<u64>,
    /// Event ordinal at which the breaker last opened.
    pub(crate) breaker_open_since: Option<u64>,
    /// Event ordinal at which the breaker last half-opened.
    pub(crate) breaker_half_since: Option<u64>,
}

/// Sentinel for "branch is not in a measured biased episode".
pub(crate) const NOT_BIASED: u64 = u64::MAX;

impl ControllerMetrics {
    pub(crate) fn new() -> Self {
        ControllerMetrics::with_interval_bounds(&INTERVAL_BOUNDS)
            .expect("default interval bounds are strictly increasing")
    }

    /// Builds the controller metric schema with custom bounds for the
    /// four interval-style histograms (misspeculation interval, biased
    /// residency, breaker open/half-open durations). The retry-depth
    /// bounds stay fixed: retry counts are bounded by policy, not by the
    /// workload's time scale.
    ///
    /// # Errors
    ///
    /// Returns an [`InvalidParamsError`] when the bounds are not strictly
    /// increasing.
    pub(crate) fn with_interval_bounds(
        interval_bounds: &[u64],
    ) -> Result<Self, InvalidParamsError> {
        let mut registry = MetricsRegistry::new();
        let events = registry.counter("rsc_events_total", "dynamic branch events observed");
        let instructions = registry.counter(
            "rsc_instructions_total",
            "dynamic instruction count high-water mark",
        );
        let correct = registry.counter(
            "rsc_spec_correct_total",
            "speculated executions whose outcome matched",
        );
        let incorrect = registry.counter(
            "rsc_spec_incorrect_total",
            "speculated executions whose outcome did not match (misspeculations)",
        );
        let transitions = TransitionKind::ALL.map(|kind| {
            registry.counter_labeled(
                "rsc_transitions_total",
                "kind",
                kind.name(),
                "classification transitions by kind",
            )
        });
        let deploy_requests = registry.counter(
            "rsc_deploy_requests_total",
            "deployment requests issued to the pipeline",
        );
        let deploy_failures = registry.counter(
            "rsc_deploy_failures_total",
            "deployment requests the pipeline rejected",
        );
        let deploy_retries = registry.counter(
            "rsc_deploy_retries_total",
            "deployment retry attempts issued after a failure",
        );
        let forced_disables = registry.counter(
            "rsc_forced_disables_total",
            "branches force-disabled after repair retries ran out",
        );
        let suppressed_enters = registry.counter(
            "rsc_suppressed_enters_total",
            "EnterBiased decisions suppressed by an open storm breaker",
        );
        let branches_tracked = registry.gauge(
            "rsc_branches_tracked",
            "static branches with controller state",
        );
        let branches_disabled = registry.gauge(
            "rsc_branches_disabled",
            "branches permanently disabled (oscillation cap or fail-safe)",
        );
        let breaker_state = registry.gauge(
            "rsc_breaker_state",
            "storm breaker phase (0 closed, 1 half-open, 2 open; 0 when unconfigured)",
        );
        let misspec_interval = registry.try_histogram(
            "rsc_misspec_interval_events",
            "branch events between consecutive misspeculations",
            interval_bounds,
        )?;
        let biased_residency = registry.try_histogram(
            "rsc_biased_residency_events",
            "branch events between a branch entering the biased state and its eviction",
            interval_bounds,
        )?;
        let retry_depth = registry.histogram(
            "rsc_retry_depth",
            "failed attempts preceding each deployment request",
            &RETRY_BOUNDS,
        );
        let breaker_open_duration = registry.try_histogram(
            "rsc_breaker_open_duration_events",
            "branch events the breaker spent open before probing",
            interval_bounds,
        )?;
        let breaker_half_open_duration = registry.try_histogram(
            "rsc_breaker_half_open_duration_events",
            "branch events the breaker spent half-open before closing or reopening",
            interval_bounds,
        )?;
        Ok(ControllerMetrics {
            registry,
            ids: MetricIds {
                events,
                instructions,
                correct,
                incorrect,
                transitions,
                deploy_requests,
                deploy_failures,
                deploy_retries,
                forced_disables,
                suppressed_enters,
                branches_tracked,
                branches_disabled,
                breaker_state,
                misspec_interval,
                biased_residency,
                retry_depth,
                breaker_open_duration,
                breaker_half_open_duration,
            },
            last_misspec_event: None,
            enter_event: Vec::new(),
            breaker_open_since: None,
            breaker_half_since: None,
        })
    }

    /// The bounds of the four interval-style histograms (serialized into
    /// checkpoints so a restore rebuilds the same schema).
    pub(crate) fn interval_bounds(&self) -> &[u64] {
        self.registry
            .histogram_ref(self.ids.misspec_interval)
            .bounds()
    }

    /// The controller's histograms in the fixed order the checkpoint
    /// format serializes them.
    pub(crate) fn histograms_in_order(&self) -> [HistogramId; 5] {
        [
            self.ids.misspec_interval,
            self.ids.biased_residency,
            self.ids.retry_depth,
            self.ids.breaker_open_duration,
            self.ids.breaker_half_open_duration,
        ]
    }

    /// Hot-path hook: a misspeculation at global event ordinal `now`.
    #[inline]
    pub(crate) fn on_misspeculation(&mut self, now: u64) {
        let interval = now - self.last_misspec_event.unwrap_or(0);
        self.registry.observe(self.ids.misspec_interval, interval);
        self.last_misspec_event = Some(now);
    }

    /// Transition hook (rare path): maintains the residency and breaker
    /// duration histograms.
    pub(crate) fn on_transition(&mut self, ev: &TransitionEvent) {
        match ev.kind {
            TransitionKind::EnterBiased => {
                let idx = ev.branch.index();
                if idx < u32::MAX as usize {
                    if idx >= self.enter_event.len() {
                        self.enter_event.resize(idx + 1, NOT_BIASED);
                    }
                    self.enter_event[idx] = ev.event_index;
                }
            }
            TransitionKind::ExitBiased => {
                let idx = ev.branch.index();
                if let Some(enter) = self.enter_event.get_mut(idx) {
                    if *enter != NOT_BIASED {
                        let residency = ev.event_index.saturating_sub(*enter);
                        self.registry.observe(self.ids.biased_residency, residency);
                        *enter = NOT_BIASED;
                    }
                }
            }
            TransitionKind::BreakerOpened => {
                if let Some(half) = self.breaker_half_since.take() {
                    self.registry.observe(
                        self.ids.breaker_half_open_duration,
                        ev.event_index.saturating_sub(half),
                    );
                }
                self.breaker_open_since = Some(ev.event_index);
            }
            TransitionKind::BreakerHalfOpen => {
                if let Some(open) = self.breaker_open_since.take() {
                    self.registry.observe(
                        self.ids.breaker_open_duration,
                        ev.event_index.saturating_sub(open),
                    );
                }
                self.breaker_half_since = Some(ev.event_index);
            }
            TransitionKind::BreakerClosed => {
                if let Some(half) = self.breaker_half_since.take() {
                    self.registry.observe(
                        self.ids.breaker_half_open_duration,
                        ev.event_index.saturating_sub(half),
                    );
                }
            }
            _ => {}
        }
    }

    /// Deployment hook (rare path): the retry-depth histogram.
    pub(crate) fn on_deploy(&mut self, attempt: u32) {
        self.registry
            .observe(self.ids.retry_depth, u64::from(attempt));
    }
}

/// Everything the builder attached for observability: optional metrics,
/// optional sink. Present on the controller only when at least one was
/// requested, so the disabled fast path stays a single `Option` check.
#[derive(Clone)]
pub(crate) struct Telemetry {
    pub(crate) metrics: Option<ControllerMetrics>,
    pub(crate) sink: Option<Arc<dyn EventSink>>,
}

impl Telemetry {
    /// Emits to the sink, if any.
    #[inline]
    pub(crate) fn emit(&self, ev: &ObsEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(ev);
        }
    }

    /// Transition hook: metrics then sink.
    pub(crate) fn on_transition(&mut self, ev: &TransitionEvent) {
        if let Some(m) = &mut self.metrics {
            m.on_transition(ev);
        }
        if let Some(sink) = &self.sink {
            sink.emit(&ObsEvent::Transition(*ev));
        }
    }

    /// Deployment hook: metrics then sink.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_deploy(
        &mut self,
        branch: BranchId,
        kind: DeployKind,
        attempt: u32,
        instr: u64,
        outcome: DeployOutcome,
    ) {
        if let Some(m) = &mut self.metrics {
            m.on_deploy(attempt);
        }
        if let Some(sink) = &self.sink {
            let (deployed, wasted) = match outcome {
                DeployOutcome::Deployed => (true, 0),
                DeployOutcome::Failed { wasted } => (false, wasted),
            };
            sink.emit(&ObsEvent::Deploy {
                branch,
                kind,
                attempt,
                instr,
                deployed,
                wasted,
            });
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.metrics.is_some())
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_inclusively() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        // le=1: {0,1}; le=4: {2,4}; le=16: {5,16}; +Inf: {17,1000}.
        assert_eq!(h.buckets(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1045);
    }

    #[test]
    fn registry_dedups_by_name_and_label() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "x");
        let b = reg.counter("x_total", "x");
        assert_eq!(a, b);
        let l1 = reg.counter_labeled("y_total", "kind", "a", "y");
        let l2 = reg.counter_labeled("y_total", "kind", "b", "y");
        assert_ne!(l1, l2);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn prometheus_text_shape() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter_labeled("t_total", "kind", "enter", "transitions");
        reg.inc_by(c, 5);
        let g = reg.gauge("g", "a gauge");
        reg.set_gauge(g, 1.5);
        let h = reg.histogram("lat", "latency", &[1, 10]);
        reg.observe(h, 3);
        reg.observe(h, 30);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE t_total counter"));
        assert!(text.contains("t_total{kind=\"enter\"} 5"));
        assert!(text.contains("g 1.5"));
        assert!(text.contains("lat_bucket{le=\"1\"} 0"));
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_sum 33"));
        assert!(text.contains("lat_count 2"));
        // HELP/TYPE emitted once per family.
        assert_eq!(text.matches("# TYPE t_total").count(), 1);
    }

    #[test]
    fn json_render_is_structured() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c_total", "c");
        reg.inc(c);
        let h = reg.histogram("h", "h", &[2]);
        reg.observe(h, 1);
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c_total\":1"));
        assert!(json.contains("\"bounds\":[2]"));
        assert!(json.contains("\"buckets\":[1, 0]"));
    }

    #[test]
    fn vec_sink_buffers_events() {
        let sink = VecSink::new();
        sink.emit(&ObsEvent::CheckpointSaved {
            events: 10,
            bytes: 99,
        });
        assert_eq!(sink.len(), 1);
        let taken = sink.take();
        assert_eq!(taken.len(), 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::from_writer(Shared(buf.clone()));
        sink.emit(&ObsEvent::CheckpointSaved {
            events: 1,
            bytes: 2,
        });
        sink.emit(&ObsEvent::CheckpointRestored {
            events: 1,
            bytes: 2,
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"checkpoint_saved\""));
        assert!(lines[1].contains("\"type\":\"checkpoint_restored\""));
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn non_monotonic_bounds_are_rejected_for_real() {
        assert!(Histogram::try_new(&[1, 4, 16]).is_ok());
        assert!(Histogram::try_new(&[]).is_ok());
        assert!(Histogram::try_new(&[4, 1]).is_err());
        assert!(Histogram::try_new(&[1, 1]).is_err());

        let mut reg = MetricsRegistry::new();
        let err = reg.try_histogram("h", "h", &[8, 2]).unwrap_err();
        assert_eq!(err.field(), Some("histogram_bounds"));
        assert!(err.to_string().contains("[8, 2]"));
        assert!(reg.is_empty(), "a rejected histogram must not register");
    }

    #[test]
    fn set_raw_rejects_count_bucket_sum_mismatch() {
        let mut h = Histogram::new(&[1, 4]);
        assert_eq!(
            h.set_raw(vec![1, 2], 3, 9).unwrap_err(),
            "histogram bucket count disagrees with this build"
        );
        assert_eq!(
            h.set_raw(vec![1, 2, 3], 7, 9).unwrap_err(),
            "histogram count disagrees with bucket sum"
        );
        h.set_raw(vec![1, 2, 3], 6, 9).unwrap();
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 9);
    }

    #[test]
    fn merge_from_adds_bucketwise() {
        let mut a = Histogram::new(&[1, 4]);
        let mut b = Histogram::new(&[1, 4]);
        for v in [0, 2, 100] {
            a.observe(v);
        }
        for v in [1, 3] {
            b.observe(v);
        }
        a.merge_from(&b);
        assert_eq!(a.buckets(), &[2, 2, 1]);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 106);
    }

    #[test]
    fn custom_interval_bounds_shape_the_schema() {
        let m = ControllerMetrics::with_interval_bounds(&[10, 20, 30]).unwrap();
        assert_eq!(m.interval_bounds(), &[10, 20, 30]);
        let h = m
            .registry
            .histogram_value("rsc_biased_residency_events")
            .unwrap();
        assert_eq!(h.bounds(), &[10, 20, 30]);
        // Retry depth keeps its fixed policy-scale bounds.
        let r = m.registry.histogram_value("rsc_retry_depth").unwrap();
        assert_eq!(r.bounds(), &RETRY_BOUNDS);
        assert!(ControllerMetrics::with_interval_bounds(&[5, 5]).is_err());
    }

    #[test]
    fn misspec_interval_tracks_gaps() {
        let mut m = ControllerMetrics::new();
        m.on_misspeculation(5);
        m.on_misspeculation(9);
        let h = m
            .registry
            .histogram_value("rsc_misspec_interval_events")
            .unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 5 + 4);
    }
}
