//! Controller parameters (the paper's Table 2) and the sensitivity-study
//! variants built from them (Figure 5 / Table 4).

/// How the controller decides to evict a branch from the biased state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionMode {
    /// Saturating hysteresis counter: `+up` on each misspeculation, `−down`
    /// on each correct speculation; evict when the counter reaches
    /// `threshold`. This is the paper's baseline (+50 / −1, threshold
    /// 10,000 — eviction requires at least 200 misspeculations and engages
    /// when the misspeculation rate exceeds roughly `down/(up+down)` ≈ 2%).
    Counter {
        /// Increment on misspeculation.
        up: u32,
        /// Decrement on correct speculation.
        down: u32,
        /// Eviction level.
        threshold: u32,
    },
    /// Periodic re-sampling: every `period` executions, measure the bias of
    /// the first `samples` executions; evict if it falls below
    /// `bias_threshold` (the paper's "eviction by sampling" variant with a
    /// 1,000-in-10,000 duty cycle).
    Sampling {
        /// Re-sampling period in executions.
        period: u64,
        /// Number of executions sampled at the start of each period.
        samples: u64,
        /// Evict when the sampled bias falls below this.
        bias_threshold: f64,
    },
    /// Never evict (the paper's open-loop "no eviction" variant).
    Never,
}

/// How the monitor state decides when it has seen enough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MonitorPolicy {
    /// The paper's fixed window: classify after exactly
    /// [`ControllerParams::monitor_period`] executions.
    FixedWindow,
    /// Confidence-bound classification (an extension of the paper's
    /// model): classify as soon as the Wilson lower bound of the bias
    /// clears the selection threshold (select) or the upper bound falls
    /// below it (reject), bounded by `[min_execs, max_execs]`. Clearly
    /// biased branches classify in tens of executions; borderline branches
    /// automatically observe longer.
    Confidence {
        /// z value of the confidence interval (2.58 ≈ 99%).
        z: f64,
        /// Never classify before this many monitored samples.
        min_execs: u64,
        /// Force a fixed-window-style decision at this many samples.
        max_execs: u64,
    },
}

/// Whether (and when) an unbiased branch returns to the monitor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Revisit {
    /// Re-monitor after this many executions in the unbiased state.
    After(u64),
    /// Never revisit (the paper's "no revisit" variant).
    Never,
}

/// Full parameterization of the reactive controller.
///
/// [`ControllerParams::table2`] reproduces the paper's Table 2 exactly.
/// Because our workloads are hundreds of times shorter than the paper's
/// full benchmark runs (9–45 billion instructions), experiments default to
/// [`ControllerParams::scaled`], which shortens the time-like parameters
/// the same way the paper itself shortened its MSSP runs ("parameterized
/// ... artificially fast").
///
/// # Examples
///
/// ```
/// use rsc_control::ControllerParams;
/// let p = ControllerParams::table2();
/// assert_eq!(p.monitor_period, 10_000);
/// let open_loop = p.without_eviction();
/// assert_ne!(open_loop.eviction, p.eviction);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerParams {
    /// Executions spent in the monitor state before classifying.
    pub monitor_period: u64,
    /// How the monitor decides (fixed window vs confidence bounds).
    pub monitor_policy: MonitorPolicy,
    /// Sample every k-th execution while monitoring (1 = every execution).
    /// The window still spans `monitor_period` executions, so rates above 1
    /// classify from proportionally fewer samples.
    pub monitor_sample_rate: u64,
    /// Bias required to enter the biased state (Table 2: 99.5%).
    pub selection_threshold: f64,
    /// Eviction policy.
    pub eviction: EvictionMode,
    /// Revisit policy.
    pub revisit: Revisit,
    /// Maximum number of times a branch may enter the biased state before
    /// it is permanently disabled (Table 2: "will not optimize a sixth
    /// time" = 5). `None` disables the cap.
    pub oscillation_limit: Option<u32>,
    /// Latency, in dynamic instructions, between a (de)optimization
    /// decision and the new code being deployed.
    pub optimization_latency: u64,
}

impl ControllerParams {
    /// The paper's Table 2 baseline parameters.
    pub fn table2() -> Self {
        ControllerParams {
            monitor_period: 10_000,
            monitor_policy: MonitorPolicy::FixedWindow,
            monitor_sample_rate: 1,
            selection_threshold: 0.995,
            eviction: EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 10_000,
            },
            revisit: Revisit::After(1_000_000),
            oscillation_limit: Some(5),
            optimization_latency: 1_000_000,
        }
    }

    /// Table 2 parameters with the time-like constants shortened ~10× for
    /// the scaled workloads used throughout this reproduction (tens of
    /// millions rather than tens of billions of instructions).
    ///
    /// Structure is unchanged: the same FSM, the same +50/−1 hysteresis
    /// shape, the same oscillation cap. The eviction threshold of 1,000 is a
    /// value the paper itself studies in its sensitivity analysis and
    /// reports as near-baseline; the wait period keeps the paper's
    /// monitor-to-wait ratio while staying short relative to per-branch
    /// execution counts at this scale.
    pub fn scaled() -> Self {
        ControllerParams {
            monitor_period: 1_000,
            monitor_policy: MonitorPolicy::FixedWindow,
            monitor_sample_rate: 1,
            selection_threshold: 0.995,
            eviction: EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 1_000,
            },
            revisit: Revisit::After(25_000),
            oscillation_limit: Some(5),
            optimization_latency: 100_000,
        }
    }

    /// Removes the eviction arc (biased → monitor): the open-loop
    /// configuration whose misspeculation rate the paper shows to be almost
    /// two orders of magnitude worse.
    pub fn without_eviction(mut self) -> Self {
        self.eviction = EvictionMode::Never;
        self
    }

    /// Removes the revisit arc (unbiased → monitor): the paper shows this
    /// loses ~20% of the correct speculations.
    pub fn without_revisit(mut self) -> Self {
        self.revisit = Revisit::Never;
        self
    }

    /// Divides the counter eviction threshold by 10 (the paper's "lower
    /// eviction threshold" variant). No-op for non-counter modes.
    pub fn with_lower_eviction_threshold(mut self) -> Self {
        if let EvictionMode::Counter {
            up,
            down,
            threshold,
        } = self.eviction
        {
            self.eviction = EvictionMode::Counter {
                up,
                down,
                threshold: (threshold / 10).max(up),
            };
        }
        self
    }

    /// Switches to periodic bias re-sampling for eviction (the paper's
    /// "eviction by sampling" variant: 1,000 samples every 10,000
    /// executions — a 10% duty cycle — against a 98% bias floor; both
    /// lengths scale with the monitor period).
    pub fn with_sampled_eviction(mut self) -> Self {
        let period = self.monitor_period;
        self.eviction = EvictionMode::Sampling {
            period,
            samples: (period / 10).max(1),
            bias_threshold: 0.98,
        };
        self
    }

    /// Samples 1-in-`rate` executions in the monitor state (the paper's
    /// "sampling in monitor" variant uses 8).
    pub fn with_monitor_sampling(mut self, rate: u64) -> Self {
        self.monitor_sample_rate = rate.max(1);
        self
    }

    /// Divides the revisit wait period by 10 (the paper's "more frequent
    /// revisit" variant). No-op if revisit is disabled.
    pub fn with_frequent_revisit(mut self) -> Self {
        if let Revisit::After(n) = self.revisit {
            self.revisit = Revisit::After((n / 10).max(1));
        }
        self
    }

    /// Sets the optimization latency.
    pub fn with_latency(mut self, instructions: u64) -> Self {
        self.optimization_latency = instructions;
        self
    }

    /// Sets the monitor period.
    pub fn with_monitor_period(mut self, executions: u64) -> Self {
        self.monitor_period = executions.max(1);
        self
    }

    /// Switches the monitor to confidence-bound classification (an
    /// extension of the paper's fixed window).
    pub fn with_confidence_monitor(mut self, z: f64, min_execs: u64, max_execs: u64) -> Self {
        self.monitor_policy = MonitorPolicy::Confidence {
            z,
            min_execs,
            max_execs,
        };
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), InvalidParamsError> {
        if self.monitor_period == 0 {
            return Err(InvalidParamsError::bad_field(
                "monitor_period",
                self.monitor_period,
                "must be positive",
            ));
        }
        if self.monitor_sample_rate == 0 {
            return Err(InvalidParamsError::bad_field(
                "monitor_sample_rate",
                self.monitor_sample_rate,
                "must be positive",
            ));
        }
        if !(self.selection_threshold > 0.5 && self.selection_threshold <= 1.0) {
            return Err(InvalidParamsError::bad_field(
                "selection_threshold",
                self.selection_threshold,
                "must be in (0.5, 1.0]",
            ));
        }
        match self.eviction {
            EvictionMode::Counter {
                up,
                down,
                threshold,
            } => {
                if up == 0 {
                    return Err(InvalidParamsError::bad_field(
                        "eviction.up",
                        up,
                        "must be positive",
                    ));
                }
                if threshold == 0 {
                    return Err(InvalidParamsError::bad_field(
                        "eviction.threshold",
                        threshold,
                        "must be positive",
                    ));
                }
                if down == 0 {
                    return Err(InvalidParamsError::bad_field(
                        "eviction.down",
                        down,
                        "must be positive",
                    ));
                }
                if threshold < up {
                    return Err(InvalidParamsError::bad_field(
                        "eviction.threshold",
                        threshold,
                        "must be at least the up increment",
                    ));
                }
            }
            EvictionMode::Sampling {
                period,
                samples,
                bias_threshold,
            } => {
                if samples == 0 || period == 0 || samples > period {
                    return Err(InvalidParamsError::bad_field(
                        "eviction.samples",
                        samples,
                        "needs 0 < samples <= period",
                    ));
                }
                if !(bias_threshold > 0.5 && bias_threshold <= 1.0) {
                    return Err(InvalidParamsError::bad_field(
                        "eviction.bias_threshold",
                        bias_threshold,
                        "must be in (0.5, 1.0]",
                    ));
                }
            }
            EvictionMode::Never => {}
        }
        if let MonitorPolicy::Confidence {
            z,
            min_execs,
            max_execs,
        } = self.monitor_policy
        {
            if !(z.is_finite() && z > 0.0) {
                return Err(InvalidParamsError::bad_field(
                    "monitor_policy.z",
                    z,
                    "must be positive and finite",
                ));
            }
            if min_execs == 0 || max_execs < min_execs {
                return Err(InvalidParamsError::bad_field(
                    "monitor_policy.min_execs",
                    min_execs,
                    "needs 0 < min_execs <= max_execs",
                ));
            }
        }
        if let Revisit::After(0) = self.revisit {
            return Err(InvalidParamsError::bad_field(
                "revisit",
                0u64,
                "period must be positive",
            ));
        }
        if self.oscillation_limit == Some(0) {
            return Err(InvalidParamsError::bad_field(
                "oscillation_limit",
                0u32,
                "must be positive (use None to disable the cap)",
            ));
        }
        Ok(())
    }
}

impl Default for ControllerParams {
    fn default() -> Self {
        ControllerParams::scaled()
    }
}

/// Error describing an inconsistent [`ControllerParams`] (or resilience
/// configuration — the resilience layer reuses this type).
///
/// Structured errors name the offending field and carry the rejected
/// value, so a builder caller sees *which* knob was wrong:
///
/// ```
/// use rsc_control::{ControllerParams, ReactiveController};
///
/// let mut p = ControllerParams::scaled();
/// p.selection_threshold = 0.3;
/// let err = ReactiveController::builder(p).build().unwrap_err();
/// assert_eq!(err.field(), Some("selection_threshold"));
/// assert!(err.to_string().contains("0.3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidParamsError {
    /// A free-form consistency problem not tied to a single field.
    Message(&'static str),
    /// A specific field holds a rejected value.
    Field {
        /// Dotted path of the offending field (e.g. `eviction.threshold`).
        field: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// Why it was rejected.
        reason: &'static str,
    },
}

impl InvalidParamsError {
    /// Crate-internal constructor naming the offending field and value.
    pub(crate) fn bad_field(
        field: &'static str,
        value: impl std::fmt::Display,
        reason: &'static str,
    ) -> Self {
        InvalidParamsError::Field {
            field,
            value: value.to_string(),
            reason,
        }
    }

    /// The offending field's dotted path, when the error is structured.
    pub fn field(&self) -> Option<&'static str> {
        match self {
            InvalidParamsError::Message(_) => None,
            InvalidParamsError::Field { field, .. } => Some(field),
        }
    }
}

impl std::fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidParamsError::Message(msg) => {
                write!(f, "invalid controller parameters: {msg}")
            }
            InvalidParamsError::Field {
                field,
                value,
                reason,
            } => write!(
                f,
                "invalid controller parameters: {field} = {value} {reason}"
            ),
        }
    }
}

impl std::error::Error for InvalidParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let p = ControllerParams::table2();
        assert_eq!(p.monitor_period, 10_000);
        assert_eq!(p.selection_threshold, 0.995);
        assert_eq!(
            p.eviction,
            EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 10_000
            }
        );
        assert_eq!(p.revisit, Revisit::After(1_000_000));
        assert_eq!(p.oscillation_limit, Some(5));
        assert_eq!(p.optimization_latency, 1_000_000);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn scaled_preserves_structure() {
        let p = ControllerParams::scaled();
        assert!(p.validate().is_ok());
        assert!(matches!(
            p.eviction,
            EvictionMode::Counter {
                up: 50,
                down: 1,
                ..
            }
        ));
        assert_eq!(p.selection_threshold, 0.995);
        assert_eq!(p.oscillation_limit, Some(5));
    }

    #[test]
    fn variants_modify_expected_fields() {
        let base = ControllerParams::table2();
        assert_eq!(base.without_eviction().eviction, EvictionMode::Never);
        assert_eq!(base.without_revisit().revisit, Revisit::Never);
        assert_eq!(
            base.with_lower_eviction_threshold().eviction,
            EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 1_000
            }
        );
        assert_eq!(base.with_monitor_sampling(8).monitor_sample_rate, 8);
        assert_eq!(
            base.with_frequent_revisit().revisit,
            Revisit::After(100_000)
        );
        assert_eq!(base.with_latency(0).optimization_latency, 0);
        assert_eq!(base.with_monitor_period(1_000).monitor_period, 1_000);
    }

    #[test]
    fn sampled_eviction_uses_ten_percent_duty_cycle() {
        let p = ControllerParams::table2().with_sampled_eviction();
        assert_eq!(
            p.eviction,
            EvictionMode::Sampling {
                period: 10_000,
                samples: 1_000,
                bias_threshold: 0.98
            }
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn variants_compose() {
        let p = ControllerParams::scaled()
            .without_revisit()
            .with_lower_eviction_threshold()
            .with_latency(0);
        assert!(p.validate().is_ok());
        assert_eq!(p.revisit, Revisit::Never);
        assert_eq!(p.optimization_latency, 0);
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = ControllerParams::table2();
        p.monitor_period = 0;
        assert!(p.validate().is_err());

        let mut p = ControllerParams::table2();
        p.selection_threshold = 0.4;
        assert!(p.validate().is_err());

        let mut p = ControllerParams::table2();
        p.eviction = EvictionMode::Counter {
            up: 0,
            down: 1,
            threshold: 10,
        };
        assert!(p.validate().is_err());

        let mut p = ControllerParams::table2();
        p.eviction = EvictionMode::Sampling {
            period: 10,
            samples: 20,
            bias_threshold: 0.98,
        };
        assert!(p.validate().is_err());

        let mut p = ControllerParams::table2();
        p.revisit = Revisit::After(0);
        assert!(p.validate().is_err());

        let mut p = ControllerParams::table2();
        p.oscillation_limit = Some(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_errors_name_field_and_value() {
        let mut p = ControllerParams::table2();
        p.monitor_period = 0;
        let err = p.validate().unwrap_err();
        assert_eq!(err.field(), Some("monitor_period"));
        let text = err.to_string();
        assert!(text.contains("monitor_period"), "{text}");
        assert!(text.contains('0'), "{text}");

        let mut p = ControllerParams::table2();
        p.selection_threshold = 1.5;
        let err = p.validate().unwrap_err();
        assert_eq!(err.field(), Some("selection_threshold"));
        assert!(err.to_string().contains("1.5"));

        let mut p = ControllerParams::table2();
        p.eviction = EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 10,
        };
        let err = p.validate().unwrap_err();
        assert_eq!(err.field(), Some("eviction.threshold"));
        assert!(err.to_string().contains("10"));

        // Free-form messages still render and report no field.
        let err = InvalidParamsError::Message("something inconsistent");
        assert_eq!(err.field(), None);
        assert!(err.to_string().contains("something inconsistent"));
    }

    #[test]
    fn lower_threshold_never_drops_below_up() {
        let mut p = ControllerParams::table2();
        p.eviction = EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 100,
        };
        let lowered = p.with_lower_eviction_threshold();
        assert_eq!(
            lowered.eviction,
            EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 50
            }
        );
        assert!(lowered.validate().is_ok());
    }
}
