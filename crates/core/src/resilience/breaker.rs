//! The misspeculation-storm circuit breaker: the paper's eviction arc
//! lifted to the population level.
//!
//! Per-branch eviction bounds the damage a *single* degraded branch can
//! do, but an adversarial trace can keep the whole population churning —
//! every branch individually below its eviction threshold while the
//! aggregate misspeculation rate is pathological. [`StormBreaker`]
//! watches the global rate over a sliding window of recent events and,
//! past a threshold, **opens**: new `EnterBiased` deployments are
//! suppressed (and optionally the top-K offending branches are
//! mass-evicted) until a cool-down passes, then the breaker
//! **half-opens** to probe recovery before fully closing again.
//!
//! Hysteresis comes from three places so the breaker cannot oscillate:
//! the close threshold sits below the open threshold, the cool-down
//! enforces a minimum open dwell, and the probe window enforces a
//! minimum half-open observation before any phase change.
//!
//! The breaker is a shared primitive between the optimized and reference
//! controllers — like the Wilson-bound arithmetic in
//! [`crate::confidence`], it is pure bookkeeping the two implementations
//! must evaluate identically, while each controller independently
//! implements its *reaction* (suppression, mass eviction, logging).

use crate::params::InvalidParamsError;

/// Configuration of the [`StormBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Events per sliding-window bucket.
    pub bucket_events: u64,
    /// Number of buckets; the window spans `bucket_events * buckets`
    /// events and advances with bucket granularity.
    pub buckets: usize,
    /// Misspeculation rate (over a full window) at which the breaker
    /// opens.
    pub open_threshold: f64,
    /// Rate at or below which a half-open probe closes the breaker. Must
    /// not exceed `open_threshold` (this gap is the rate hysteresis).
    pub close_threshold: f64,
    /// Events the breaker stays open before half-opening.
    pub cooldown_events: u64,
    /// Events observed in the half-open phase before deciding to close
    /// or re-open.
    pub probe_events: u64,
    /// On open, mass-evict this many of the worst currently-speculating
    /// branches (0 disables mass eviction).
    pub mass_evict_top_k: usize,
}

impl BreakerConfig {
    /// A permissive default for experimentation: a 4×256-event window,
    /// open at 20% misspeculation, close at 5%, cool down for 2,048
    /// events, probe for 1,024, and mass-evict the 4 worst branches.
    pub fn default_config() -> Self {
        BreakerConfig {
            bucket_events: 256,
            buckets: 4,
            open_threshold: 0.20,
            close_threshold: 0.05,
            cooldown_events: 2_048,
            probe_events: 1_024,
            mass_evict_top_k: 4,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), InvalidParamsError> {
        if self.bucket_events == 0 {
            return Err(InvalidParamsError::bad_field(
                "breaker.bucket_events",
                self.bucket_events,
                "must be positive",
            ));
        }
        if self.buckets == 0 {
            return Err(InvalidParamsError::bad_field(
                "breaker.buckets",
                self.buckets,
                "must be positive",
            ));
        }
        if !(self.open_threshold > 0.0 && self.open_threshold <= 1.0) {
            return Err(InvalidParamsError::bad_field(
                "breaker.open_threshold",
                self.open_threshold,
                "must be in (0, 1]",
            ));
        }
        if !(self.close_threshold >= 0.0 && self.close_threshold <= self.open_threshold) {
            return Err(InvalidParamsError::bad_field(
                "breaker.close_threshold",
                self.close_threshold,
                "must be in [0, open_threshold]",
            ));
        }
        if self.cooldown_events == 0 {
            return Err(InvalidParamsError::bad_field(
                "breaker.cooldown_events",
                self.cooldown_events,
                "must be positive",
            ));
        }
        if self.probe_events == 0 {
            return Err(InvalidParamsError::bad_field(
                "breaker.probe_events",
                self.probe_events,
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// The breaker's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Normal operation; the window is armed.
    Closed,
    /// Storm detected at event `since`: new deployments suppressed.
    Open {
        /// Global event index at which the breaker opened.
        since: u64,
    },
    /// Probing recovery since event `since`: deployments allowed, rate
    /// re-measured.
    HalfOpen {
        /// Global event index at which the probe began.
        since: u64,
    },
}

impl BreakerPhase {
    /// Numeric code for the `rsc_breaker_state` gauge: 0 closed,
    /// 1 half-open, 2 open (ordered by severity so alerting can use a
    /// simple threshold).
    pub fn gauge_code(self) -> u8 {
        match self {
            BreakerPhase::Closed => 0,
            BreakerPhase::HalfOpen { .. } => 1,
            BreakerPhase::Open { .. } => 2,
        }
    }
}

/// What a call to [`StormBreaker::tick`] decided (the controller turns
/// these into transitions, suppression, and mass eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerSignal {
    /// No phase change.
    None,
    /// Closed → Open: a storm crossed the open threshold.
    Opened,
    /// Open → HalfOpen: the cool-down elapsed.
    HalfOpened,
    /// HalfOpen → Closed: the probe measured a healthy rate.
    Closed,
    /// HalfOpen → Open: the probe still measured a storm.
    Reopened,
}

/// Sliding-window misspeculation-rate monitor with open/half-open/closed
/// phases (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct StormBreaker {
    config: BreakerConfig,
    phase: BreakerPhase,
    /// Ring of (events, misses) buckets; `cur` is the bucket being
    /// filled. Only armed while Closed.
    window: Vec<(u64, u64)>,
    cur: usize,
    /// Buckets filled since the window was last reset (saturates at
    /// `buckets`); the breaker never opens on a partial window.
    warm: usize,
    /// Probe accumulators while HalfOpen.
    probe_seen: u64,
    probe_misses: u64,
}

impl StormBreaker {
    /// Creates a closed breaker with an empty window.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is inconsistent.
    pub fn new(config: BreakerConfig) -> Result<Self, InvalidParamsError> {
        config.validate()?;
        Ok(StormBreaker {
            config,
            phase: BreakerPhase::Closed,
            window: vec![(0, 0); config.buckets],
            cur: 0,
            warm: 0,
            probe_seen: 0,
            probe_misses: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// The current phase.
    pub fn phase(&self) -> BreakerPhase {
        self.phase
    }

    /// Returns `true` while new `EnterBiased` deployments must be
    /// suppressed.
    pub fn suppressing(&self) -> bool {
        matches!(self.phase, BreakerPhase::Open { .. })
    }

    fn reset_window(&mut self) {
        self.window.fill((0, 0));
        self.cur = 0;
        self.warm = 0;
    }

    /// Misspeculation rate over the armed window.
    fn window_rate(&self) -> f64 {
        let (events, misses) = self
            .window
            .iter()
            .fold((0u64, 0u64), |(e, m), &(be, bm)| (e + be, m + bm));
        if events == 0 {
            0.0
        } else {
            misses as f64 / events as f64
        }
    }

    /// Advances the breaker by one observed event.
    ///
    /// `events` is the controller's post-increment global event counter
    /// and `misspeculated` whether this event was a misspeculation. The
    /// returned signal is the phase change (if any) the caller must
    /// react to.
    pub fn tick(&mut self, events: u64, misspeculated: bool) -> BreakerSignal {
        match self.phase {
            BreakerPhase::Closed => {
                let bucket = &mut self.window[self.cur];
                bucket.0 += 1;
                bucket.1 += u64::from(misspeculated);
                if bucket.0 >= self.config.bucket_events {
                    self.warm = (self.warm + 1).min(self.config.buckets);
                    self.cur = (self.cur + 1) % self.config.buckets;
                    self.window[self.cur] = (0, 0);
                }
                if self.warm >= self.config.buckets
                    && self.window_rate() >= self.config.open_threshold
                {
                    self.phase = BreakerPhase::Open { since: events };
                    self.reset_window();
                    return BreakerSignal::Opened;
                }
                BreakerSignal::None
            }
            BreakerPhase::Open { since } => {
                if events.saturating_sub(since) >= self.config.cooldown_events {
                    self.phase = BreakerPhase::HalfOpen { since: events };
                    self.probe_seen = 0;
                    self.probe_misses = 0;
                    return BreakerSignal::HalfOpened;
                }
                BreakerSignal::None
            }
            BreakerPhase::HalfOpen { .. } => {
                self.probe_seen += 1;
                self.probe_misses += u64::from(misspeculated);
                if self.probe_seen >= self.config.probe_events {
                    let rate = self.probe_misses as f64 / self.probe_seen as f64;
                    if rate <= self.config.close_threshold {
                        self.phase = BreakerPhase::Closed;
                        self.reset_window();
                        return BreakerSignal::Closed;
                    }
                    self.phase = BreakerPhase::Open { since: events };
                    return BreakerSignal::Reopened;
                }
                BreakerSignal::None
            }
        }
    }

    pub(crate) fn restore(
        config: BreakerConfig,
        phase: BreakerPhase,
        window: Vec<(u64, u64)>,
        cur: usize,
        warm: usize,
        probe_seen: u64,
        probe_misses: u64,
    ) -> Self {
        StormBreaker {
            config,
            phase,
            window,
            cur,
            warm,
            probe_seen,
            probe_misses,
        }
    }

    pub(crate) fn raw_parts(&self) -> (&[(u64, u64)], usize, usize, u64, u64) {
        (
            &self.window,
            self.cur,
            self.warm,
            self.probe_seen,
            self.probe_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            bucket_events: 10,
            buckets: 2,
            open_threshold: 0.5,
            close_threshold: 0.1,
            cooldown_events: 30,
            probe_events: 20,
            mass_evict_top_k: 0,
        }
    }

    /// Drives `n` events at the given miss pattern, returning the first
    /// non-None signal (and the event index it fired at).
    fn drive(
        b: &mut StormBreaker,
        events: &mut u64,
        n: u64,
        miss: impl Fn(u64) -> bool,
    ) -> Option<(BreakerSignal, u64)> {
        for i in 0..n {
            *events += 1;
            let s = b.tick(*events, miss(i));
            if s != BreakerSignal::None {
                return Some((s, *events));
            }
        }
        None
    }

    #[test]
    fn stays_closed_under_healthy_rate() {
        let mut b = StormBreaker::new(cfg()).unwrap();
        let mut events = 0;
        assert_eq!(drive(&mut b, &mut events, 500, |i| i % 20 == 0), None);
        assert_eq!(b.phase(), BreakerPhase::Closed);
    }

    #[test]
    fn opens_on_storm_but_only_with_a_full_window() {
        let mut b = StormBreaker::new(cfg()).unwrap();
        let mut events = 0;
        // All misses: the window is full after 2 buckets = 20 events; the
        // breaker must not open before that.
        let (sig, at) = drive(&mut b, &mut events, 100, |_| true).unwrap();
        assert_eq!(sig, BreakerSignal::Opened);
        assert!(at >= 20, "opened at {at} before the window was warm");
        assert!(b.suppressing());
    }

    #[test]
    fn half_opens_after_cooldown_then_closes_on_recovery() {
        let mut b = StormBreaker::new(cfg()).unwrap();
        let mut events = 0;
        drive(&mut b, &mut events, 100, |_| true).unwrap();
        let (sig, _) = drive(&mut b, &mut events, 100, |_| false).unwrap();
        assert_eq!(sig, BreakerSignal::HalfOpened);
        assert!(!b.suppressing(), "half-open probes, it does not suppress");
        let (sig, _) = drive(&mut b, &mut events, 100, |_| false).unwrap();
        assert_eq!(sig, BreakerSignal::Closed);
        assert_eq!(b.phase(), BreakerPhase::Closed);
    }

    #[test]
    fn reopens_when_probe_still_storms() {
        let mut b = StormBreaker::new(cfg()).unwrap();
        let mut events = 0;
        drive(&mut b, &mut events, 100, |_| true).unwrap();
        drive(&mut b, &mut events, 100, |_| true).unwrap(); // half-open
        let (sig, _) = drive(&mut b, &mut events, 100, |_| true).unwrap();
        assert_eq!(sig, BreakerSignal::Reopened);
        assert!(b.suppressing());
    }

    #[test]
    fn hysteresis_band_keeps_marginal_rate_open() {
        // 30% misses: above close (10%), below open (50%). A probe at
        // this rate must re-open, not close — the hysteresis band.
        let mut b = StormBreaker::new(cfg()).unwrap();
        let mut events = 0;
        drive(&mut b, &mut events, 100, |_| true).unwrap();
        drive(&mut b, &mut events, 100, |_| false).unwrap(); // half-open
        let (sig, _) = drive(&mut b, &mut events, 100, |i| i % 10 < 3).unwrap();
        assert_eq!(sig, BreakerSignal::Reopened);
    }

    #[test]
    fn tick_sequence_is_deterministic() {
        let run = || {
            let mut b = StormBreaker::new(cfg()).unwrap();
            (1..=400).map(|e| b.tick(e, e % 3 != 0)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validates_config() {
        let mut c = cfg();
        c.buckets = 0;
        assert!(StormBreaker::new(c).is_err());
        let mut c = cfg();
        c.close_threshold = 0.9;
        assert!(StormBreaker::new(c).is_err(), "close above open");
        let mut c = cfg();
        c.open_threshold = 0.0;
        assert!(StormBreaker::new(c).is_err());
        let mut c = cfg();
        c.probe_events = 0;
        assert!(StormBreaker::new(c).is_err());
    }
}
