//! The resilient runtime layer: fallible re-optimization with
//! retry/backoff, and the misspeculation-storm circuit breaker.
//!
//! The paper's controller assumes an infallible deployment pipeline and
//! no population-level backstop. This module supplies both missing
//! failure domains (see DESIGN.md §10):
//!
//! * [`deployer`] — `EnterBiased`/`ExitBiased` become requests that can
//!   fail transiently; the controller retries on a bounded deterministic
//!   backoff schedule and fails safe (abandon the enter, or
//!   force-disable the branch) when retries run out.
//! * [`breaker`] — a global sliding-window misspeculation-rate monitor
//!   that suppresses new deployments (and optionally mass-evicts the
//!   worst offenders) during a storm, with hysteresis against
//!   oscillation.
//!
//! Everything is opt-in: a controller built without a
//! [`ResilienceConfig`] behaves bit-identically to the pre-resilience
//! implementation, and the conformance campaign pins that equivalence.
//! With a config attached, the optimized and reference controllers still
//! run in lockstep — each holds its own deployer/breaker instance, and
//! because the components are deterministic state machines fed the same
//! request/event sequence, both sides observe identical fault schedules.

pub mod breaker;
pub mod deployer;

pub use breaker::{BreakerConfig, BreakerPhase, BreakerSignal, StormBreaker};
pub use deployer::{
    DeployKind, DeployOutcome, DeployRequest, Deployer, DeployerSpec, FaultMode, FaultScope,
    FaultSpec, FaultyDeployer, InstantDeployer, RetryPolicy,
};

use crate::params::InvalidParamsError;
use deployer::DeployerImpl;
use rsc_trace::BranchId;

/// Sentinel branch id carried by breaker transitions in the log
/// (`BreakerOpened` / `BreakerHalfOpen` / `BreakerClosed` are global
/// events, not tied to any real branch).
pub const BREAKER_BRANCH: BranchId = BranchId::new(u32::MAX);

/// Full configuration of a controller's resilience layer.
///
/// # Examples
///
/// ```
/// use rsc_control::resilience::{
///     DeployerSpec, FaultMode, FaultScope, FaultSpec, ResilienceConfig, RetryPolicy,
/// };
///
/// let config = ResilienceConfig {
///     deployer: DeployerSpec::Faulty(FaultSpec {
///         seed: 7,
///         mode: FaultMode::FixedRate { per_mille: 300 },
///         scope: FaultScope::All,
///         wasted: 100,
///     }),
///     retry: RetryPolicy::default_policy(),
///     breaker: None,
/// };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Which deployment pipeline answers re-optimization requests.
    pub deployer: DeployerSpec,
    /// Retry schedule for failed deployments.
    pub retry: RetryPolicy,
    /// Optional storm circuit breaker.
    pub breaker: Option<BreakerConfig>,
}

impl ResilienceConfig {
    /// The infallible pipeline with a default retry policy and no
    /// breaker: resilience plumbing active, behavior identical to the
    /// paper's model.
    pub fn reliable() -> Self {
        ResilienceConfig {
            deployer: DeployerSpec::Instant,
            retry: RetryPolicy::default_policy(),
            breaker: None,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), InvalidParamsError> {
        if self.retry.max_attempts == 0 {
            return Err(InvalidParamsError::bad_field(
                "retry.max_attempts",
                self.retry.max_attempts,
                "must be positive",
            ));
        }
        if let DeployerSpec::Faulty(spec) = self.deployer {
            if let FaultMode::FixedRate { per_mille } = spec.mode {
                if per_mille > 1000 {
                    return Err(InvalidParamsError::bad_field(
                        "deployer.per_mille",
                        per_mille,
                        "must be at most 1000",
                    ));
                }
            }
            if let FaultMode::Burst { period, len } = spec.mode {
                if period == 0 || len > period {
                    return Err(InvalidParamsError::bad_field(
                        "deployer.burst",
                        format_args!("{len}/{period}"),
                        "needs len <= period, period > 0",
                    ));
                }
            }
        }
        if let Some(b) = &self.breaker {
            b.validate()?;
        }
        Ok(())
    }
}

/// Runtime state of the resilience layer inside a controller. Shared by
/// the optimized and reference controllers (each holds its own
/// instance): the components are deterministic, so identical inputs keep
/// the two in lockstep, while each controller independently implements
/// its FSM reaction to the outcomes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ResilienceState {
    pub(crate) config: ResilienceConfig,
    pub(crate) deployer: DeployerImpl,
    pub(crate) breaker: Option<StormBreaker>,
    /// Deployment requests that failed (first tries and retries alike).
    pub(crate) deploy_failures: u64,
    /// Retry attempts issued after a failure.
    pub(crate) deploy_retries: u64,
    /// Branches force-disabled because repair retries ran out.
    pub(crate) forced_disables: u64,
    /// `EnterBiased` decisions suppressed by an open breaker.
    pub(crate) suppressed_enters: u64,
}

impl ResilienceState {
    pub(crate) fn new(config: ResilienceConfig) -> Result<Self, InvalidParamsError> {
        config.validate()?;
        Ok(ResilienceState {
            config,
            deployer: DeployerImpl::from_spec(config.deployer),
            breaker: match config.breaker {
                Some(b) => Some(StormBreaker::new(b)?),
                None => None,
            },
            deploy_failures: 0,
            deploy_retries: 0,
            forced_disables: 0,
            suppressed_enters: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_retry_and_fault_spec() {
        let mut c = ResilienceConfig::reliable();
        assert!(c.validate().is_ok());
        c.retry.max_attempts = 0;
        assert!(c.validate().is_err());

        let mut c = ResilienceConfig::reliable();
        c.deployer = DeployerSpec::Faulty(FaultSpec {
            seed: 0,
            mode: FaultMode::FixedRate { per_mille: 1001 },
            scope: FaultScope::All,
            wasted: 0,
        });
        assert!(c.validate().is_err());

        let mut c = ResilienceConfig::reliable();
        c.deployer = DeployerSpec::Faulty(FaultSpec {
            seed: 0,
            mode: FaultMode::Burst { period: 2, len: 3 },
            scope: FaultScope::All,
            wasted: 0,
        });
        assert!(c.validate().is_err());

        let mut c = ResilienceConfig::reliable();
        c.breaker = Some(BreakerConfig {
            buckets: 0,
            ..BreakerConfig::default_config()
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn breaker_sentinel_is_out_of_normal_range() {
        assert_eq!(BREAKER_BRANCH.index(), u32::MAX as usize);
    }
}
