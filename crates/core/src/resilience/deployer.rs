//! The deployment seam: re-optimization as a request that can fail.
//!
//! The paper models code deployment as infallible — a selection or
//! eviction decision always lands after the optimization latency. A real
//! runtime's re-optimization pipeline can reject a request (compile
//! queue full, code-cache pressure, transient JIT failure), and the
//! controller must stay fail-safe when it does. [`Deployer`] is that
//! seam: `EnterBiased`/`ExitBiased` become [`DeployRequest`]s answered
//! with a [`DeployOutcome`], and the controller owns the retry schedule
//! ([`RetryPolicy`]) and the fail-safe reaction when retries run out.
//!
//! Two deployers ship: [`InstantDeployer`] (always succeeds — the
//! paper's model, and the default) and [`FaultyDeployer`] (seeded,
//! deterministic failure injection for resilience campaigns). Fault
//! decisions are a pure function of `(seed, request ordinal, request)`,
//! so a campaign replays bit-identically from its seed.

use rsc_trace::rng::SplitMix64;
use rsc_trace::BranchId;

/// Which optimization arc a deployment request serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployKind {
    /// Deploy speculative code after an `EnterBiased` decision.
    Optimize,
    /// Deploy repaired (non-speculative) code after an `ExitBiased`
    /// decision. While this is outstanding the stale code keeps
    /// misspeculating, so repair failures are the dangerous ones.
    Repair,
}

impl DeployKind {
    /// Stable snake_case name used in metric labels and JSONL events.
    pub const fn name(self) -> &'static str {
        match self {
            DeployKind::Optimize => "optimize",
            DeployKind::Repair => "repair",
        }
    }
}

/// One deployment request issued by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployRequest {
    /// The branch whose code is being replaced.
    pub branch: BranchId,
    /// Which arc the request serves.
    pub kind: DeployKind,
    /// Dynamic instruction count at the request.
    pub instr: u64,
    /// Failed attempts so far for this transition (0 = first try).
    pub attempt: u32,
}

/// The pipeline's answer to a [`DeployRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployOutcome {
    /// Accepted: the new code goes live after the controller's
    /// optimization latency.
    Deployed,
    /// Transient failure (a timed-out request is a failure that wasted
    /// longer): nothing was deployed, and `wasted` instructions burn
    /// before a retry can even be issued.
    Failed {
        /// Instructions consumed by the failed attempt.
        wasted: u64,
    },
}

/// The deployment pipeline interface.
pub trait Deployer {
    /// Answers one deployment request. Implementations may keep internal
    /// state (the fault injector counts requests), but must be
    /// deterministic: the same request sequence yields the same outcome
    /// sequence.
    fn request(&mut self, req: &DeployRequest) -> DeployOutcome;
}

/// The infallible pipeline of the paper's model: every request deploys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstantDeployer;

impl Deployer for InstantDeployer {
    fn request(&mut self, _req: &DeployRequest) -> DeployOutcome {
        DeployOutcome::Deployed
    }
}

/// When the fault injector's failure pattern applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Fail requests of either kind.
    All,
    /// Fail only [`DeployKind::Optimize`] requests.
    OptimizeOnly,
    /// Fail only [`DeployKind::Repair`] requests — the adversarial case:
    /// the branch is left speculating a stale assumption.
    RepairOnly,
}

impl FaultScope {
    fn covers(self, kind: DeployKind) -> bool {
        match self {
            FaultScope::All => true,
            FaultScope::OptimizeOnly => kind == DeployKind::Optimize,
            FaultScope::RepairOnly => kind == DeployKind::Repair,
        }
    }
}

/// Failure pattern of the fault injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Each in-scope request fails independently with probability
    /// `per_mille / 1000`, decided by hashing the request ordinal with
    /// the seed. `1000` fails everything.
    FixedRate {
        /// Failure probability in thousandths.
        per_mille: u16,
    },
    /// The first `len` of every `period` in-scope requests fail —
    /// an outage window followed by recovery, repeating.
    Burst {
        /// Requests per cycle.
        period: u64,
        /// Failing requests at the start of each cycle.
        len: u64,
    },
    /// Every request for one specific branch fails; all others succeed.
    TargetedBranch {
        /// Index of the doomed branch.
        branch: u32,
    },
}

/// Full fault-injection specification: deterministic given the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for the per-request failure hash.
    pub seed: u64,
    /// Failure pattern.
    pub mode: FaultMode,
    /// Which request kinds the pattern applies to.
    pub scope: FaultScope,
    /// Instructions a failed attempt wastes before a retry can start.
    pub wasted: u64,
}

/// Seeded deterministic failure injection (see [`FaultSpec`]).
///
/// The only mutable state is the request ordinal, so the injector can be
/// checkpointed as a single integer and two independent controllers fed
/// the same request sequence observe the same outcomes.
///
/// # Examples
///
/// ```
/// use rsc_control::resilience::{
///     Deployer, DeployKind, DeployOutcome, DeployRequest, FaultMode, FaultScope, FaultSpec,
///     FaultyDeployer,
/// };
/// use rsc_trace::BranchId;
///
/// let spec = FaultSpec {
///     seed: 7,
///     mode: FaultMode::FixedRate { per_mille: 1000 },
///     scope: FaultScope::RepairOnly,
///     wasted: 50,
/// };
/// let mut d = FaultyDeployer::new(spec);
/// let optimize = DeployRequest {
///     branch: BranchId::new(0),
///     kind: DeployKind::Optimize,
///     instr: 100,
///     attempt: 0,
/// };
/// assert_eq!(d.request(&optimize), DeployOutcome::Deployed);
/// let repair = DeployRequest { kind: DeployKind::Repair, ..optimize };
/// assert_eq!(d.request(&repair), DeployOutcome::Failed { wasted: 50 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyDeployer {
    spec: FaultSpec,
    requests: u64,
}

impl FaultyDeployer {
    /// Creates a fault injector at request ordinal zero.
    pub fn new(spec: FaultSpec) -> Self {
        FaultyDeployer { spec, requests: 0 }
    }

    /// The fault specification.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Requests answered so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }
}

impl Deployer for FaultyDeployer {
    fn request(&mut self, req: &DeployRequest) -> DeployOutcome {
        let ordinal = self.requests;
        self.requests += 1;
        if !self.spec.scope.covers(req.kind) {
            return DeployOutcome::Deployed;
        }
        let fail = match self.spec.mode {
            FaultMode::FixedRate { per_mille } => {
                // SplitMix64 is designed to decorrelate sequential seeds,
                // so hashing the ordinal directly gives an unbiased
                // per-request coin.
                SplitMix64::new(self.spec.seed ^ ordinal).next_u64() % 1000 < u64::from(per_mille)
            }
            FaultMode::Burst { period, len } => ordinal % period.max(1) < len,
            FaultMode::TargetedBranch { branch } => req.branch.index() as u32 == branch,
        };
        if fail {
            DeployOutcome::Failed {
                wasted: self.spec.wasted,
            }
        } else {
            DeployOutcome::Deployed
        }
    }
}

/// Which deployer a controller runs (the serializable configuration
/// counterpart of the runtime [`Deployer`] objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployerSpec {
    /// [`InstantDeployer`]: the paper's infallible pipeline.
    Instant,
    /// [`FaultyDeployer`] with the given fault specification.
    Faulty(FaultSpec),
}

/// Concrete deployer storage inside a controller. Keeping this an enum
/// (rather than a boxed trait object) preserves `Clone`, equality-based
/// conformance checks, and single-integer checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeployerImpl {
    Instant(InstantDeployer),
    Faulty(FaultyDeployer),
}

impl DeployerImpl {
    pub(crate) fn from_spec(spec: DeployerSpec) -> Self {
        match spec {
            DeployerSpec::Instant => DeployerImpl::Instant(InstantDeployer),
            DeployerSpec::Faulty(f) => DeployerImpl::Faulty(FaultyDeployer::new(f)),
        }
    }

    pub(crate) fn request(&mut self, req: &DeployRequest) -> DeployOutcome {
        match self {
            DeployerImpl::Instant(d) => d.request(req),
            DeployerImpl::Faulty(d) => d.request(req),
        }
    }

    /// Request ordinal (0 for the stateless instant deployer).
    pub(crate) fn requests(&self) -> u64 {
        match self {
            DeployerImpl::Instant(_) => 0,
            DeployerImpl::Faulty(d) => d.requests,
        }
    }

    pub(crate) fn set_requests(&mut self, requests: u64) {
        if let DeployerImpl::Faulty(d) = self {
            d.requests = requests;
        }
    }
}

/// Bounded deterministic retry schedule for failed deployments.
///
/// After the `n`-th failure of one transition, the next attempt is
/// issued `wasted + backoff(n)` instructions later, where
/// `backoff(n) = min(base_backoff << (n − 1), max_backoff)` — exponential
/// growth, no jitter (determinism is load-bearing for conformance and
/// checkpoint replay). Once `max_attempts` attempts have failed the
/// controller takes its fail-safe action: an unfinished *optimize* is
/// abandoned back to the unbiased state; an unfinished *repair* force-
/// disables the branch so it can never be left speculating a stale
/// assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included) before the fail-safe fires.
    pub max_attempts: u32,
    /// Backoff after the first failure, in instructions.
    pub base_backoff: u64,
    /// Backoff ceiling, in instructions.
    pub max_backoff: u64,
}

impl RetryPolicy {
    /// A small default: 4 attempts, backoff 1,000 doubling to 8,000.
    pub fn default_policy() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 1_000,
            max_backoff: 8_000,
        }
    }

    /// Instructions to wait after `failures` attempts have failed
    /// (`failures >= 1`).
    pub fn backoff(&self, failures: u32) -> u64 {
        let shift = failures.saturating_sub(1);
        if shift >= 64 {
            return self.max_backoff;
        }
        // checked_shl only guards the shift count, not overflow.
        self.base_backoff
            .checked_mul(1u64 << shift)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(branch: u32, kind: DeployKind, attempt: u32) -> DeployRequest {
        DeployRequest {
            branch: BranchId::new(branch),
            kind,
            instr: 1000,
            attempt,
        }
    }

    #[test]
    fn instant_always_deploys() {
        let mut d = InstantDeployer;
        for i in 0..10 {
            assert_eq!(
                d.request(&req(i, DeployKind::Repair, 0)),
                DeployOutcome::Deployed
            );
        }
    }

    #[test]
    fn fixed_rate_is_deterministic_and_roughly_calibrated() {
        let spec = FaultSpec {
            seed: 42,
            mode: FaultMode::FixedRate { per_mille: 250 },
            scope: FaultScope::All,
            wasted: 10,
        };
        let outcomes = |spec| {
            let mut d = FaultyDeployer::new(spec);
            (0..4000)
                .map(|i| d.request(&req(i % 7, DeployKind::Optimize, 0)))
                .collect::<Vec<_>>()
        };
        let a = outcomes(spec);
        assert_eq!(a, outcomes(spec), "same seed, same outcomes");
        let failures = a
            .iter()
            .filter(|o| matches!(o, DeployOutcome::Failed { .. }))
            .count();
        // 25% nominal over 4000 trials: allow a generous band.
        assert!((800..1200).contains(&failures), "failures {failures}");
    }

    #[test]
    fn per_mille_extremes() {
        let mut never = FaultyDeployer::new(FaultSpec {
            seed: 1,
            mode: FaultMode::FixedRate { per_mille: 0 },
            scope: FaultScope::All,
            wasted: 0,
        });
        let mut always = FaultyDeployer::new(FaultSpec {
            seed: 1,
            mode: FaultMode::FixedRate { per_mille: 1000 },
            scope: FaultScope::All,
            wasted: 5,
        });
        for i in 0..100 {
            assert_eq!(
                never.request(&req(i, DeployKind::Repair, 0)),
                DeployOutcome::Deployed
            );
            assert_eq!(
                always.request(&req(i, DeployKind::Repair, 0)),
                DeployOutcome::Failed { wasted: 5 }
            );
        }
    }

    #[test]
    fn burst_mode_fails_a_prefix_of_each_cycle() {
        let mut d = FaultyDeployer::new(FaultSpec {
            seed: 0,
            mode: FaultMode::Burst { period: 5, len: 2 },
            scope: FaultScope::All,
            wasted: 1,
        });
        let got: Vec<bool> = (0..10)
            .map(|i| {
                matches!(
                    d.request(&req(i, DeployKind::Optimize, 0)),
                    DeployOutcome::Failed { .. }
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn targeted_branch_only_fails_its_target() {
        let mut d = FaultyDeployer::new(FaultSpec {
            seed: 0,
            mode: FaultMode::TargetedBranch { branch: 3 },
            scope: FaultScope::All,
            wasted: 9,
        });
        assert_eq!(
            d.request(&req(2, DeployKind::Repair, 0)),
            DeployOutcome::Deployed
        );
        assert_eq!(
            d.request(&req(3, DeployKind::Repair, 0)),
            DeployOutcome::Failed { wasted: 9 }
        );
    }

    #[test]
    fn scope_filters_request_kinds() {
        let spec = FaultSpec {
            seed: 0,
            mode: FaultMode::FixedRate { per_mille: 1000 },
            scope: FaultScope::RepairOnly,
            wasted: 1,
        };
        let mut d = FaultyDeployer::new(spec);
        assert_eq!(
            d.request(&req(0, DeployKind::Optimize, 0)),
            DeployOutcome::Deployed
        );
        assert_eq!(
            d.request(&req(0, DeployKind::Repair, 0)),
            DeployOutcome::Failed { wasted: 1 }
        );
        // Out-of-scope requests still advance the ordinal (the ordinal is
        // the whole checkpointable state, so it must count everything).
        assert_eq!(d.requests(), 2);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: 100,
            max_backoff: 450,
        };
        assert_eq!(p.backoff(1), 100);
        assert_eq!(p.backoff(2), 200);
        assert_eq!(p.backoff(3), 400);
        assert_eq!(p.backoff(4), 450);
        assert_eq!(p.backoff(63), 450);
        assert_eq!(p.backoff(200), 450, "shift clamps instead of panicking");
    }
}
