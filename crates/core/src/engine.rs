//! Convenience drivers: run a controller over traces and collect results.

use crate::builder::ControllerBuilder;
use crate::controller::{ReactiveController, TransitionEvent};
use crate::params::{ControllerParams, InvalidParamsError};
use crate::stats::ControlStats;
use crate::translog::TransitionLogPolicy;
use rsc_trace::{BranchId, BranchRecord, InputId, Population};

/// Chunk size used by the chunked drivers: large enough to amortize
/// dispatch, small enough that a chunk of [`BranchRecord`]s stays in L1/L2.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// The outcome of one controller run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Aggregate counters.
    pub stats: ControlStats,
    /// The transition log.
    pub transitions: Vec<TransitionEvent>,
}

/// Runs a controller over an arbitrary record stream.
///
/// # Errors
///
/// Returns an error if `params` are inconsistent.
///
/// # Examples
///
/// ```
/// use rsc_control::{engine, ControllerParams};
/// use rsc_trace::{spec2000, InputId};
///
/// let pop = spec2000::benchmark("mcf").unwrap().population(100_000);
/// let result = engine::run_trace(
///     ControllerParams::scaled(),
///     pop.trace(InputId::Eval, 100_000, 1),
/// )?;
/// assert_eq!(result.stats.events, 100_000);
/// # Ok::<(), rsc_control::InvalidParamsError>(())
/// ```
pub fn run_trace<I: IntoIterator<Item = BranchRecord>>(
    params: ControllerParams,
    trace: I,
) -> Result<RunResult, InvalidParamsError> {
    let (result, _) = run_trace_with(ReactiveController::builder(params), trace)?;
    Ok(result)
}

/// Runs a fully configured [`ControllerBuilder`] over a record stream and
/// returns the finished controller alongside the summary, so callers can
/// export telemetry ([`ReactiveController::metrics`]), snapshot it, or
/// keep observing.
///
/// # Errors
///
/// Returns an error if the builder's configuration is inconsistent.
///
/// # Examples
///
/// ```
/// use rsc_control::{engine, prelude::*};
/// use rsc_trace::{spec2000, InputId};
///
/// let pop = spec2000::benchmark("mcf").unwrap().population(50_000);
/// let builder = ReactiveController::builder(ControllerParams::scaled()).metrics();
/// let (result, ctl) = engine::run_trace_with(builder, pop.trace(InputId::Eval, 50_000, 1))?;
/// let registry = ctl.metrics().unwrap();
/// assert_eq!(registry.counter_value("rsc_events_total"), Some(result.stats.events));
/// # Ok::<(), InvalidParamsError>(())
/// ```
pub fn run_trace_with<I: IntoIterator<Item = BranchRecord>>(
    builder: ControllerBuilder,
    trace: I,
) -> Result<(RunResult, ReactiveController), InvalidParamsError> {
    let mut ctl = builder.build()?;
    for r in trace {
        ctl.observe(&r);
    }
    let stats = ctl.stats();
    let transitions = ctl.transitions().to_vec();
    Ok((RunResult { stats, transitions }, ctl))
}

/// Runs a controller over one benchmark population.
///
/// # Errors
///
/// Returns an error if `params` are inconsistent.
pub fn run_population(
    params: ControllerParams,
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
) -> Result<RunResult, InvalidParamsError> {
    run_trace(params, population.trace(input, events, seed))
}

/// Runs a controller over one benchmark population through the chunked
/// hot path ([`rsc_trace::Trace::fill`] into a reusable buffer, then
/// [`ReactiveController::observe_chunk`]).
///
/// Produces bit-identical `stats` and `transitions` to [`run_population`]
/// for the same inputs; it is simply faster. `log_policy` selects how much
/// of the transition stream to retain — pass
/// [`TransitionLogPolicy::Full`] to match `run_population` exactly, or
/// [`TransitionLogPolicy::CountsOnly`] for maximum throughput.
///
/// # Errors
///
/// Returns an error if `params` are inconsistent.
pub fn run_population_chunked(
    params: ControllerParams,
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    log_policy: TransitionLogPolicy,
) -> Result<RunResult, InvalidParamsError> {
    let builder = ReactiveController::builder(params).log_policy(log_policy);
    let (result, _) = run_population_chunked_with(builder, population, input, events, seed)?;
    Ok(result)
}

/// Chunked-driver counterpart of [`run_trace_with`]: runs a fully
/// configured [`ControllerBuilder`] over one benchmark population through
/// [`ReactiveController::observe_chunk`] and returns the finished
/// controller alongside the summary.
///
/// # Errors
///
/// Returns an error if the builder's configuration is inconsistent.
pub fn run_population_chunked_with(
    builder: ControllerBuilder,
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
) -> Result<(RunResult, ReactiveController), InvalidParamsError> {
    let mut ctl = builder.build()?;
    let mut trace = population.trace(input, events, seed);
    let mut buf = vec![
        BranchRecord {
            branch: BranchId::new(0),
            taken: false,
            instr: 0
        };
        DEFAULT_CHUNK_EVENTS
    ];
    loop {
        let n = trace.fill(&mut buf);
        if n == 0 {
            break;
        }
        ctl.observe_chunk(&buf[..n]);
    }
    let stats = ctl.stats();
    let transitions = ctl.transitions().to_vec();
    Ok((RunResult { stats, transitions }, ctl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::spec2000;

    #[test]
    fn run_population_produces_consistent_stats() {
        let pop = spec2000::benchmark("gzip").unwrap().population(50_000);
        let r = run_population(ControllerParams::scaled(), &pop, InputId::Eval, 50_000, 3).unwrap();
        assert_eq!(r.stats.events, 50_000);
        assert!(r.stats.touched > 0);
        assert!(r.stats.correct + r.stats.incorrect <= r.stats.events);
    }

    #[test]
    fn deterministic_across_runs() {
        let pop = spec2000::benchmark("vpr").unwrap().population(30_000);
        let a = run_population(ControllerParams::scaled(), &pop, InputId::Eval, 30_000, 5).unwrap();
        let b = run_population(ControllerParams::scaled(), &pop, InputId::Eval, 30_000, 5).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.transitions.len(), b.transitions.len());
    }

    #[test]
    fn chunked_run_is_bit_identical_to_per_event() {
        let pop = spec2000::benchmark("gcc").unwrap().population(60_000);
        let a =
            run_population(ControllerParams::scaled(), &pop, InputId::Eval, 60_000, 11).unwrap();
        let b = run_population_chunked(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            60_000,
            11,
            TransitionLogPolicy::Full,
        )
        .unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn chunked_counts_only_matches_stats() {
        let pop = spec2000::benchmark("gzip").unwrap().population(40_000);
        let a = run_population(ControllerParams::scaled(), &pop, InputId::Eval, 40_000, 2).unwrap();
        let b = run_population_chunked(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            40_000,
            2,
            TransitionLogPolicy::CountsOnly,
        )
        .unwrap();
        assert_eq!(a.stats, b.stats);
        assert!(b.transitions.is_empty());
    }

    #[test]
    fn invalid_params_error_out() {
        let pop = spec2000::benchmark("vpr").unwrap().population(1000);
        let mut p = ControllerParams::scaled();
        p.monitor_period = 0;
        assert!(run_population(p, &pop, InputId::Eval, 1000, 1).is_err());
    }
}
