//! The reactive speculation controller (the paper's Figure 4(b) model).
//!
//! Each static branch moves through a three-state machine:
//!
//! ```text
//!              bias >= threshold            misspec counter trips
//!   Monitor ─────────────────────► Biased ──────────────────────┐
//!      ▲  │                                                      │
//!      │  │ bias < threshold                 (eviction arc)      │
//!      │  ▼                                                      │
//!   Unbiased ◄───────────────────────────────────────────────────┘
//!      │        revisit arc: after the wait period,
//!      └──────► back to Monitor
//! ```
//!
//! Transitions into and out of the biased state deploy new code and are
//! therefore subject to the optimization latency: after selection, the
//! branch keeps running unoptimized code until the latency elapses; after
//! eviction, speculation (and its misspeculations) continue until the
//! repaired code is deployed.

use crate::counter::HysteresisCounter;
use crate::observe::{EventSink, MetricsRegistry, Telemetry};
use crate::params::{ControllerParams, Revisit};
use crate::policy::{MonitorCounts, Policy, SpecChoice};
use crate::resilience::breaker::BreakerSignal;
use crate::resilience::deployer::{DeployKind, DeployOutcome, DeployRequest};
use crate::resilience::{ResilienceConfig, ResilienceState, BREAKER_BRANCH};
use crate::stats::ControlStats;
use crate::translog::TransitionLog;
use rsc_trace::{BranchId, BranchRecord, Direction};
use std::sync::Arc;

/// What the controller did with one dynamic branch execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecDecision {
    /// The branch was not speculated (monitor/unbiased/disabled/pending
    /// deployment).
    NotSpeculated,
    /// Speculated and the outcome matched.
    Correct,
    /// Speculated and the outcome did not match.
    Incorrect,
}

impl SpecDecision {
    /// Returns `true` for [`SpecDecision::Correct`] or
    /// [`SpecDecision::Incorrect`].
    pub fn speculated(self) -> bool {
        !matches!(self, SpecDecision::NotSpeculated)
    }
}

/// Kinds of classification transitions the controller logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// Monitor decided the branch is biased (re-optimization requested).
    EnterBiased,
    /// The eviction policy fired (repair requested).
    ExitBiased,
    /// Monitor decided the branch is not biased.
    EnterUnbiased,
    /// The wait period elapsed; the branch returned to the monitor state.
    RevisitMonitor,
    /// The oscillation cap fired; the branch was permanently disabled.
    Disabled,
    /// A deployment request failed (resilience layer; logged per failed
    /// attempt, first tries and retries alike).
    DeployFailed,
    /// Repair retries ran out; the branch was force-disabled so it is
    /// never left speculating a stale assumption (resilience layer).
    ForcedDisable,
    /// Optimize retries ran out; the enter decision was abandoned and
    /// the branch returned to the unbiased state (resilience layer).
    EnterAbandoned,
    /// The storm breaker opened (global; branch is the
    /// [`BREAKER_BRANCH`](crate::resilience::BREAKER_BRANCH) sentinel).
    BreakerOpened,
    /// The storm breaker half-opened to probe recovery (global).
    BreakerHalfOpen,
    /// The storm breaker closed after a healthy probe (global).
    BreakerClosed,
}

impl TransitionKind {
    /// Every kind, in `index` order (used by counter arrays).
    pub const ALL: [TransitionKind; 11] = [
        TransitionKind::EnterBiased,
        TransitionKind::ExitBiased,
        TransitionKind::EnterUnbiased,
        TransitionKind::RevisitMonitor,
        TransitionKind::Disabled,
        TransitionKind::DeployFailed,
        TransitionKind::ForcedDisable,
        TransitionKind::EnterAbandoned,
        TransitionKind::BreakerOpened,
        TransitionKind::BreakerHalfOpen,
        TransitionKind::BreakerClosed,
    ];

    /// Dense index of this kind within [`TransitionKind::ALL`].
    pub const fn index(self) -> usize {
        match self {
            TransitionKind::EnterBiased => 0,
            TransitionKind::ExitBiased => 1,
            TransitionKind::EnterUnbiased => 2,
            TransitionKind::RevisitMonitor => 3,
            TransitionKind::Disabled => 4,
            TransitionKind::DeployFailed => 5,
            TransitionKind::ForcedDisable => 6,
            TransitionKind::EnterAbandoned => 7,
            TransitionKind::BreakerOpened => 8,
            TransitionKind::BreakerHalfOpen => 9,
            TransitionKind::BreakerClosed => 10,
        }
    }

    /// Stable snake_case name used in metric labels and JSONL events.
    pub const fn name(self) -> &'static str {
        match self {
            TransitionKind::EnterBiased => "enter_biased",
            TransitionKind::ExitBiased => "exit_biased",
            TransitionKind::EnterUnbiased => "enter_unbiased",
            TransitionKind::RevisitMonitor => "revisit_monitor",
            TransitionKind::Disabled => "disabled",
            TransitionKind::DeployFailed => "deploy_failed",
            TransitionKind::ForcedDisable => "forced_disable",
            TransitionKind::EnterAbandoned => "enter_abandoned",
            TransitionKind::BreakerOpened => "breaker_opened",
            TransitionKind::BreakerHalfOpen => "breaker_half_open",
            TransitionKind::BreakerClosed => "breaker_closed",
        }
    }
}

/// One logged transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionEvent {
    /// The branch that transitioned.
    pub branch: BranchId,
    /// What happened.
    pub kind: TransitionKind,
    /// Global dynamic branch-event index at the decision.
    pub event_index: u64,
    /// Dynamic instruction count at the decision.
    pub instr: u64,
    /// The speculated direction, for enter/exit-biased transitions.
    pub direction: Option<Direction>,
}

/// Externally comparable view of the eviction bookkeeping inside the
/// biased state (see [`BranchStateView`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerView {
    /// Hysteresis-counter eviction: the current counter value.
    Counter {
        /// Saturating counter value in `[0, threshold]`.
        value: u32,
    },
    /// Sampled eviction: position within the current period.
    Sampling {
        /// Executions into the current sampling period.
        pos: u64,
        /// Sampled executions that matched the speculated direction.
        matched: u64,
        /// Executions sampled so far this period.
        sampled: u64,
    },
    /// Eviction disabled.
    Never,
}

/// Externally comparable view of one branch's FSM state.
///
/// This is the observable content of the controller's per-branch state:
/// two controller implementations agree on a branch exactly when their
/// views are equal. The differential conformance harness
/// (`rsc-conformance`) compares these between [`ReactiveController`] and
/// the golden [`ReferenceController`](crate::reference::ReferenceController).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchStateView {
    /// Monitoring: the window counters accumulated so far.
    Monitor {
        /// Executions observed in this monitor window.
        execs: u64,
        /// Executions sampled (equal to `execs` at sample rate 1).
        samples: u64,
        /// Sampled executions that were taken.
        taken: u64,
    },
    /// Selected, waiting for the optimized code to deploy.
    PendingBiased {
        /// Instruction count at which the new code goes live.
        deadline: u64,
        /// The speculated direction.
        dir: Direction,
    },
    /// Speculating.
    Biased {
        /// The speculated direction.
        dir: Direction,
        /// Eviction bookkeeping.
        tracker: TrackerView,
    },
    /// Evicted, stale speculative code still running until the deadline.
    PendingMonitor {
        /// Instruction count at which the repaired code goes live.
        deadline: u64,
        /// The direction the stale code still speculates.
        dir: Direction,
    },
    /// Classified unbiased; counting down to the revisit (if any).
    Unbiased {
        /// Executions left before re-monitoring (`None` = never).
        remaining: Option<u64>,
    },
    /// Permanently disabled by the oscillation cap.
    Disabled,
    /// Selected, but the optimize deployment failed; waiting out the
    /// backoff before retrying. The branch runs unoptimized code
    /// (resilience layer).
    RetryBiased {
        /// Instruction count at which the next attempt is issued.
        next: u64,
        /// The direction the optimized code will speculate.
        dir: Direction,
        /// Failed attempts so far.
        attempt: u32,
    },
    /// Evicted, but the repair deployment failed; the stale speculative
    /// code keeps running (and misspeculating) until a retry lands or
    /// the branch is force-disabled (resilience layer).
    RetryMonitor {
        /// Instruction count at which the next attempt is issued.
        next: u64,
        /// The direction the stale code still speculates.
        dir: Direction,
        /// Failed attempts so far.
        attempt: u32,
    },
}

/// Full externally comparable snapshot of one branch: FSM state plus the
/// lifetime counters that feed [`ControlStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchSnapshot {
    /// The FSM state.
    pub state: BranchStateView,
    /// Lifetime entries into the biased state.
    pub entries: u32,
    /// Entries since the last flush (what the oscillation cap counts).
    pub entries_since_flush: u32,
    /// Lifetime evictions from the biased state.
    pub evictions: u32,
    /// Dynamic executions observed.
    pub execs: u64,
}

impl BranchSnapshot {
    /// The snapshot of a branch that has never executed: a fresh monitor
    /// state with zeroed counters.
    pub fn untouched() -> Self {
        BranchSnapshot {
            state: BranchStateView::Monitor {
                execs: 0,
                samples: 0,
                taken: 0,
            },
            entries: 0,
            entries_since_flush: 0,
            evictions: 0,
            execs: 0,
        }
    }
}

/// Eviction bookkeeping inside the biased state.
///
/// A [`Policy`](crate::policy::Policy) picks the tracker (and its
/// parametrization) on each biased entry via
/// [`Policy::evict`](crate::policy::Policy::evict), and folds outcomes
/// into it via [`Policy::observe`](crate::policy::Policy::observe). The
/// chunked fast paths inline the standard `Counter`/`Never` semantics —
/// see the [policy module docs](crate::policy) for the obligations.
#[derive(Debug, Clone)]
pub enum EvictTracker {
    /// An asymmetric saturating counter; evicts when it trips.
    Counter(HysteresisCounter),
    /// Periodic re-sampling against
    /// [`EvictionMode::Sampling`](crate::params::EvictionMode::Sampling)
    /// parameters.
    Sampling {
        /// Position within the current sampling period.
        pos: u64,
        /// Correct speculations among this period's samples.
        matched: u64,
        /// Samples taken this period.
        sampled: u64,
    },
    /// No eviction bookkeeping (the open-loop configuration).
    Never,
}

/// Per-branch controller state.
#[derive(Debug, Clone)]
pub(crate) enum State {
    Monitor {
        execs: u64,
        samples: u64,
        taken: u64,
    },
    PendingBiased {
        deadline: u64,
        dir: Direction,
    },
    Biased {
        dir: Direction,
        tracker: EvictTracker,
    },
    PendingMonitor {
        deadline: u64,
        dir: Direction,
    },
    Unbiased {
        remaining: Option<u64>,
    },
    Disabled,
    RetryBiased {
        next: u64,
        dir: Direction,
        attempt: u32,
    },
    RetryMonitor {
        next: u64,
        dir: Direction,
        attempt: u32,
    },
}

impl State {
    pub(crate) fn fresh_monitor() -> State {
        State::Monitor {
            execs: 0,
            samples: 0,
            taken: 0,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct BranchCtl {
    pub(crate) state: State,
    /// Lifetime entries into the biased state (statistics).
    pub(crate) entries: u32,
    /// Entries since the last flush (what the oscillation cap counts).
    pub(crate) entries_since_flush: u32,
    pub(crate) evictions: u32,
    pub(crate) execs: u64,
    /// Misspeculations since the storm breaker last opened; ranks the
    /// mass-eviction candidates. Only maintained when a breaker is
    /// configured, and never part of the comparable snapshot.
    pub(crate) recent_misses: u64,
}

impl BranchCtl {
    pub(crate) fn new() -> Self {
        BranchCtl {
            state: State::fresh_monitor(),
            entries: 0,
            entries_since_flush: 0,
            evictions: 0,
            execs: 0,
            recent_misses: 0,
        }
    }
}

/// The reactive controller: one FSM per static branch plus global
/// statistics and a transition log.
///
/// Construct with [`ReactiveController::builder`] — the only
/// construction path. The decision rules (classification, eviction
/// parametrization, biased-state updates) come from the builder's
/// [`Policy`](crate::policy::Policy) (default: the paper-exact
/// [`PaperFsm`](crate::policy::PaperFsm)); everything else — deployment
/// latency, retries, the oscillation cap, the revisit arc, telemetry —
/// is policy-independent environment owned by the controller.
///
/// # Examples
///
/// ```
/// use rsc_control::prelude::*;
/// use rsc_trace::{spec2000, InputId};
///
/// let pop = spec2000::benchmark("gzip").unwrap().population(200_000);
/// let mut ctl = ReactiveController::builder(ControllerParams::scaled()).build()?;
/// for r in pop.trace(InputId::Eval, 200_000, 1) {
///     ctl.observe(&r);
/// }
/// let stats = ctl.stats();
/// assert!(stats.correct > stats.incorrect);
/// # Ok::<(), InvalidParamsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReactiveController {
    pub(crate) params: ControllerParams,
    pub(crate) branches: Vec<BranchCtl>,
    pub(crate) log: TransitionLog,
    pub(crate) events: u64,
    pub(crate) instructions: u64,
    pub(crate) correct: u64,
    pub(crate) incorrect: u64,
    /// Opt-in resilience layer. `None` keeps the controller bit-identical
    /// to the pre-resilience implementation (and on the allocation-free
    /// chunked fast path).
    pub(crate) resilience: Option<ResilienceState>,
    /// Opt-in observability (metrics registry and/or event sink),
    /// assembled by the builder. `None` keeps the disabled fast path a
    /// single pointer-sized check.
    pub(crate) telemetry: Option<Box<Telemetry>>,
    /// The decision rules. Policies are stateless configuration (all
    /// mutable per-branch state lives in [`BranchCtl`]), so clones and
    /// shards share one `Arc`.
    pub(crate) policy: Arc<dyn Policy>,
}

/// What a call to [`ReactiveController::observe_chunk`] did, in aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkSummary {
    /// Events processed (the chunk length).
    pub events: u64,
    /// Events that were speculated (correct or incorrect).
    pub speculated: u64,
    /// Correct speculations in this chunk.
    pub correct: u64,
    /// Misspeculations in this chunk.
    pub incorrect: u64,
}

impl ReactiveController {
    /// The resilience configuration, if the layer is attached.
    pub fn resilience_config(&self) -> Option<&ResilienceConfig> {
        self.resilience.as_ref().map(|rs| &rs.config)
    }

    /// The transition log, with its retention policy and exact per-kind
    /// counters.
    pub fn transition_log(&self) -> &TransitionLog {
        &self.log
    }

    /// The controller's parameters.
    pub fn params(&self) -> &ControllerParams {
        &self.params
    }

    /// The active control policy.
    pub fn policy(&self) -> &Arc<dyn Policy> {
        &self.policy
    }

    /// The active policy's stable identifier (checkpoints, metrics).
    pub fn policy_id(&self) -> &'static str {
        self.policy.id()
    }

    fn log_transition(
        &mut self,
        branch: BranchId,
        kind: TransitionKind,
        instr: u64,
        direction: Option<Direction>,
    ) {
        let ev = TransitionEvent {
            branch,
            kind,
            event_index: self.events,
            instr,
            direction,
        };
        self.log.push(ev);
        if let Some(t) = &mut self.telemetry {
            t.on_transition(&ev);
        }
    }

    /// Forgets every classification, returning all touched branches to a
    /// fresh monitor state.
    ///
    /// This models a Dynamo-style *fragment cache flush*: the optimizer
    /// discards all generated code on a suspected phase change and
    /// re-learns from scratch. Oscillation-cap entry counts are cleared
    /// too (the flushed optimizer has no memory of past oscillation), so a
    /// flush-based policy can re-optimize branches a capped reactive
    /// policy would refuse. Statistics and the transition log are
    /// preserved; no transition events are emitted for the flush itself.
    pub fn flush_all(&mut self) {
        for b in &mut self.branches {
            b.state = State::fresh_monitor();
            b.entries_since_flush = 0;
        }
    }

    /// Routes a deployment request through the resilience layer; without
    /// one, deployment is infallible (the paper's model).
    fn deploy(
        &mut self,
        branch: BranchId,
        kind: DeployKind,
        instr: u64,
        attempt: u32,
    ) -> DeployOutcome {
        let outcome = match &mut self.resilience {
            Some(rs) => rs.deployer.request(&DeployRequest {
                branch,
                kind,
                instr,
                attempt,
            }),
            None => DeployOutcome::Deployed,
        };
        if let Some(t) = &mut self.telemetry {
            t.on_deploy(branch, kind, attempt, instr, outcome);
        }
        outcome
    }

    /// The unbiased parking state per the revisit policy.
    fn fresh_unbiased(&self) -> State {
        State::Unbiased {
            remaining: match self.params.revisit {
                Revisit::After(n) => Some(n),
                Revisit::Never => None,
            },
        }
    }

    /// Mass-evicts the `k` currently-biased branches with the most recent
    /// misspeculations (ties broken by branch index, so the order is
    /// deterministic). Modeled as a fragment-cache invalidation — reliable
    /// and immediate, bypassing the deployment pipeline.
    fn mass_evict(&mut self, k: usize, instr: u64) {
        let mut candidates: Vec<(u64, usize)> = self
            .branches
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.state, State::Biased { .. }))
            .map(|(i, b)| (b.recent_misses, i))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        candidates.truncate(k);
        for (_, i) in candidates {
            let dir = match &self.branches[i].state {
                State::Biased { dir, .. } => *dir,
                _ => unreachable!("candidates are biased"),
            };
            self.branches[i].evictions += 1;
            self.log_transition(
                BranchId::new(i as u32),
                TransitionKind::ExitBiased,
                instr,
                Some(dir),
            );
            self.branches[i].state = State::fresh_monitor();
        }
    }

    /// Advances the storm breaker by one observed event and reacts to any
    /// phase change. Only called when a breaker is configured.
    fn breaker_tick(&mut self, r: &BranchRecord, decision: SpecDecision) {
        let miss = decision == SpecDecision::Incorrect;
        if miss {
            self.branches[r.branch.index()].recent_misses += 1;
        }
        let events = self.events;
        let signal = {
            let rs = self.resilience.as_mut().expect("breaker_tick gated");
            rs.breaker
                .as_mut()
                .expect("breaker_tick gated")
                .tick(events, miss)
        };
        match signal {
            BreakerSignal::None => {}
            BreakerSignal::Opened | BreakerSignal::Reopened => {
                self.log_transition(BREAKER_BRANCH, TransitionKind::BreakerOpened, r.instr, None);
                let top_k = self
                    .resilience
                    .as_ref()
                    .and_then(|rs| rs.config.breaker)
                    .map_or(0, |b| b.mass_evict_top_k);
                if top_k > 0 {
                    self.mass_evict(top_k, r.instr);
                }
                // Each storm ranks offenders afresh.
                for b in &mut self.branches {
                    b.recent_misses = 0;
                }
            }
            BreakerSignal::HalfOpened => {
                self.log_transition(
                    BREAKER_BRANCH,
                    TransitionKind::BreakerHalfOpen,
                    r.instr,
                    None,
                );
            }
            BreakerSignal::Closed => {
                self.log_transition(BREAKER_BRANCH, TransitionKind::BreakerClosed, r.instr, None);
            }
        }
    }

    /// Feeds one dynamic branch execution through the branch's FSM and
    /// returns what the speculation system did with it.
    pub fn observe(&mut self, r: &BranchRecord) -> SpecDecision {
        let decision = self.observe_inner(r);
        let has_breaker = self
            .resilience
            .as_ref()
            .is_some_and(|rs| rs.breaker.is_some());
        if has_breaker {
            self.breaker_tick(r, decision);
        }
        if decision == SpecDecision::Incorrect {
            if let Some(m) = self.telemetry.as_mut().and_then(|t| t.metrics.as_mut()) {
                m.on_misspeculation(self.events);
            }
        }
        decision
    }

    fn observe_inner(&mut self, r: &BranchRecord) -> SpecDecision {
        let idx = r.branch.index();
        if idx >= self.branches.len() {
            self.branches.resize_with(idx + 1, BranchCtl::new);
        }
        self.events += 1;
        self.instructions = self.instructions.max(r.instr);
        self.branches[idx].execs += 1;

        // Deployment deadlines are checked before processing so that the
        // first post-deadline execution already runs the new code.
        loop {
            let state = std::mem::replace(&mut self.branches[idx].state, State::Disabled);
            match state {
                State::Disabled => {
                    self.branches[idx].state = State::Disabled;
                    return SpecDecision::NotSpeculated;
                }
                State::Monitor {
                    mut execs,
                    mut samples,
                    mut taken,
                } => {
                    if execs % self.params.monitor_sample_rate == 0 {
                        samples += 1;
                        taken += u64::from(r.taken);
                    }
                    execs += 1;
                    let choice = self.policy.decide(
                        MonitorCounts {
                            execs,
                            samples,
                            taken,
                        },
                        &self.params,
                    );
                    let SpecChoice::Speculate(dir) = choice else {
                        if choice == SpecChoice::Continue {
                            self.branches[idx].state = State::Monitor {
                                execs,
                                samples,
                                taken,
                            };
                        } else {
                            self.branches[idx].state = self.fresh_unbiased();
                            self.log_transition(
                                r.branch,
                                TransitionKind::EnterUnbiased,
                                r.instr,
                                None,
                            );
                        }
                        return SpecDecision::NotSpeculated;
                    };
                    {
                        // An open storm breaker suppresses the deployment:
                        // the branch parks as unbiased (no entry, no log)
                        // and the revisit arc re-monitors it after the
                        // storm.
                        if self
                            .resilience
                            .as_ref()
                            .is_some_and(|rs| rs.breaker.as_ref().is_some_and(|b| b.suppressing()))
                        {
                            if let Some(rs) = &mut self.resilience {
                                rs.suppressed_enters += 1;
                            }
                            self.branches[idx].state = self.fresh_unbiased();
                            return SpecDecision::NotSpeculated;
                        }
                        // Oscillation cap: refuse the (limit+1)-th entry.
                        if let Some(limit) = self.params.oscillation_limit {
                            if self.branches[idx].entries_since_flush >= limit {
                                self.branches[idx].state = State::Disabled;
                                self.log_transition(
                                    r.branch,
                                    TransitionKind::Disabled,
                                    r.instr,
                                    None,
                                );
                                return SpecDecision::NotSpeculated;
                            }
                        }
                        self.branches[idx].entries += 1;
                        self.branches[idx].entries_since_flush += 1;
                        self.log_transition(
                            r.branch,
                            TransitionKind::EnterBiased,
                            r.instr,
                            Some(dir),
                        );
                        match self.deploy(r.branch, DeployKind::Optimize, r.instr, 0) {
                            DeployOutcome::Deployed => {
                                if self.params.optimization_latency == 0 {
                                    let tracker = self
                                        .policy
                                        .evict(&self.params, self.branches[idx].evictions);
                                    self.branches[idx].state = State::Biased { dir, tracker };
                                } else {
                                    self.branches[idx].state = State::PendingBiased {
                                        deadline: r.instr + self.params.optimization_latency,
                                        dir,
                                    };
                                }
                            }
                            DeployOutcome::Failed { wasted } => {
                                let retry = self
                                    .resilience
                                    .as_ref()
                                    .expect("faults need a layer")
                                    .config
                                    .retry;
                                self.resilience.as_mut().expect("checked").deploy_failures += 1;
                                self.log_transition(
                                    r.branch,
                                    TransitionKind::DeployFailed,
                                    r.instr,
                                    Some(dir),
                                );
                                if retry.max_attempts <= 1 {
                                    self.log_transition(
                                        r.branch,
                                        TransitionKind::EnterAbandoned,
                                        r.instr,
                                        None,
                                    );
                                    self.branches[idx].state = self.fresh_unbiased();
                                } else {
                                    self.branches[idx].state = State::RetryBiased {
                                        next: r.instr + wasted + retry.backoff(1),
                                        dir,
                                        attempt: 1,
                                    };
                                }
                            }
                        }
                    }
                    return SpecDecision::NotSpeculated;
                }
                State::PendingBiased { deadline, dir } => {
                    if r.instr >= deadline {
                        // New code deployed; reprocess this execution as
                        // biased.
                        let tracker = self
                            .policy
                            .evict(&self.params, self.branches[idx].evictions);
                        self.branches[idx].state = State::Biased { dir, tracker };
                        continue;
                    }
                    self.branches[idx].state = State::PendingBiased { deadline, dir };
                    return SpecDecision::NotSpeculated;
                }
                State::Biased { dir, mut tracker } => {
                    let correct = dir.matches(r.taken);
                    let decision = if correct {
                        self.correct += 1;
                        SpecDecision::Correct
                    } else {
                        self.incorrect += 1;
                        SpecDecision::Incorrect
                    };
                    let evict = self.policy.observe(&mut tracker, correct, &self.params);
                    if evict {
                        self.branches[idx].evictions += 1;
                        self.log_transition(
                            r.branch,
                            TransitionKind::ExitBiased,
                            r.instr,
                            Some(dir),
                        );
                        match self.deploy(r.branch, DeployKind::Repair, r.instr, 0) {
                            DeployOutcome::Deployed => {
                                if self.params.optimization_latency == 0 {
                                    self.branches[idx].state = State::fresh_monitor();
                                } else {
                                    self.branches[idx].state = State::PendingMonitor {
                                        deadline: r.instr + self.params.optimization_latency,
                                        dir,
                                    };
                                }
                            }
                            DeployOutcome::Failed { wasted } => {
                                let retry = self
                                    .resilience
                                    .as_ref()
                                    .expect("faults need a layer")
                                    .config
                                    .retry;
                                self.resilience.as_mut().expect("checked").deploy_failures += 1;
                                self.log_transition(
                                    r.branch,
                                    TransitionKind::DeployFailed,
                                    r.instr,
                                    Some(dir),
                                );
                                if retry.max_attempts <= 1 {
                                    // Fail safe: never leave the branch
                                    // speculating a stale assumption.
                                    self.log_transition(
                                        r.branch,
                                        TransitionKind::ForcedDisable,
                                        r.instr,
                                        None,
                                    );
                                    self.resilience.as_mut().expect("checked").forced_disables += 1;
                                    self.branches[idx].state = State::Disabled;
                                } else {
                                    self.branches[idx].state = State::RetryMonitor {
                                        next: r.instr + wasted + retry.backoff(1),
                                        dir,
                                        attempt: 1,
                                    };
                                }
                            }
                        }
                    } else {
                        self.branches[idx].state = State::Biased { dir, tracker };
                    }
                    return decision;
                }
                State::PendingMonitor { deadline, dir } => {
                    if r.instr >= deadline {
                        // Repaired code deployed; this execution is
                        // monitored, not speculated.
                        self.branches[idx].state = State::fresh_monitor();
                        continue;
                    }
                    // The stale speculative code is still running.
                    self.branches[idx].state = State::PendingMonitor { deadline, dir };
                    return if dir.matches(r.taken) {
                        self.correct += 1;
                        SpecDecision::Correct
                    } else {
                        self.incorrect += 1;
                        SpecDecision::Incorrect
                    };
                }
                State::Unbiased { remaining } => {
                    match remaining {
                        Some(n) if n <= 1 => {
                            self.branches[idx].state = State::fresh_monitor();
                            self.log_transition(
                                r.branch,
                                TransitionKind::RevisitMonitor,
                                r.instr,
                                None,
                            );
                        }
                        Some(n) => {
                            self.branches[idx].state = State::Unbiased {
                                remaining: Some(n - 1),
                            };
                        }
                        None => {
                            self.branches[idx].state = State::Unbiased { remaining: None };
                        }
                    }
                    return SpecDecision::NotSpeculated;
                }
                State::RetryBiased { next, dir, attempt } => {
                    // The optimize deployment failed earlier; the branch
                    // runs unoptimized code while waiting out the backoff.
                    if r.instr < next {
                        self.branches[idx].state = State::RetryBiased { next, dir, attempt };
                        return SpecDecision::NotSpeculated;
                    }
                    self.resilience
                        .as_mut()
                        .expect("retry needs a layer")
                        .deploy_retries += 1;
                    match self.deploy(r.branch, DeployKind::Optimize, r.instr, attempt) {
                        DeployOutcome::Deployed => {
                            self.branches[idx].state = if self.params.optimization_latency == 0 {
                                State::Biased {
                                    dir,
                                    tracker: self
                                        .policy
                                        .evict(&self.params, self.branches[idx].evictions),
                                }
                            } else {
                                State::PendingBiased {
                                    deadline: r.instr + self.params.optimization_latency,
                                    dir,
                                }
                            };
                            // Reprocess: the first post-deploy execution
                            // already runs the new code.
                            continue;
                        }
                        DeployOutcome::Failed { wasted } => {
                            let retry = self.resilience.as_ref().expect("checked").config.retry;
                            self.resilience.as_mut().expect("checked").deploy_failures += 1;
                            self.log_transition(
                                r.branch,
                                TransitionKind::DeployFailed,
                                r.instr,
                                Some(dir),
                            );
                            let failures = attempt + 1;
                            if failures >= retry.max_attempts {
                                self.log_transition(
                                    r.branch,
                                    TransitionKind::EnterAbandoned,
                                    r.instr,
                                    None,
                                );
                                self.branches[idx].state = self.fresh_unbiased();
                            } else {
                                self.branches[idx].state = State::RetryBiased {
                                    next: r.instr + wasted + retry.backoff(failures),
                                    dir,
                                    attempt: failures,
                                };
                            }
                            return SpecDecision::NotSpeculated;
                        }
                    }
                }
                State::RetryMonitor { next, dir, attempt } => {
                    // The repair deployment failed earlier: the stale
                    // speculative code is still running (and possibly
                    // misspeculating) while the backoff elapses.
                    if r.instr >= next {
                        self.resilience
                            .as_mut()
                            .expect("retry needs a layer")
                            .deploy_retries += 1;
                        match self.deploy(r.branch, DeployKind::Repair, r.instr, attempt) {
                            DeployOutcome::Deployed => {
                                self.branches[idx].state = if self.params.optimization_latency == 0
                                {
                                    State::fresh_monitor()
                                } else {
                                    State::PendingMonitor {
                                        deadline: r.instr + self.params.optimization_latency,
                                        dir,
                                    }
                                };
                                // Reprocess under the repaired (or still
                                // pending) code.
                                continue;
                            }
                            DeployOutcome::Failed { wasted } => {
                                let retry = self.resilience.as_ref().expect("checked").config.retry;
                                self.resilience.as_mut().expect("checked").deploy_failures += 1;
                                self.log_transition(
                                    r.branch,
                                    TransitionKind::DeployFailed,
                                    r.instr,
                                    Some(dir),
                                );
                                let failures = attempt + 1;
                                if failures >= retry.max_attempts {
                                    // Fail safe: repair is unreachable, so
                                    // the branch is disabled rather than
                                    // left speculating stale.
                                    self.log_transition(
                                        r.branch,
                                        TransitionKind::ForcedDisable,
                                        r.instr,
                                        None,
                                    );
                                    self.resilience.as_mut().expect("checked").forced_disables += 1;
                                    self.branches[idx].state = State::Disabled;
                                    return SpecDecision::NotSpeculated;
                                }
                                self.branches[idx].state = State::RetryMonitor {
                                    next: r.instr + wasted + retry.backoff(failures),
                                    dir,
                                    attempt: failures,
                                };
                            }
                        }
                    } else {
                        self.branches[idx].state = State::RetryMonitor { next, dir, attempt };
                    }
                    // The stale speculative code is still running.
                    return if dir.matches(r.taken) {
                        self.correct += 1;
                        SpecDecision::Correct
                    } else {
                        self.incorrect += 1;
                        SpecDecision::Incorrect
                    };
                }
            }
        }
    }

    /// Feeds a chunk of dynamic branch executions through the controller.
    ///
    /// Semantically identical to calling [`observe`](Self::observe) on each
    /// record in order — statistics, per-branch state, and the transition
    /// log come out bit-identical — but the steady-state FSM arms
    /// (disabled, unbiased waiting, mid-window monitoring, biased with a
    /// hysteresis counter) are handled inline without the per-event
    /// state-swap machinery, and the branch table is resized at most once
    /// per chunk. Rare arms (classification decisions, deployment
    /// deadlines, sampled eviction) fall back to `observe`.
    pub fn observe_chunk(&mut self, records: &[BranchRecord]) -> ChunkSummary {
        // The resilience layer adds rare-arm states and a global breaker
        // that the fast arms do not model, and telemetry hooks fire from
        // the per-event path: delegate to it (still allocation-free — the
        // summary falls out of counter deltas) and keep the fast path
        // exact for the common, fully-disabled case.
        if self.resilience.is_some() || self.telemetry.is_some() {
            let start_events = self.events;
            let start_correct = self.correct;
            let start_incorrect = self.incorrect;
            for r in records {
                self.observe(r);
            }
            let correct = self.correct - start_correct;
            let incorrect = self.incorrect - start_incorrect;
            return ChunkSummary {
                events: self.events - start_events,
                speculated: correct + incorrect,
                correct,
                incorrect,
            };
        }

        // One resize covers every record in the chunk.
        let max_idx = records.iter().map(|r| r.branch.index()).max();
        if let Some(max_idx) = max_idx {
            if max_idx >= self.branches.len() {
                self.branches.resize_with(max_idx + 1, BranchCtl::new);
            }
        }

        let params = self.params;
        let monitor_sample_rate = params.monitor_sample_rate;
        let sample_every_exec = monitor_sample_rate == 1;
        let optimization_latency = params.optimization_latency;
        // Hoisted so the hot loop never borrows `self` for the policy:
        // `observe_run` bounds the monitor fast arm, and a policy with a
        // non-standard `observe` opts its biased branches out of the
        // inlined tracker arms.
        let policy = Arc::clone(&self.policy);
        let custom_observe = policy.custom_observe();

        // The summary falls out of the counter deltas, and the counters
        // live in locals so the hot loop keeps them in registers; they sync
        // with `self` only around slow-path fallbacks.
        let start_events = self.events;
        let start_correct = self.correct;
        let start_incorrect = self.incorrect;
        let mut events = self.events;
        let mut instructions = self.instructions;
        let mut correct = self.correct;
        let mut incorrect = self.incorrect;

        for r in records {
            let idx = r.branch.index();
            let b = &mut self.branches[idx];
            // A fast arm either fully handles the event or backs out
            // without mutating anything, so the `observe` fallback never
            // double-counts. Eviction needs a state swap, which cannot
            // happen while the match borrows the state: it is deferred.
            let mut evict: Option<Direction> = None;
            let mut slow = false;
            match &mut b.state {
                State::Disabled => {
                    b.execs += 1;
                    events += 1;
                    instructions = instructions.max(r.instr);
                }
                State::Unbiased { remaining } => match remaining {
                    // The revisit arc logs a transition: slow path.
                    Some(n) if *n <= 1 => slow = true,
                    Some(n) => {
                        *n -= 1;
                        b.execs += 1;
                        events += 1;
                        instructions = instructions.max(r.instr);
                    }
                    None => {
                        b.execs += 1;
                        events += 1;
                        instructions = instructions.max(r.instr);
                    }
                },
                State::Monitor {
                    execs,
                    samples,
                    taken,
                } => {
                    // Inline only executions inside the policy's guaranteed
                    // monitor headroom; any event that could classify goes
                    // through `observe`.
                    let counts = MonitorCounts {
                        execs: *execs,
                        samples: *samples,
                        taken: *taken,
                    };
                    if policy.observe_run(counts, &params) >= 1 {
                        if sample_every_exec || *execs % monitor_sample_rate == 0 {
                            *samples += 1;
                            *taken += u64::from(r.taken);
                        }
                        *execs += 1;
                        b.execs += 1;
                        events += 1;
                        instructions = instructions.max(r.instr);
                    } else {
                        slow = true;
                    }
                }
                State::Biased { dir, tracker } => match tracker {
                    EvictTracker::Counter(c) if !custom_observe => {
                        let matched = dir.matches(r.taken);
                        if matched {
                            c.correct();
                            correct += 1;
                        } else {
                            c.misspeculation();
                            incorrect += 1;
                        }
                        b.execs += 1;
                        events += 1;
                        instructions = instructions.max(r.instr);
                        if c.should_evict() {
                            evict = Some(*dir);
                        }
                    }
                    EvictTracker::Never if !custom_observe => {
                        if dir.matches(r.taken) {
                            correct += 1;
                        } else {
                            incorrect += 1;
                        }
                        b.execs += 1;
                        events += 1;
                        instructions = instructions.max(r.instr);
                    }
                    // Sampled eviction, or a policy with a non-standard
                    // `observe`: per-event path.
                    _ => slow = true,
                },
                // Deployment deadlines can cascade through several states:
                // slow path. Retry states only exist with the resilience
                // layer, which already took the per-event path above.
                State::PendingBiased { .. }
                | State::PendingMonitor { .. }
                | State::RetryBiased { .. }
                | State::RetryMonitor { .. } => slow = true,
            }

            if let Some(dir) = evict {
                b.evictions += 1;
                self.log.push(TransitionEvent {
                    branch: r.branch,
                    kind: TransitionKind::ExitBiased,
                    event_index: events,
                    instr: r.instr,
                    direction: Some(dir),
                });
                b.state = if optimization_latency == 0 {
                    State::fresh_monitor()
                } else {
                    State::PendingMonitor {
                        deadline: r.instr + optimization_latency,
                        dir,
                    }
                };
            }

            if slow {
                self.events = events;
                self.instructions = instructions;
                self.correct = correct;
                self.incorrect = incorrect;
                self.observe(r);
                events = self.events;
                instructions = self.instructions;
                correct = self.correct;
                incorrect = self.incorrect;
            }
        }

        self.events = events;
        self.instructions = instructions;
        self.correct = correct;
        self.incorrect = incorrect;

        let chunk_correct = correct - start_correct;
        let chunk_incorrect = incorrect - start_incorrect;
        ChunkSummary {
            events: events - start_events,
            speculated: chunk_correct + chunk_incorrect,
            correct: chunk_correct,
            incorrect: chunk_incorrect,
        }
    }

    /// Feeds branch-grouped, routed events through the controller: `runs`
    /// is a sequence of `(branch_index, len)` headers; `taken` holds the
    /// concatenated per-event outcomes and `offs` each event's index into
    /// `records`, the *original* (unrouted) block, so all `len` events of
    /// one run belong to one branch, in that branch's original event
    /// order. `max_instr` is the block-wide instruction high-water mark,
    /// precomputed by the router. This is the sharded engine's per-shard
    /// hot path.
    ///
    /// Per-branch decisions, statistics, and transition *counts* are
    /// bit-identical to [`observe`](Self::observe)-ing the same events,
    /// because the FSM for branch `b` never reads another branch's state;
    /// only the interleaving of *different branches* (and therefore the
    /// order of the shard-local transition log, already documented as
    /// shard-local semantics) differs from arrival order. Grouping buys
    /// the big win: the state dispatch and counters for a branch stay in
    /// registers for a whole run instead of being re-loaded per event,
    /// and the steady-state arms consume a run in bulk — only rare arms
    /// (classification, deployment deadlines, sampled eviction) chase
    /// `offs` back to the full record and fall into `observe` one event
    /// at a time.
    ///
    /// One deliberate deviation from per-event bookkeeping: instead of
    /// folding every event's `instr` into the per-shard high-water mark,
    /// the shard's `instructions` is advanced to `max_instr` once at the
    /// end. A shard's mark can therefore run *ahead* of the events it
    /// owns (it reflects the whole routed block), but the merged
    /// cross-shard statistic — the only `instructions` value the sharded
    /// engine exposes as equal to the sequential controller's — is the
    /// maximum over shards and stays exact. Deadline and transition
    /// timestamps always use the real per-event `instr` from `records`.
    pub(crate) fn observe_routed(
        &mut self,
        runs: &[(u32, u32)],
        taken: &[u8],
        offs: &[u16],
        records: &[BranchRecord],
        max_instr: u64,
    ) -> ChunkSummary {
        debug_assert_eq!(taken.len(), offs.len());
        debug_assert_eq!(
            runs.iter().map(|&(_, l)| l as usize).sum::<usize>(),
            taken.len()
        );
        // Same delegation as `observe_chunk`: the resilience layer and
        // telemetry hooks live on the per-event path. The final
        // `max_instr` advance is applied here too, so a shard behaves
        // identically whether or not telemetry is attached.
        if self.resilience.is_some() || self.telemetry.is_some() {
            let start_events = self.events;
            let start_correct = self.correct;
            let start_incorrect = self.incorrect;
            for &o in offs {
                self.observe(&records[usize::from(o)]);
            }
            self.instructions = self.instructions.max(max_instr);
            let correct = self.correct - start_correct;
            let incorrect = self.incorrect - start_incorrect;
            return ChunkSummary {
                events: self.events - start_events,
                speculated: correct + incorrect,
                correct,
                incorrect,
            };
        }

        // One resize covers every run.
        if let Some(max_idx) = runs.iter().map(|&(b, _)| b as usize).max() {
            if max_idx >= self.branches.len() {
                self.branches.resize_with(max_idx + 1, BranchCtl::new);
            }
        }

        let params = self.params;
        let monitor_sample_rate = params.monitor_sample_rate;
        let sample_every_exec = monitor_sample_rate == 1;
        let optimization_latency = params.optimization_latency;
        // Same hoists as `observe_chunk` (see there).
        let policy = Arc::clone(&self.policy);
        let custom_observe = policy.custom_observe();

        let start_events = self.events;
        let start_correct = self.correct;
        let start_incorrect = self.incorrect;
        let mut events = self.events;
        let mut instructions = self.instructions;
        let mut correct = self.correct;
        let mut incorrect = self.incorrect;

        let mut off = 0usize;
        for &(bidx, run_len) in runs {
            let len = run_len as usize;
            let t = &taken[off..off + len];
            let o = &offs[off..off + len];
            off += len;
            let idx = bidx as usize;
            let mut i = 0usize;
            // Re-dispatch on the (possibly new) state after every bulk
            // arm, eviction, or slow-path event until the run is drained.
            // Bulk arms never touch per-event `instr`: the local
            // `instructions` mark may lag, and is advanced to `max_instr`
            // once after the loop (see the method docs).
            while i < len {
                let b = &mut self.branches[idx];
                let mut evict: Option<(Direction, u64)> = None;
                let mut slow = false;
                match &mut b.state {
                    State::Disabled => {
                        let m = len - i;
                        b.execs += m as u64;
                        events += m as u64;
                        i = len;
                    }
                    State::Unbiased { remaining } => match remaining {
                        // The revisit arc logs a transition: slow path.
                        Some(n) if *n <= 1 => slow = true,
                        Some(n) => {
                            // `n` stays ≥ 1, so the event that re-enters
                            // monitoring still goes through `observe`.
                            let m = usize::try_from(*n - 1).unwrap_or(usize::MAX).min(len - i);
                            *n -= m as u64;
                            b.execs += m as u64;
                            events += m as u64;
                            i += m;
                        }
                        None => {
                            let m = len - i;
                            b.execs += m as u64;
                            events += m as u64;
                            i = len;
                        }
                    },
                    State::Monitor {
                        execs,
                        samples,
                        taken: tk,
                    } => {
                        // Bulk-consume the policy's guaranteed monitor
                        // headroom; the event that could classify goes to
                        // `observe`.
                        let counts = MonitorCounts {
                            execs: *execs,
                            samples: *samples,
                            taken: *tk,
                        };
                        let headroom = policy.observe_run(counts, &params);
                        if headroom >= 1 {
                            let headroom = usize::try_from(headroom).unwrap_or(usize::MAX);
                            let m = headroom.min(len - i);
                            if sample_every_exec {
                                *samples += m as u64;
                                *tk += t[i..i + m].iter().map(|&x| u64::from(x)).sum::<u64>();
                            } else {
                                for (e, &x) in (*execs..).zip(&t[i..i + m]) {
                                    if e % monitor_sample_rate == 0 {
                                        *samples += 1;
                                        *tk += u64::from(x);
                                    }
                                }
                            }
                            *execs += m as u64;
                            b.execs += m as u64;
                            events += m as u64;
                            i += m;
                        } else {
                            slow = true;
                        }
                    }
                    State::Biased { dir, tracker } => match tracker {
                        EvictTracker::Counter(c) if !custom_observe => {
                            let want = u8::from(*dir == Direction::Taken);
                            let mut j = i;
                            // Consume miss-free stretches in one step: scan
                            // to the next mismatch (a vector-friendly byte
                            // search), fold the correct prefix into the
                            // counter in closed form, then handle the miss
                            // alone. The counter only rises on a miss, so
                            // that is the only place eviction can trigger.
                            loop {
                                let p = t[j..len].iter().position(|&x| x != want);
                                let stretch = p.unwrap_or(len - j);
                                c.bulk_correct(stretch as u64);
                                correct += stretch as u64;
                                j += stretch;
                                if p.is_none() {
                                    break;
                                }
                                c.misspeculation();
                                incorrect += 1;
                                j += 1;
                                if c.should_evict() {
                                    let at = records[usize::from(o[j - 1])].instr;
                                    evict = Some((*dir, at));
                                    break;
                                }
                            }
                            let m = j - i;
                            b.execs += m as u64;
                            events += m as u64;
                            i = j;
                        }
                        EvictTracker::Never if !custom_observe => {
                            let m = len - i;
                            let want = u8::from(*dir == Direction::Taken);
                            let hits: u64 = t[i..].iter().map(|&x| u64::from(x == want)).sum();
                            correct += hits;
                            incorrect += m as u64 - hits;
                            b.execs += m as u64;
                            events += m as u64;
                            i = len;
                        }
                        // Sampled eviction, or a policy with a
                        // non-standard `observe`: per-event path.
                        _ => slow = true,
                    },
                    State::PendingBiased { .. }
                    | State::PendingMonitor { .. }
                    | State::RetryBiased { .. }
                    | State::RetryMonitor { .. } => slow = true,
                }

                if let Some((dir, at)) = evict {
                    let b = &mut self.branches[idx];
                    b.evictions += 1;
                    self.log.push(TransitionEvent {
                        branch: BranchId::new(bidx),
                        kind: TransitionKind::ExitBiased,
                        event_index: events,
                        instr: at,
                        direction: Some(dir),
                    });
                    self.branches[idx].state = if optimization_latency == 0 {
                        State::fresh_monitor()
                    } else {
                        State::PendingMonitor {
                            deadline: at + optimization_latency,
                            dir,
                        }
                    };
                }

                if slow {
                    self.events = events;
                    self.instructions = instructions;
                    self.correct = correct;
                    self.incorrect = incorrect;
                    self.observe(&records[usize::from(o[i])]);
                    events = self.events;
                    instructions = self.instructions;
                    correct = self.correct;
                    incorrect = self.incorrect;
                    i += 1;
                }
            }
        }

        self.events = events;
        self.instructions = instructions.max(max_instr);
        self.correct = correct;
        self.incorrect = incorrect;

        let chunk_correct = correct - start_correct;
        let chunk_incorrect = incorrect - start_incorrect;
        ChunkSummary {
            events: events - start_events,
            speculated: chunk_correct + chunk_incorrect,
            correct: chunk_correct,
            incorrect: chunk_incorrect,
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ControlStats {
        let mut s = ControlStats {
            events: self.events,
            instructions: self.instructions,
            correct: self.correct,
            incorrect: self.incorrect,
            ..ControlStats::default()
        };
        for b in &self.branches {
            if b.execs == 0 {
                continue;
            }
            s.touched += 1;
            if b.entries > 0 {
                s.entered_biased += 1;
                s.total_entries += u64::from(b.entries);
            }
            if b.evictions > 0 {
                s.evicted_branches += 1;
                s.total_evictions += u64::from(b.evictions);
            }
            if matches!(b.state, State::Disabled) {
                s.disabled_branches += 1;
            }
        }
        s.reopt_requests = s.total_entries + s.total_evictions;
        if let Some(rs) = &self.resilience {
            s.deploy_failures = rs.deploy_failures;
            s.deploy_retries = rs.deploy_retries;
            s.forced_disables = rs.forced_disables;
            s.suppressed_enters = rs.suppressed_enters;
        }
        s
    }

    /// Exports the metrics registry, or `None` unless the controller was
    /// built with [`metrics`](crate::ControllerBuilder::metrics).
    ///
    /// Counters and gauges are synthesized from the controller's exact
    /// internal state at this call (nothing is double-counted on the hot
    /// path); histograms carry the observations accumulated since
    /// construction (or checkpoint restore). The returned registry is a
    /// self-contained snapshot: render it with
    /// [`MetricsRegistry::render_prometheus`] or
    /// [`MetricsRegistry::render_json`].
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        let cm = self.telemetry.as_ref()?.metrics.as_ref()?;
        let mut reg = cm.registry.clone();
        let ids = &cm.ids;
        let s = self.stats();
        reg.set_counter(ids.events, s.events);
        reg.set_counter(ids.instructions, s.instructions);
        reg.set_counter(ids.correct, s.correct);
        reg.set_counter(ids.incorrect, s.incorrect);
        for kind in TransitionKind::ALL {
            reg.set_counter(ids.transitions[kind.index()], self.log.count(kind));
        }
        // With the resilience layer every pipeline request is counted at
        // the deployer; without one, deployment is implicit and every
        // re-optimization request is exactly one deployment.
        let deploy_requests = match &self.resilience {
            Some(rs) => rs.deployer.requests(),
            None => s.reopt_requests,
        };
        reg.set_counter(ids.deploy_requests, deploy_requests);
        reg.set_counter(ids.deploy_failures, s.deploy_failures);
        reg.set_counter(ids.deploy_retries, s.deploy_retries);
        reg.set_counter(ids.forced_disables, s.forced_disables);
        reg.set_counter(ids.suppressed_enters, s.suppressed_enters);
        reg.set_gauge(ids.branches_tracked, s.touched as f64);
        reg.set_gauge(ids.branches_disabled, s.disabled_branches as f64);
        let phase = self
            .resilience
            .as_ref()
            .and_then(|rs| rs.breaker.as_ref())
            .map_or(0, |b| b.phase().gauge_code());
        reg.set_gauge(ids.breaker_state, f64::from(phase));
        // Info-style metric: the label carries the active policy id, the
        // value is always 1. Synthesized at export time so restored or
        // rebuilt controllers always report their current policy.
        let policy_info = reg.counter_labeled(
            "rsc_policy_info",
            "policy",
            self.policy.id(),
            "Active control policy (value is constant 1; the label is the payload)",
        );
        reg.set_counter(policy_info, 1);
        Some(reg)
    }

    /// Attaches (or replaces) the event sink after construction.
    ///
    /// Normally sinks are attached via
    /// [`event_sink`](crate::ControllerBuilder::event_sink); this exists
    /// for controllers rebuilt from a checkpoint, where the sink cannot be
    /// serialized (see
    /// [`restore_with_sink`](ReactiveController::restore_with_sink)).
    pub fn attach_event_sink(&mut self, sink: Arc<dyn EventSink>) {
        match &mut self.telemetry {
            Some(t) => t.sink = Some(sink),
            None => {
                self.telemetry = Some(Box::new(Telemetry {
                    metrics: None,
                    sink: Some(sink),
                }));
            }
        }
    }

    /// The attached event sink, if any.
    pub fn event_sink(&self) -> Option<&Arc<dyn EventSink>> {
        self.telemetry.as_ref()?.sink.as_ref()
    }

    /// The retained transition events, oldest first — a convenience view
    /// of [`transition_log`](Self::transition_log).
    ///
    /// Retention follows the configured
    /// [`TransitionLogPolicy`](crate::translog::TransitionLogPolicy):
    /// `Full` returns every transition since construction, `CountsOnly`
    /// always returns an empty slice, and `RingBuffer(n)` returns at most
    /// the latest `n` events — anything older has been truncated and
    /// cannot be recovered, though the per-kind counters on
    /// [`transition_log`](Self::transition_log) remain exact across
    /// truncation.
    pub fn transitions(&self) -> &[TransitionEvent] {
        self.transition_log().as_slice()
    }

    /// Times `branch` entered the biased state.
    pub fn entries(&self, branch: BranchId) -> u32 {
        self.branches.get(branch.index()).map_or(0, |b| b.entries)
    }

    /// Times `branch` was evicted from the biased state.
    pub fn evictions(&self, branch: BranchId) -> u32 {
        self.branches.get(branch.index()).map_or(0, |b| b.evictions)
    }

    /// Returns `true` if `branch` is currently speculated (biased state,
    /// eviction pending deployment, or a repair retry outstanding).
    pub fn is_speculating(&self, branch: BranchId) -> bool {
        matches!(
            self.branches.get(branch.index()).map(|b| &b.state),
            Some(State::Biased { .. })
                | Some(State::PendingMonitor { .. })
                | Some(State::RetryMonitor { .. })
        )
    }

    /// Returns `true` if `branch` has been permanently disabled by the
    /// oscillation cap.
    pub fn is_disabled(&self, branch: BranchId) -> bool {
        matches!(
            self.branches.get(branch.index()).map(|b| &b.state),
            Some(State::Disabled)
        )
    }

    /// Externally comparable snapshot of `branch`'s FSM state and
    /// counters. Branches that were never observed report
    /// [`BranchSnapshot::untouched`] (every branch conceptually starts in
    /// a fresh monitor state).
    pub fn branch_snapshot(&self, branch: BranchId) -> BranchSnapshot {
        let Some(b) = self.branches.get(branch.index()) else {
            return BranchSnapshot::untouched();
        };
        let state = match &b.state {
            State::Monitor {
                execs,
                samples,
                taken,
            } => BranchStateView::Monitor {
                execs: *execs,
                samples: *samples,
                taken: *taken,
            },
            State::PendingBiased { deadline, dir } => BranchStateView::PendingBiased {
                deadline: *deadline,
                dir: *dir,
            },
            State::Biased { dir, tracker } => BranchStateView::Biased {
                dir: *dir,
                tracker: match tracker {
                    EvictTracker::Counter(c) => TrackerView::Counter { value: c.value() },
                    EvictTracker::Sampling {
                        pos,
                        matched,
                        sampled,
                    } => TrackerView::Sampling {
                        pos: *pos,
                        matched: *matched,
                        sampled: *sampled,
                    },
                    EvictTracker::Never => TrackerView::Never,
                },
            },
            State::PendingMonitor { deadline, dir } => BranchStateView::PendingMonitor {
                deadline: *deadline,
                dir: *dir,
            },
            State::Unbiased { remaining } => BranchStateView::Unbiased {
                remaining: *remaining,
            },
            State::Disabled => BranchStateView::Disabled,
            State::RetryBiased { next, dir, attempt } => BranchStateView::RetryBiased {
                next: *next,
                dir: *dir,
                attempt: *attempt,
            },
            State::RetryMonitor { next, dir, attempt } => BranchStateView::RetryMonitor {
                next: *next,
                dir: *dir,
                attempt: *attempt,
            },
        };
        BranchSnapshot {
            state,
            entries: b.entries,
            entries_since_flush: b.entries_since_flush,
            evictions: b.evictions,
            execs: b.execs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EvictionMode, MonitorPolicy};
    use crate::translog::TransitionLogPolicy;

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    /// Tiny parameters that make hand-reasoning easy.
    fn tiny() -> ControllerParams {
        ControllerParams {
            monitor_period: 10,
            monitor_policy: MonitorPolicy::FixedWindow,
            monitor_sample_rate: 1,
            selection_threshold: 0.995,
            eviction: EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 100,
            },
            revisit: Revisit::After(20),
            oscillation_limit: Some(5),
            optimization_latency: 0,
        }
    }

    fn drive(ctl: &mut ReactiveController, b: u32, taken: bool, n: u64, instr: &mut u64) {
        for _ in 0..n {
            *instr += 5;
            ctl.observe(&rec(b, taken, *instr));
        }
    }

    #[test]
    fn biased_branch_is_selected_after_monitoring() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr);
        assert!(ctl.is_speculating(BranchId::new(0)));
        assert_eq!(ctl.entries(BranchId::new(0)), 1);
        // Further executions are speculated correctly.
        let d = ctl.observe(&rec(0, true, instr + 5));
        assert_eq!(d, SpecDecision::Correct);
    }

    #[test]
    fn unbiased_branch_is_not_selected() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        for i in 0..10u64 {
            instr += 5;
            ctl.observe(&rec(0, i % 2 == 0, instr));
        }
        assert!(!ctl.is_speculating(BranchId::new(0)));
        assert_eq!(ctl.entries(BranchId::new(0)), 0);
        let d = ctl.observe(&rec(0, true, instr + 5));
        assert_eq!(d, SpecDecision::NotSpeculated);
    }

    #[test]
    fn monitoring_executions_are_not_speculated() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        for i in 0..9u64 {
            let d = ctl.observe(&rec(0, true, 5 * (i + 1)));
            assert_eq!(d, SpecDecision::NotSpeculated);
        }
    }

    #[test]
    fn eviction_after_sustained_misspeculation() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr); // select taken
                                                  // Reverse the behavior: 100/50 = 2 misspecs to reach threshold 100.
        drive(&mut ctl, 0, false, 2, &mut instr);
        assert_eq!(ctl.evictions(BranchId::new(0)), 1);
        assert!(!ctl.is_speculating(BranchId::new(0)));
        // Back in monitor: next executions are unspeculated.
        let d = ctl.observe(&rec(0, false, instr + 5));
        assert_eq!(d, SpecDecision::NotSpeculated);
    }

    #[test]
    fn short_bursts_are_tolerated() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr);
        // One misspec (counter 50), then plenty of correct ones.
        drive(&mut ctl, 0, false, 1, &mut instr);
        drive(&mut ctl, 0, true, 60, &mut instr);
        drive(&mut ctl, 0, false, 1, &mut instr);
        assert_eq!(ctl.evictions(BranchId::new(0)), 0);
        assert!(ctl.is_speculating(BranchId::new(0)));
    }

    #[test]
    fn revisit_reselects_late_biased_branch() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        // Unbiased during first monitor window.
        for i in 0..10u64 {
            instr += 5;
            ctl.observe(&rec(0, i % 2 == 0, instr));
        }
        assert_eq!(ctl.entries(BranchId::new(0)), 0);
        // Wait period (20 executions), now biased.
        drive(&mut ctl, 0, true, 20, &mut instr);
        // Re-monitoring for 10 executions, all taken → selected.
        drive(&mut ctl, 0, true, 10, &mut instr);
        assert_eq!(ctl.entries(BranchId::new(0)), 1);
        assert!(ctl.is_speculating(BranchId::new(0)));
    }

    #[test]
    fn no_revisit_strands_unbiased_branches() {
        let params = tiny().without_revisit();
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        for i in 0..10u64 {
            instr += 5;
            ctl.observe(&rec(0, i % 2 == 0, instr));
        }
        // A long biased stretch afterwards is never harvested.
        drive(&mut ctl, 0, true, 1000, &mut instr);
        assert_eq!(ctl.entries(BranchId::new(0)), 0);
        assert_eq!(ctl.stats().correct, 0);
    }

    #[test]
    fn no_eviction_keeps_misspeculating() {
        let params = tiny().without_eviction();
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr);
        drive(&mut ctl, 0, false, 500, &mut instr);
        let s = ctl.stats();
        assert_eq!(s.incorrect, 500, "open loop never repairs");
        assert_eq!(s.total_evictions, 0);
    }

    #[test]
    fn oscillation_cap_disables_branch() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        for round in 0..6u32 {
            // Monitor passes (all taken), then reverse until evicted.
            drive(&mut ctl, 0, true, 10, &mut instr);
            if round < 5 {
                assert_eq!(ctl.entries(BranchId::new(0)), round + 1);
                drive(&mut ctl, 0, false, 2, &mut instr);
                assert_eq!(ctl.evictions(BranchId::new(0)), round + 1);
            }
        }
        // The sixth monitor pass must disable instead of re-entering.
        assert!(ctl.is_disabled(BranchId::new(0)));
        assert_eq!(ctl.entries(BranchId::new(0)), 5);
        let s = ctl.stats();
        assert_eq!(s.disabled_branches, 1);
        // Once disabled, nothing happens anymore.
        let d = ctl.observe(&rec(0, true, instr + 5));
        assert_eq!(d, SpecDecision::NotSpeculated);
    }

    #[test]
    fn selection_latency_defers_speculation() {
        let params = tiny().with_latency(1000);
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr); // decision at instr=50
                                                  // Still within latency window: not speculated.
        let d = ctl.observe(&rec(0, true, 900));
        assert_eq!(d, SpecDecision::NotSpeculated);
        // Past the deadline (50 + 1000): speculated.
        let d = ctl.observe(&rec(0, true, 1100));
        assert_eq!(d, SpecDecision::Correct);
    }

    #[test]
    fn eviction_latency_keeps_counting_misspecs() {
        let params = tiny().with_latency(1000);
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr);
        // Deploy the optimized code.
        instr += 2000;
        ctl.observe(&rec(0, true, instr));
        // Trip the eviction counter.
        drive(&mut ctl, 0, false, 2, &mut instr);
        assert_eq!(ctl.evictions(BranchId::new(0)), 1);
        // Stale code still speculating during the latency window.
        let d = ctl.observe(&rec(0, false, instr + 10));
        assert_eq!(d, SpecDecision::Incorrect);
        // After deployment the branch is monitored again.
        let d = ctl.observe(&rec(0, false, instr + 5000));
        assert_eq!(d, SpecDecision::NotSpeculated);
    }

    #[test]
    fn transition_log_captures_lifecycle() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr);
        drive(&mut ctl, 0, false, 2, &mut instr);
        let kinds: Vec<TransitionKind> = ctl.transitions().iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![TransitionKind::EnterBiased, TransitionKind::ExitBiased]
        );
        assert_eq!(ctl.transitions()[0].direction, Some(Direction::Taken));
    }

    #[test]
    fn transition_recording_can_be_disabled() {
        let mut ctl = ReactiveController::builder(tiny())
            .log_policy(TransitionLogPolicy::CountsOnly)
            .build()
            .unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr);
        assert!(ctl.transitions().is_empty());
        assert_eq!(ctl.entries(BranchId::new(0)), 1);
    }

    /// A synthetic stream that drives one branch through selection,
    /// eviction, oscillation disable, and a second branch through the
    /// unbiased/revisit arc — covering every `observe_chunk` arm.
    fn lifecycle_stream() -> Vec<BranchRecord> {
        let mut v = Vec::new();
        let mut instr = 0u64;
        for round in 0..7u64 {
            for _ in 0..10 {
                instr += 5;
                v.push(rec(0, true, instr));
            }
            for _ in 0..3 {
                instr += 5;
                v.push(rec(0, false, instr));
            }
            for i in 0..25u64 {
                instr += 5;
                v.push(rec(1, (i + round) % 2 == 0, instr));
            }
        }
        v
    }

    #[test]
    fn observe_chunk_matches_observe_across_lifecycle() {
        let stream = lifecycle_stream();
        for params in [tiny(), tiny().with_latency(40), tiny().without_eviction()] {
            let mut per_event = ReactiveController::builder(params).build().unwrap();
            for r in &stream {
                per_event.observe(r);
            }
            for chunk_len in [1usize, 3, 16, 1000] {
                let mut chunked = ReactiveController::builder(params).build().unwrap();
                let mut total = ChunkSummary::default();
                for chunk in stream.chunks(chunk_len) {
                    let s = chunked.observe_chunk(chunk);
                    total.events += s.events;
                    total.speculated += s.speculated;
                    total.correct += s.correct;
                    total.incorrect += s.incorrect;
                }
                assert_eq!(per_event.stats(), chunked.stats(), "chunk {chunk_len}");
                assert_eq!(
                    per_event.transitions(),
                    chunked.transitions(),
                    "chunk {chunk_len}"
                );
                assert_eq!(total.events, stream.len() as u64);
                assert_eq!(total.correct, chunked.stats().correct);
                assert_eq!(total.incorrect, chunked.stats().incorrect);
                assert_eq!(total.speculated, total.correct + total.incorrect);
            }
        }
    }

    #[test]
    fn observe_chunk_respects_ring_buffer_policy() {
        let stream = lifecycle_stream();
        let mut full = ReactiveController::builder(tiny()).build().unwrap();
        let mut ring = ReactiveController::builder(tiny())
            .log_policy(TransitionLogPolicy::RingBuffer(3))
            .build()
            .unwrap();
        for chunk in stream.chunks(64) {
            full.observe_chunk(chunk);
            ring.observe_chunk(chunk);
        }
        let all = full.transitions();
        assert!(all.len() > 3);
        assert_eq!(ring.transitions(), &all[all.len() - 3..]);
        for kind in TransitionKind::ALL {
            assert_eq!(
                ring.transition_log().count(kind),
                full.transition_log().count(kind),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn monitor_sampling_classifies_from_fewer_samples() {
        let params = tiny().with_monitor_sampling(2);
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        // Alternate so that sampled executions (every 2nd, starting with
        // the first) are all taken while unsampled ones are not-taken.
        for i in 0..10u64 {
            instr += 5;
            ctl.observe(&rec(0, i % 2 == 0, instr));
        }
        // 5 samples, all taken → selected despite 50% true bias.
        assert_eq!(ctl.entries(BranchId::new(0)), 1);
    }

    #[test]
    fn sampled_eviction_fires_on_degraded_bias() {
        let mut params = tiny();
        params.eviction = EvictionMode::Sampling {
            period: 20,
            samples: 10,
            bias_threshold: 0.98,
        };
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr); // select
                                                  // Degrade to ~50%: the first full sampling window must evict.
        for i in 0..40u64 {
            instr += 5;
            ctl.observe(&rec(0, i % 2 == 0, instr));
            if ctl.evictions(BranchId::new(0)) > 0 {
                break;
            }
        }
        assert_eq!(ctl.evictions(BranchId::new(0)), 1);
    }

    #[test]
    fn sampled_eviction_keeps_healthy_branch() {
        let mut params = tiny();
        params.eviction = EvictionMode::Sampling {
            period: 20,
            samples: 10,
            bias_threshold: 0.98,
        };
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr);
        drive(&mut ctl, 0, true, 200, &mut instr);
        assert_eq!(ctl.evictions(BranchId::new(0)), 0);
        assert!(ctl.is_speculating(BranchId::new(0)));
    }

    #[test]
    fn stats_reflect_mixed_population() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        // Branch 0 biased; branch 1 unbiased; branch 2 never executes.
        drive(&mut ctl, 0, true, 30, &mut instr);
        for i in 0..30u64 {
            instr += 5;
            ctl.observe(&rec(1, i % 2 == 0, instr));
        }
        let s = ctl.stats();
        assert_eq!(s.touched, 2);
        assert_eq!(s.entered_biased, 1);
        assert_eq!(s.correct, 20);
        assert_eq!(s.events, 60);
        assert_eq!(s.reopt_requests, 1);
    }

    #[test]
    fn rejects_invalid_params() {
        let mut p = tiny();
        p.monitor_period = 0;
        assert!(ReactiveController::builder(p).build().is_err());
    }

    #[test]
    fn confidence_monitor_selects_obvious_bias_early() {
        // At threshold 0.995 and z = 2.58, a perfect branch clears the
        // Wilson lower bound after ~1,325 samples — far earlier than the
        // 10,000-execution window it is racing here.
        let params = tiny()
            .with_monitor_period(10_000)
            .with_confidence_monitor(2.58, 16, 10_000);
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 2_000, &mut instr);
        assert!(ctl.is_speculating(BranchId::new(0)));
        let s = ctl.stats();
        assert!(s.correct > 500, "correct {}", s.correct);
    }

    #[test]
    fn confidence_monitor_rejects_unbiased_early() {
        let params = tiny().with_confidence_monitor(2.58, 16, 10_000);
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        for i in 0..400u64 {
            instr += 5;
            ctl.observe(&rec(0, i % 2 == 0, instr));
        }
        assert!(!ctl.is_speculating(BranchId::new(0)));
        assert_eq!(ctl.entries(BranchId::new(0)), 0);
        assert_eq!(ctl.stats().correct + ctl.stats().incorrect, 0);
    }

    #[test]
    fn confidence_monitor_forces_decision_at_max() {
        // True bias right at the boundary: undecidable, so the max forces
        // a point-estimate decision.
        let params = tiny().with_confidence_monitor(2.58, 16, 64);
        let mut ctl = ReactiveController::builder(params).build().unwrap();
        let mut instr = 0;
        // 63 taken + 1 not-taken in the first 64: point bias 0.984 < 0.995
        // at the cap -> unbiased.
        for i in 0..64u64 {
            instr += 5;
            ctl.observe(&rec(0, i != 10, instr));
        }
        assert!(!ctl.is_speculating(BranchId::new(0)));
    }

    #[test]
    fn flush_forgets_classifications_but_keeps_stats() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 50, &mut instr);
        assert!(ctl.is_speculating(BranchId::new(0)));
        let before = ctl.stats();
        assert!(before.correct > 0);

        ctl.flush_all();
        assert!(!ctl.is_speculating(BranchId::new(0)));
        // Statistics survive the flush.
        let after = ctl.stats();
        assert_eq!(after.correct, before.correct);
        assert_eq!(after.total_entries, before.total_entries);
        // The branch re-monitors and can be re-selected.
        drive(&mut ctl, 0, true, 10, &mut instr);
        assert!(ctl.is_speculating(BranchId::new(0)));
        assert_eq!(ctl.entries(BranchId::new(0)), 2);
    }

    mod resilience {
        use super::*;
        use crate::resilience::{
            BreakerConfig, DeployerSpec, FaultMode, FaultScope, FaultSpec, ResilienceConfig,
            RetryPolicy, BREAKER_BRANCH,
        };

        fn faulty(mode: FaultMode, scope: FaultScope, max_attempts: u32) -> ResilienceConfig {
            ResilienceConfig {
                deployer: DeployerSpec::Faulty(FaultSpec {
                    seed: 7,
                    mode,
                    scope,
                    wasted: 10,
                }),
                retry: RetryPolicy {
                    max_attempts,
                    base_backoff: 20,
                    max_backoff: 80,
                },
                breaker: None,
            }
        }

        fn always_fail(scope: FaultScope, max_attempts: u32) -> ResilienceConfig {
            faulty(
                FaultMode::FixedRate { per_mille: 1000 },
                scope,
                max_attempts,
            )
        }

        #[test]
        fn reliable_layer_is_transparent() {
            let mut plain = ReactiveController::builder(tiny()).build().unwrap();
            let mut layered = ReactiveController::builder(tiny())
                .resilience(ResilienceConfig::reliable())
                .build()
                .unwrap();
            let mut instr = 0;
            for _ in 0..5 {
                drive(&mut plain, 0, true, 10, &mut instr);
                drive(&mut plain, 0, false, 2, &mut instr);
            }
            let mut instr = 0;
            for _ in 0..5 {
                drive(&mut layered, 0, true, 10, &mut instr);
                drive(&mut layered, 0, false, 2, &mut instr);
            }
            assert_eq!(plain.stats(), layered.stats());
            assert_eq!(plain.transitions(), layered.transitions());
            assert_eq!(
                plain.branch_snapshot(BranchId::new(0)),
                layered.branch_snapshot(BranchId::new(0))
            );
        }

        #[test]
        fn failed_optimize_retries_then_succeeds() {
            // The first request (ordinal 0) fails; everything after
            // deploys. One failure, one successful retry.
            let config = faulty(
                FaultMode::Burst {
                    period: 1_000_000,
                    len: 1,
                },
                FaultScope::OptimizeOnly,
                4,
            );
            let mut ctl = ReactiveController::builder(tiny())
                .resilience(config)
                .build()
                .unwrap();
            let mut instr = 0;
            drive(&mut ctl, 0, true, 10, &mut instr); // decision at instr 50, deploy fails
            assert!(!ctl.is_speculating(BranchId::new(0)));
            // Backoff is wasted (10) + base (20): the retry fires at the
            // first event with instr >= 80 and deploys; that same event is
            // already speculated.
            let d = ctl.observe(&rec(0, true, 80));
            assert_eq!(d, SpecDecision::Correct);
            assert!(ctl.is_speculating(BranchId::new(0)));
            let s = ctl.stats();
            assert_eq!(s.deploy_failures, 1);
            assert_eq!(s.deploy_retries, 1);
            assert_eq!(s.forced_disables, 0);
            let kinds: Vec<TransitionKind> = ctl.transitions().iter().map(|t| t.kind).collect();
            assert_eq!(
                kinds,
                vec![TransitionKind::EnterBiased, TransitionKind::DeployFailed]
            );
        }

        #[test]
        fn optimize_abandoned_after_retries_run_out() {
            let config = always_fail(FaultScope::OptimizeOnly, 4);
            let mut ctl = ReactiveController::builder(tiny())
                .resilience(config)
                .build()
                .unwrap();
            let mut instr = 0;
            // Selection at instr 50; retries at >= 80, >= 130 (backoff 40),
            // >= 220 (backoff 80) all fail; the enter is then abandoned.
            // (50 events keeps instr short of the revisit re-entry.)
            drive(&mut ctl, 0, true, 50, &mut instr);
            let s = ctl.stats();
            assert_eq!(s.deploy_failures, 4, "first try plus three retries");
            assert_eq!(s.deploy_retries, 3);
            assert_eq!(s.correct, 0, "never actually speculated");
            assert!(!ctl.is_speculating(BranchId::new(0)));
            let kinds: Vec<TransitionKind> = ctl.transitions().iter().map(|t| t.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    TransitionKind::EnterBiased,
                    TransitionKind::DeployFailed,
                    TransitionKind::DeployFailed,
                    TransitionKind::DeployFailed,
                    TransitionKind::DeployFailed,
                    TransitionKind::EnterAbandoned,
                ]
            );
            // Abandonment parks the branch as unbiased: the revisit arc
            // eventually re-monitors (and fails again, bounded).
            assert!(matches!(
                ctl.branch_snapshot(BranchId::new(0)).state,
                BranchStateView::Unbiased { .. }
            ));
        }

        #[test]
        fn failed_repair_keeps_stale_code_speculating_then_force_disables() {
            let config = always_fail(FaultScope::RepairOnly, 2);
            let mut ctl = ReactiveController::builder(tiny())
                .resilience(config)
                .build()
                .unwrap();
            let mut instr = 0;
            drive(&mut ctl, 0, true, 10, &mut instr); // optimize succeeds
            assert!(ctl.is_speculating(BranchId::new(0)));
            // Two misses trip the eviction counter at instr 60; the repair
            // fails, so the stale code keeps misspeculating.
            drive(&mut ctl, 0, false, 2, &mut instr);
            assert!(
                ctl.is_speculating(BranchId::new(0)),
                "stale code still live"
            );
            let d = ctl.observe(&rec(0, false, instr + 5));
            assert_eq!(d, SpecDecision::Incorrect, "stale code misspeculates");
            // Retry due at 60 + 10 + 20 = 90; it fails and retries are
            // exhausted: force-disable, never left speculating stale.
            let d = ctl.observe(&rec(0, false, 95));
            assert_eq!(d, SpecDecision::NotSpeculated);
            assert!(ctl.is_disabled(BranchId::new(0)));
            let s = ctl.stats();
            assert_eq!(s.forced_disables, 1);
            assert_eq!(s.deploy_failures, 2);
            assert_eq!(s.deploy_retries, 1);
            assert_eq!(s.disabled_branches, 1);
            let kinds: Vec<TransitionKind> = ctl.transitions().iter().map(|t| t.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    TransitionKind::EnterBiased,
                    TransitionKind::ExitBiased,
                    TransitionKind::DeployFailed,
                    TransitionKind::DeployFailed,
                    TransitionKind::ForcedDisable,
                ]
            );
        }

        fn small_breaker(top_k: usize) -> ResilienceConfig {
            ResilienceConfig {
                deployer: DeployerSpec::Instant,
                retry: RetryPolicy::default_policy(),
                breaker: Some(BreakerConfig {
                    bucket_events: 10,
                    buckets: 2,
                    open_threshold: 0.5,
                    close_threshold: 0.1,
                    cooldown_events: 30,
                    probe_events: 20,
                    mass_evict_top_k: top_k,
                }),
            }
        }

        #[test]
        fn open_breaker_suppresses_new_deployments() {
            let params = tiny().without_eviction();
            let mut ctl = ReactiveController::builder(params)
                .resilience(small_breaker(0))
                .build()
                .unwrap();
            let mut instr = 0;
            drive(&mut ctl, 0, true, 10, &mut instr); // branch 0 biased
            drive(&mut ctl, 0, false, 10, &mut instr); // storm: 100% misses
            assert!(ctl
                .transitions()
                .iter()
                .any(|t| t.kind == TransitionKind::BreakerOpened && t.branch == BREAKER_BRANCH));
            // Branch 1 classifies biased while the breaker is open: the
            // deployment is suppressed and the branch parks as unbiased.
            drive(&mut ctl, 1, true, 10, &mut instr);
            assert!(!ctl.is_speculating(BranchId::new(1)));
            assert_eq!(ctl.entries(BranchId::new(1)), 0);
            assert_eq!(ctl.stats().suppressed_enters, 1);
            assert!(matches!(
                ctl.branch_snapshot(BranchId::new(1)).state,
                BranchStateView::Unbiased { .. }
            ));
        }

        #[test]
        fn breaker_mass_evicts_worst_offender_on_open() {
            let params = tiny().without_eviction();
            let mut ctl = ReactiveController::builder(params)
                .resilience(small_breaker(1))
                .build()
                .unwrap();
            let mut instr = 0;
            drive(&mut ctl, 0, true, 10, &mut instr);
            assert!(ctl.is_speculating(BranchId::new(0)));
            drive(&mut ctl, 0, false, 10, &mut instr);
            // Eviction is off, so only the breaker can have evicted it.
            assert_eq!(ctl.evictions(BranchId::new(0)), 1);
            assert!(!ctl.is_speculating(BranchId::new(0)));
            let kinds: Vec<TransitionKind> = ctl.transitions().iter().map(|t| t.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    TransitionKind::EnterBiased,
                    TransitionKind::BreakerOpened,
                    TransitionKind::ExitBiased,
                ]
            );
        }

        #[test]
        fn breaker_half_opens_then_closes_on_recovery() {
            let params = tiny().without_eviction();
            let mut ctl = ReactiveController::builder(params)
                .resilience(small_breaker(1))
                .build()
                .unwrap();
            let mut instr = 0;
            drive(&mut ctl, 0, true, 10, &mut instr);
            drive(&mut ctl, 0, false, 10, &mut instr); // opens + mass-evicts
                                                       // Healthy traffic through the cool-down (30 events) and probe
                                                       // (20 events): the breaker half-opens then closes.
            drive(&mut ctl, 2, true, 60, &mut instr);
            let kinds: Vec<TransitionKind> = ctl.transitions().iter().map(|t| t.kind).collect();
            assert!(kinds.contains(&TransitionKind::BreakerHalfOpen));
            assert!(kinds.contains(&TransitionKind::BreakerClosed));
        }

        #[test]
        fn observe_chunk_matches_observe_with_resilience() {
            let stream = lifecycle_stream();
            let config = ResilienceConfig {
                deployer: DeployerSpec::Faulty(FaultSpec {
                    seed: 3,
                    mode: FaultMode::FixedRate { per_mille: 400 },
                    scope: FaultScope::All,
                    wasted: 7,
                }),
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_backoff: 15,
                    max_backoff: 60,
                },
                breaker: Some(BreakerConfig {
                    bucket_events: 8,
                    buckets: 2,
                    open_threshold: 0.1,
                    close_threshold: 0.05,
                    cooldown_events: 16,
                    probe_events: 8,
                    mass_evict_top_k: 2,
                }),
            };
            let mut per_event = ReactiveController::builder(tiny())
                .resilience(config)
                .build()
                .unwrap();
            for r in &stream {
                per_event.observe(r);
            }
            for chunk_len in [1usize, 7, 64, 1000] {
                let mut chunked = ReactiveController::builder(tiny())
                    .resilience(config)
                    .build()
                    .unwrap();
                let mut total = ChunkSummary::default();
                for chunk in stream.chunks(chunk_len) {
                    let s = chunked.observe_chunk(chunk);
                    total.events += s.events;
                    total.correct += s.correct;
                    total.incorrect += s.incorrect;
                }
                assert_eq!(per_event.stats(), chunked.stats(), "chunk {chunk_len}");
                assert_eq!(per_event.transitions(), chunked.transitions());
                assert_eq!(total.events, stream.len() as u64);
                assert_eq!(total.correct, chunked.stats().correct);
                assert_eq!(total.incorrect, chunked.stats().incorrect);
            }
        }

        /// Replays one workload under two log policies and demands exact
        /// per-kind counter agreement plus the ring retention bound.
        fn assert_ring_counts_exact(
            params: ControllerParams,
            config: ResilienceConfig,
            ring: usize,
            workload: impl Fn(&mut ReactiveController),
        ) {
            let mut full = ReactiveController::builder(params)
                .resilience(config)
                .build()
                .unwrap();
            workload(&mut full);
            let mut ringed = ReactiveController::builder(params)
                .resilience(config)
                .log_policy(TransitionLogPolicy::RingBuffer(ring))
                .build()
                .unwrap();
            workload(&mut ringed);

            assert!(
                ringed.transition_log().total() > ring as u64,
                "workload too small to wrap the ring"
            );
            assert!(ringed.transitions().len() <= ring);
            for kind in TransitionKind::ALL {
                assert_eq!(
                    ringed.transition_log().count(kind),
                    full.transition_log().count(kind),
                    "{kind:?} count must survive the wrap"
                );
            }
            assert_eq!(ringed.stats(), full.stats());
        }

        #[test]
        fn ring_buffer_counts_survive_wrap_under_forced_disables() {
            // Every repair fails: branches 0..3 each enter biased, get
            // evicted, exhaust their retries, and are force-disabled —
            // far more transitions than the 2-slot ring retains.
            assert_ring_counts_exact(tiny(), always_fail(FaultScope::RepairOnly, 2), 2, |ctl| {
                let mut instr = 0;
                for b in 0..4 {
                    drive(ctl, b, true, 10, &mut instr);
                    drive(ctl, b, false, 2, &mut instr);
                    drive(ctl, b, false, 30, &mut instr); // retry fails, force-disable
                }
                let s = ctl.stats();
                assert_eq!(s.forced_disables, 4);
                // No double counting on the retry path: every failed
                // request is one DeployFailed, whether it was the first
                // try or a retry.
                assert_eq!(
                    ctl.transition_log().count(TransitionKind::DeployFailed),
                    s.deploy_failures
                );
                assert_eq!(
                    ctl.transition_log().count(TransitionKind::ForcedDisable),
                    s.forced_disables
                );
            });
        }

        #[test]
        fn ring_buffer_counts_survive_wrap_under_mass_evictions() {
            // Repeated storms: each opens the breaker and mass-evicts the
            // offender, then healthy traffic closes it again. The 1-slot
            // ring forgets almost everything; the counters must not.
            assert_ring_counts_exact(tiny().without_eviction(), small_breaker(1), 1, |ctl| {
                let mut instr = 0;
                for _ in 0..3 {
                    drive(ctl, 0, true, 10, &mut instr);
                    drive(ctl, 0, false, 10, &mut instr); // storm: open + mass-evict
                    drive(ctl, 2, true, 60, &mut instr); // recover: half-open + close
                }
                let log = ctl.transition_log();
                assert_eq!(log.count(TransitionKind::BreakerOpened), 3);
                assert_eq!(log.count(TransitionKind::BreakerClosed), 3);
                // One mass eviction per opening, and mass evictions are
                // ordinary ExitBiased transitions (counted once).
                assert_eq!(
                    log.count(TransitionKind::ExitBiased),
                    ctl.stats().total_evictions
                );
            });
        }
    }

    #[test]
    fn flush_resets_oscillation_cap_budget() {
        let mut ctl = ReactiveController::builder(tiny()).build().unwrap();
        let mut instr = 0;
        // Exhaust the cap (5 entries) via forced oscillation.
        for _ in 0..6 {
            drive(&mut ctl, 0, true, 10, &mut instr);
            drive(&mut ctl, 0, false, 2, &mut instr);
        }
        assert!(ctl.is_disabled(BranchId::new(0)));

        // A flush gives the branch a fresh budget.
        ctl.flush_all();
        drive(&mut ctl, 0, true, 10, &mut instr);
        assert!(ctl.is_speculating(BranchId::new(0)));
        assert!(!ctl.is_disabled(BranchId::new(0)));
    }

    /// Telemetry must never perturb the controller: same trace, same
    /// stats, same transitions, with the registry and sink agreeing with
    /// the log.
    #[test]
    fn telemetry_is_behavior_preserving_and_consistent() {
        use crate::observe::{ObsEvent, VecSink};

        let stream = lifecycle_stream();
        let mut plain = ReactiveController::builder(tiny()).build().unwrap();
        let sink = Arc::new(VecSink::new());
        let mut metered = ReactiveController::builder(tiny())
            .metrics()
            .event_sink(sink.clone())
            .build()
            .unwrap();
        for r in &stream {
            plain.observe(r);
        }
        for chunk in stream.chunks(64) {
            metered.observe_chunk(chunk);
        }
        assert_eq!(plain.stats(), metered.stats());
        assert_eq!(plain.transitions(), metered.transitions());

        let reg = metered.metrics().expect("metrics enabled");
        let s = metered.stats();
        assert_eq!(reg.counter_value("rsc_events_total"), Some(s.events));
        assert_eq!(
            reg.counter_value("rsc_spec_incorrect_total"),
            Some(s.incorrect)
        );
        for kind in TransitionKind::ALL {
            assert_eq!(
                reg.counter_value_labeled("rsc_transitions_total", Some(("kind", kind.name()))),
                Some(metered.transition_log().count(kind)),
                "{kind:?}"
            );
        }
        // Every misspeculation lands in the interval histogram, and every
        // completed biased episode in the residency histogram.
        let h = reg.histogram_value("rsc_misspec_interval_events").unwrap();
        assert_eq!(h.count(), s.incorrect);
        let resid = reg.histogram_value("rsc_biased_residency_events").unwrap();
        assert_eq!(
            resid.count(),
            metered.transition_log().count(TransitionKind::ExitBiased)
        );

        // The sink saw exactly the logged transitions (full policy), plus
        // one Deploy event per re-optimization request — without a
        // resilience layer deployment is infallible, so every one of them
        // reports success on the first attempt.
        let events = sink.snapshot();
        let sunk: Vec<TransitionEvent> = events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::Transition(t) => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(sunk.as_slice(), metered.transitions());
        let deploys: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::Deploy {
                    attempt, deployed, ..
                } => Some((*attempt, *deployed)),
                _ => None,
            })
            .collect();
        assert_eq!(deploys.len() as u64, s.reopt_requests);
        assert!(deploys.iter().all(|&(attempt, ok)| attempt == 0 && ok));
        assert_eq!(events.len(), sunk.len() + deploys.len());
    }

    /// With a resilience layer attached, deploy attempts stream to the
    /// sink and the retry-depth histogram counts every attempt.
    #[test]
    fn telemetry_observes_deployments() {
        use crate::observe::{ObsEvent, VecSink};
        use crate::resilience::{
            DeployerSpec, FaultMode, FaultScope, FaultSpec, ResilienceConfig, RetryPolicy,
        };

        let config = ResilienceConfig {
            deployer: DeployerSpec::Faulty(FaultSpec {
                seed: 7,
                mode: FaultMode::Burst {
                    period: 1_000_000,
                    len: 1,
                },
                scope: FaultScope::OptimizeOnly,
                wasted: 10,
            }),
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: 20,
                max_backoff: 80,
            },
            breaker: None,
        };
        let sink = Arc::new(VecSink::new());
        let mut ctl = ReactiveController::builder(tiny())
            .resilience(config)
            .metrics()
            .event_sink(sink.clone())
            .build()
            .unwrap();
        let mut instr = 0;
        drive(&mut ctl, 0, true, 10, &mut instr); // first deploy fails
        ctl.observe(&rec(0, true, 80)); // retry deploys
        let s = ctl.stats();
        assert_eq!(s.deploy_failures, 1);
        assert_eq!(s.deploy_retries, 1);

        let deploys: Vec<(u32, bool)> = sink
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                ObsEvent::Deploy {
                    attempt, deployed, ..
                } => Some((*attempt, *deployed)),
                _ => None,
            })
            .collect();
        assert_eq!(deploys, vec![(0, false), (1, true)]);

        let reg = ctl.metrics().unwrap();
        assert_eq!(reg.counter_value("rsc_deploy_requests_total"), Some(2));
        assert_eq!(reg.counter_value("rsc_deploy_failures_total"), Some(1));
        let depth = reg.histogram_value("rsc_retry_depth").unwrap();
        assert_eq!(depth.count(), 2);
        assert_eq!(depth.sum(), 1, "one first try plus one depth-1 retry");
    }
}
