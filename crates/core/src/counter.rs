//! The saturating hysteresis counter behind the eviction decision.

/// An asymmetric saturating counter in `[0, threshold]`.
///
/// The paper's eviction rule adds 50 on a misspeculation and subtracts 1 on
/// a correct speculation, evicting at 10,000. The asymmetry sets the
/// steady-state misspeculation rate at which eviction engages
/// (`down / (up + down)` ≈ 2%), while the distance to the threshold sets
/// how long a burst must last (at least `threshold / up` = 200
/// misspeculations) — tolerating short bursts from otherwise biased
/// branches.
///
/// # Examples
///
/// ```
/// use rsc_control::counter::HysteresisCounter;
/// let mut c = HysteresisCounter::new(50, 1, 200);
/// for _ in 0..3 {
///     c.misspeculation();
/// }
/// assert!(!c.should_evict());
/// c.misspeculation();
/// assert!(c.should_evict());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HysteresisCounter {
    value: u32,
    up: u32,
    down: u32,
    threshold: u32,
}

impl HysteresisCounter {
    /// Creates a counter at zero.
    ///
    /// # Panics
    ///
    /// Panics if `up == 0`, `down == 0`, or `threshold < up`.
    pub fn new(up: u32, down: u32, threshold: u32) -> Self {
        assert!(up > 0, "up increment must be positive");
        assert!(down > 0, "down decrement must be positive");
        assert!(threshold >= up, "threshold must be at least up");
        HysteresisCounter {
            value: 0,
            up,
            down,
            threshold,
        }
    }

    /// Records a misspeculation; saturates at the threshold.
    pub fn misspeculation(&mut self) {
        self.value = self.value.saturating_add(self.up).min(self.threshold);
    }

    /// Records a correct speculation; saturates at zero.
    pub fn correct(&mut self) {
        self.value = self.value.saturating_sub(self.down);
    }

    /// Records `m` consecutive correct speculations in one step — exactly
    /// equivalent to `m` calls of [`correct`](Self::correct): the chain of
    /// saturating decrements closes to `max(value - m*down, 0)`, because
    /// once the value hits zero it stays there.
    pub fn bulk_correct(&mut self, m: u64) {
        self.value = u32::try_from(
            u64::from(self.value).saturating_sub(u64::from(self.down).saturating_mul(m)),
        )
        .expect("result bounded by the original u32 value");
    }

    /// Returns `true` once the counter has reached the eviction threshold.
    pub fn should_evict(&self) -> bool {
        self.value >= self.threshold
    }

    /// Current counter value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The per-misspeculation increment.
    pub fn up(&self) -> u32 {
        self.up
    }

    /// The per-correct-speculation decrement.
    pub fn down(&self) -> u32 {
        self.down
    }

    /// The eviction threshold (also the saturation ceiling).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Resets to zero (used when re-entering the biased state).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Restores a checkpointed value (clamped to the saturation range).
    pub(crate) fn set_value(&mut self, value: u32) {
        self.value = value.min(self.threshold);
    }

    /// The misspeculation rate above which the counter drifts upward:
    /// `down / (up + down)`.
    pub fn engagement_rate(&self) -> f64 {
        self.down as f64 / (self.up + self.down) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_minimum_misspeculations() {
        let mut c = HysteresisCounter::new(50, 1, 10_000);
        for _ in 0..199 {
            c.misspeculation();
        }
        assert!(!c.should_evict());
        c.misspeculation();
        assert!(c.should_evict());
    }

    #[test]
    fn correct_speculations_push_back() {
        let mut c = HysteresisCounter::new(50, 1, 10_000);
        c.misspeculation();
        assert_eq!(c.value(), 50);
        for _ in 0..50 {
            c.correct();
        }
        assert_eq!(c.value(), 0);
        c.correct();
        assert_eq!(c.value(), 0, "saturates at zero");
    }

    #[test]
    fn bulk_correct_matches_repeated_correct() {
        for down in [1u32, 3, 7, u32::MAX] {
            for start in [0u32, 1, 5, 49, 50, 10_000] {
                for m in [0u64, 1, 2, 50, 100_000] {
                    let mut a = HysteresisCounter::new(50, down, u32::MAX);
                    let mut b = HysteresisCounter::new(50, down, u32::MAX);
                    a.set_value(start);
                    b.set_value(start);
                    for _ in 0..m.min(200_000) {
                        a.correct();
                    }
                    b.bulk_correct(m);
                    assert_eq!(a.value(), b.value(), "down={down} start={start} m={m}");
                }
            }
        }
    }

    #[test]
    fn saturates_at_threshold() {
        let mut c = HysteresisCounter::new(50, 1, 100);
        for _ in 0..10 {
            c.misspeculation();
        }
        assert_eq!(c.value(), 100);
    }

    #[test]
    fn engagement_rate_is_two_percent_for_paper_params() {
        let c = HysteresisCounter::new(50, 1, 10_000);
        assert!((c.engagement_rate() - 1.0 / 51.0).abs() < 1e-12);
    }

    #[test]
    fn below_engagement_rate_never_evicts() {
        // 1% misspeculation: expected drift is negative; in a deterministic
        // 1-in-100 pattern the counter should stay far from the threshold.
        let mut c = HysteresisCounter::new(50, 1, 10_000);
        for i in 0..1_000_000u64 {
            if i % 100 == 0 {
                c.misspeculation();
            } else {
                c.correct();
            }
            assert!(!c.should_evict(), "evicted at iteration {i}");
        }
    }

    #[test]
    fn above_engagement_rate_evicts() {
        // 10% misspeculation drifts upward and must eventually evict.
        let mut c = HysteresisCounter::new(50, 1, 10_000);
        let mut evicted_at = None;
        for i in 0..1_000_000u64 {
            if i % 10 == 0 {
                c.misspeculation();
            } else {
                c.correct();
            }
            if c.should_evict() {
                evicted_at = Some(i);
                break;
            }
        }
        let at = evicted_at.expect("must evict");
        // Drift is (0.1*50 - 0.9) ≈ +4.1 per execution → ~2,440 executions.
        assert!((2_000..4_000).contains(&at), "evicted at {at}");
    }

    #[test]
    fn reset_clears_value() {
        let mut c = HysteresisCounter::new(50, 1, 100);
        c.misspeculation();
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be at least up")]
    fn rejects_threshold_below_up() {
        HysteresisCounter::new(50, 1, 10);
    }
}
