//! Controller checkpoint/restore.
//!
//! [`ReactiveController::snapshot`] serializes the *entire* controller —
//! parameters, resilience configuration and runtime (deployer ordinal,
//! breaker window), global counters, the transition log including its
//! ring-buffer amortization state, and every per-branch FSM — into a
//! versioned, self-contained binary blob. [`ReactiveController::restore`]
//! rebuilds a controller from the blob such that feeding the restored
//! controller the remainder of a trace produces **bit-identical** results
//! (decisions, [`ControlStats`](crate::ControlStats), transition log) to a
//! controller that ran the whole trace without interruption. That
//! resume-equals-straight-run property is what makes checkpointing safe to
//! use for long-running deployments, and it is pinned by differential
//! tests (`tests/checkpoint_restore.rs`).
//!
//! # Format
//!
//! The encoding (`RSCK` magic, version byte, then sections) is
//! hand-rolled: integers are LEB128 varints, floats are their IEEE-754
//! bit patterns in 8 little-endian bytes, enums are one-byte tags.
//! Nothing about the layout is exposed; treat [`ControllerCheckpoint`] as
//! an opaque byte container. Decoding is strict — trailing bytes, unknown
//! tags, and out-of-range values all fail with a typed
//! [`CheckpointError`] carrying the byte offset, mirroring the hardened
//! trace reader.
//!
//! # Examples
//!
//! ```
//! use rsc_control::prelude::*;
//! use rsc_trace::{BranchId, BranchRecord};
//!
//! let mut ctl = ReactiveController::builder(ControllerParams::scaled())
//!     .build()
//!     .unwrap();
//! for i in 0..500 {
//!     ctl.observe(&BranchRecord {
//!         branch: BranchId::new(0),
//!         taken: true,
//!         instr: i * 10,
//!     });
//! }
//! let cp = ctl.snapshot();
//! let restored = ReactiveController::restore(&cp).unwrap();
//! assert_eq!(restored.stats(), ctl.stats());
//! ```

use crate::controller::{
    BranchCtl, EvictTracker, ReactiveController, State, TransitionEvent, TransitionKind,
};
use crate::counter::HysteresisCounter;
use crate::observe::{ControllerMetrics, EventSink, ObsEvent, Telemetry};
use crate::params::{ControllerParams, EvictionMode, InvalidParamsError, MonitorPolicy, Revisit};
use crate::policy::{policy_from_blob, PaperFsm, Policy};
use crate::resilience::breaker::{BreakerConfig, BreakerPhase, StormBreaker};
use crate::resilience::deployer::{DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy};
use crate::resilience::{ResilienceConfig, ResilienceState};
use crate::translog::{TransitionLog, TransitionLogPolicy};
use rsc_trace::{BranchId, Direction};
use std::fmt;
use std::sync::Arc;

/// Magic bytes opening every checkpoint.
const MAGIC: [u8; 4] = *b"RSCK";
/// Current format version. Version 4 added a policy section to each
/// controller body (stable policy id + config blob, right after the
/// params) and widened biased counter trackers to their full shape
/// (value, up, down, threshold) because policies now parametrize
/// trackers independently of `params.eviction`. Version 3 added a
/// shard-count varint after the version byte followed by one controller
/// body per shard (a plain controller writes count 1), plus the
/// interval-histogram bounds in the telemetry section; version 2
/// appended the telemetry section itself. Version 3 blobs still restore
/// (as the paper-exact [`PaperFsm`] policy, whose rules v3 hardwired);
/// older blobs are rejected.
const VERSION: u8 = 4;
/// Oldest version [`read_header`] still accepts.
const MIN_VERSION: u8 = 3;

/// An opaque serialized controller state.
///
/// Produced by [`ReactiveController::snapshot`], consumed by
/// [`ReactiveController::restore`]. The bytes are self-contained: they
/// embed the controller parameters and resilience configuration, so
/// restoring needs no out-of-band state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerCheckpoint {
    bytes: Vec<u8>,
}

impl ControllerCheckpoint {
    /// The serialized bytes (e.g. for writing to a file).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps bytes read back from storage. No validation happens here;
    /// [`ReactiveController::restore`] performs the full strict decode.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        ControllerCheckpoint {
            bytes: bytes.into(),
        }
    }

    /// Consumes the checkpoint, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the checkpoint holds no bytes (never produced by
    /// [`ReactiveController::snapshot`]; only possible via
    /// [`ControllerCheckpoint::from_bytes`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Why a checkpoint failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The blob does not start with the `RSCK` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u8),
    /// The blob ended before the structure was complete.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// A structurally invalid encoding: unknown tag, out-of-range value,
    /// or trailing garbage.
    Corrupt {
        /// Byte offset of the offending value.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// The decoded parameters or resilience configuration failed their
    /// own validation (the checkpoint was produced by an incompatible or
    /// tampered source).
    Invalid(InvalidParamsError),
    /// The blob names a policy this build does not know (or its config
    /// blob does not decode as that policy's configuration). Restore the
    /// blob with a build that registers the policy.
    UnknownPolicy {
        /// The policy id recorded in the checkpoint.
        id: String,
    },
    /// A sharded blob whose shards disagree on the control policy — every
    /// shard of one engine runs the same policy, so this can only come
    /// from mixing checkpoints.
    PolicyMismatch {
        /// The first shard's policy id.
        expected: String,
        /// The disagreeing shard's policy id.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a controller checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (max {VERSION})")
            }
            CheckpointError::Truncated { offset } => {
                write!(f, "checkpoint truncated at byte {offset}")
            }
            CheckpointError::Corrupt { offset, what } => {
                write!(f, "corrupt checkpoint at byte {offset}: {what}")
            }
            CheckpointError::Invalid(e) => write!(f, "checkpoint carries invalid config: {e}"),
            CheckpointError::UnknownPolicy { id } => {
                write!(f, "checkpoint names unknown control policy {id:?}")
            }
            CheckpointError::PolicyMismatch { expected, found } => {
                write!(
                    f,
                    "sharded checkpoint mixes control policies ({expected:?} vs {found:?})"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<InvalidParamsError> for CheckpointError {
    fn from(e: InvalidParamsError) -> Self {
        CheckpointError::Invalid(e)
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self::with_version(VERSION)
    }

    /// A writer emitting an older format version — only used to produce
    /// compatibility fixtures in tests; [`snapshot`] always writes
    /// [`VERSION`].
    ///
    /// [`snapshot`]: ReactiveController::snapshot
    fn with_version(version: u8) -> Self {
        debug_assert!((MIN_VERSION..=VERSION).contains(&version));
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.push(version);
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 varint.
    fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// IEEE-754 bit pattern, 8 bytes little-endian (varints would mangle
    /// the high-entropy mantissa into 10 bytes for no benefit).
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    fn dir(&mut self, d: Direction) {
        self.u8(match d {
            Direction::Taken => 0,
            Direction::NotTaken => 1,
        });
    }

    fn opt_dir(&mut self, d: Option<Direction>) {
        self.u8(match d {
            None => 0,
            Some(Direction::Taken) => 1,
            Some(Direction::NotTaken) => 2,
        });
    }

    /// Length-prefixed raw bytes.
    fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn truncated(&self) -> CheckpointError {
        CheckpointError::Truncated { offset: self.pos }
    }

    fn corrupt(&self, what: &'static str) -> CheckpointError {
        CheckpointError::Corrupt {
            offset: self.pos,
            what,
        }
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let start = self.pos;
        let mut v: u64 = 0;
        for shift in (0..).step_by(7) {
            if shift >= 64 {
                self.pos = start;
                return Err(self.corrupt("varint longer than 64 bits"));
            }
            let byte = self.u8()?;
            let payload = u64::from(byte & 0x7f);
            if shift == 63 && payload > 1 {
                self.pos = start;
                return Err(self.corrupt("varint overflows u64"));
            }
            v |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| self.corrupt("value exceeds u32"))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.corrupt("value exceeds usize"))
    }

    /// Bounded length prefix: lengths are additionally sanity-capped by
    /// the bytes remaining, so a corrupt length cannot drive a huge
    /// allocation (each element costs at least one byte).
    fn len_prefix(&mut self) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(self.corrupt("length prefix exceeds remaining bytes"));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        let end = self.pos.checked_add(8).ok_or_else(|| self.truncated())?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().unwrap(),
        )))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(self.corrupt("bad option tag")),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(self.corrupt("bad option tag")),
        }
    }

    fn dir(&mut self) -> Result<Direction, CheckpointError> {
        match self.u8()? {
            0 => Ok(Direction::Taken),
            1 => Ok(Direction::NotTaken),
            _ => Err(self.corrupt("bad direction tag")),
        }
    }

    fn opt_dir(&mut self) -> Result<Option<Direction>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(Direction::Taken)),
            2 => Ok(Some(Direction::NotTaken)),
            _ => Err(self.corrupt("bad optional-direction tag")),
        }
    }

    /// Length-prefixed raw bytes.
    fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.len_prefix()?;
        let end = self.pos + n;
        let b = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(b)
    }
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

fn write_params(w: &mut Writer, p: &ControllerParams) {
    w.u64(p.monitor_period);
    match p.monitor_policy {
        MonitorPolicy::FixedWindow => w.u8(0),
        MonitorPolicy::Confidence {
            z,
            min_execs,
            max_execs,
        } => {
            w.u8(1);
            w.f64(z);
            w.u64(min_execs);
            w.u64(max_execs);
        }
    }
    w.u64(p.monitor_sample_rate);
    w.f64(p.selection_threshold);
    match p.eviction {
        EvictionMode::Counter {
            up,
            down,
            threshold,
        } => {
            w.u8(0);
            w.u32(up);
            w.u32(down);
            w.u32(threshold);
        }
        EvictionMode::Sampling {
            period,
            samples,
            bias_threshold,
        } => {
            w.u8(1);
            w.u64(period);
            w.u64(samples);
            w.f64(bias_threshold);
        }
        EvictionMode::Never => w.u8(2),
    }
    match p.revisit {
        Revisit::After(n) => {
            w.u8(0);
            w.u64(n);
        }
        Revisit::Never => w.u8(1),
    }
    w.opt_u32(p.oscillation_limit);
    w.u64(p.optimization_latency);
}

fn read_params(r: &mut Reader<'_>) -> Result<ControllerParams, CheckpointError> {
    let monitor_period = r.u64()?;
    let monitor_policy = match r.u8()? {
        0 => MonitorPolicy::FixedWindow,
        1 => MonitorPolicy::Confidence {
            z: r.f64()?,
            min_execs: r.u64()?,
            max_execs: r.u64()?,
        },
        _ => return Err(r.corrupt("bad monitor-policy tag")),
    };
    let monitor_sample_rate = r.u64()?;
    let selection_threshold = r.f64()?;
    let eviction = match r.u8()? {
        0 => EvictionMode::Counter {
            up: r.u32()?,
            down: r.u32()?,
            threshold: r.u32()?,
        },
        1 => EvictionMode::Sampling {
            period: r.u64()?,
            samples: r.u64()?,
            bias_threshold: r.f64()?,
        },
        2 => EvictionMode::Never,
        _ => return Err(r.corrupt("bad eviction-mode tag")),
    };
    let revisit = match r.u8()? {
        0 => Revisit::After(r.u64()?),
        1 => Revisit::Never,
        _ => return Err(r.corrupt("bad revisit tag")),
    };
    let oscillation_limit = r.opt_u32()?;
    let optimization_latency = r.u64()?;
    Ok(ControllerParams {
        monitor_period,
        monitor_policy,
        monitor_sample_rate,
        selection_threshold,
        eviction,
        revisit,
        oscillation_limit,
        optimization_latency,
    })
}

fn write_resilience(w: &mut Writer, rs: &ResilienceState) {
    // Static configuration.
    match rs.config.deployer {
        DeployerSpec::Instant => w.u8(0),
        DeployerSpec::Faulty(spec) => {
            w.u8(1);
            w.u64(spec.seed);
            match spec.mode {
                FaultMode::FixedRate { per_mille } => {
                    w.u8(0);
                    w.u32(u32::from(per_mille));
                }
                FaultMode::Burst { period, len } => {
                    w.u8(1);
                    w.u64(period);
                    w.u64(len);
                }
                FaultMode::TargetedBranch { branch } => {
                    w.u8(2);
                    w.u32(branch);
                }
            }
            w.u8(match spec.scope {
                FaultScope::All => 0,
                FaultScope::OptimizeOnly => 1,
                FaultScope::RepairOnly => 2,
            });
            w.u64(spec.wasted);
        }
    }
    w.u32(rs.config.retry.max_attempts);
    w.u64(rs.config.retry.base_backoff);
    w.u64(rs.config.retry.max_backoff);
    match &rs.config.breaker {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            w.u64(b.bucket_events);
            w.usize(b.buckets);
            w.f64(b.open_threshold);
            w.f64(b.close_threshold);
            w.u64(b.cooldown_events);
            w.u64(b.probe_events);
            w.usize(b.mass_evict_top_k);
        }
    }
    // Runtime state.
    w.u64(rs.deployer.requests());
    if let Some(b) = &rs.breaker {
        match b.phase() {
            BreakerPhase::Closed => w.u8(0),
            BreakerPhase::Open { since } => {
                w.u8(1);
                w.u64(since);
            }
            BreakerPhase::HalfOpen { since } => {
                w.u8(2);
                w.u64(since);
            }
        }
        let (window, cur, warm, probe_seen, probe_misses) = b.raw_parts();
        w.usize(window.len());
        for &(events, misses) in window {
            w.u64(events);
            w.u64(misses);
        }
        w.usize(cur);
        w.usize(warm);
        w.u64(probe_seen);
        w.u64(probe_misses);
    }
    w.u64(rs.deploy_failures);
    w.u64(rs.deploy_retries);
    w.u64(rs.forced_disables);
    w.u64(rs.suppressed_enters);
}

fn read_resilience(r: &mut Reader<'_>) -> Result<ResilienceState, CheckpointError> {
    let deployer = match r.u8()? {
        0 => DeployerSpec::Instant,
        1 => {
            let seed = r.u64()?;
            let mode = match r.u8()? {
                0 => {
                    let pm = r.u32()?;
                    let per_mille =
                        u16::try_from(pm).map_err(|_| r.corrupt("per_mille exceeds u16"))?;
                    FaultMode::FixedRate { per_mille }
                }
                1 => FaultMode::Burst {
                    period: r.u64()?,
                    len: r.u64()?,
                },
                2 => FaultMode::TargetedBranch { branch: r.u32()? },
                _ => return Err(r.corrupt("bad fault-mode tag")),
            };
            let scope = match r.u8()? {
                0 => FaultScope::All,
                1 => FaultScope::OptimizeOnly,
                2 => FaultScope::RepairOnly,
                _ => return Err(r.corrupt("bad fault-scope tag")),
            };
            let wasted = r.u64()?;
            DeployerSpec::Faulty(FaultSpec {
                seed,
                mode,
                scope,
                wasted,
            })
        }
        _ => return Err(r.corrupt("bad deployer tag")),
    };
    let retry = RetryPolicy {
        max_attempts: r.u32()?,
        base_backoff: r.u64()?,
        max_backoff: r.u64()?,
    };
    let breaker_config = match r.u8()? {
        0 => None,
        1 => Some(BreakerConfig {
            bucket_events: r.u64()?,
            buckets: r.usize()?,
            open_threshold: r.f64()?,
            close_threshold: r.f64()?,
            cooldown_events: r.u64()?,
            probe_events: r.u64()?,
            mass_evict_top_k: r.usize()?,
        }),
        _ => return Err(r.corrupt("bad breaker-config tag")),
    };
    let config = ResilienceConfig {
        deployer,
        retry,
        breaker: breaker_config,
    };
    // Validates the config (including the breaker config) before any
    // runtime state is trusted.
    let mut rs = ResilienceState::new(config)?;
    rs.deployer.set_requests(r.u64()?);
    if let Some(bc) = breaker_config {
        let phase = match r.u8()? {
            0 => BreakerPhase::Closed,
            1 => BreakerPhase::Open { since: r.u64()? },
            2 => BreakerPhase::HalfOpen { since: r.u64()? },
            _ => return Err(r.corrupt("bad breaker-phase tag")),
        };
        let n = r.len_prefix()?;
        if n != bc.buckets {
            return Err(r.corrupt("breaker window length disagrees with config"));
        }
        let mut window = Vec::with_capacity(n);
        for _ in 0..n {
            let events = r.u64()?;
            let misses = r.u64()?;
            window.push((events, misses));
        }
        let cur = r.usize()?;
        if cur >= n {
            return Err(r.corrupt("breaker cursor outside window"));
        }
        let warm = r.usize()?;
        if warm > n {
            return Err(r.corrupt("breaker warm count exceeds window"));
        }
        let probe_seen = r.u64()?;
        let probe_misses = r.u64()?;
        rs.breaker = Some(StormBreaker::restore(
            bc,
            phase,
            window,
            cur,
            warm,
            probe_seen,
            probe_misses,
        ));
    }
    rs.deploy_failures = r.u64()?;
    rs.deploy_retries = r.u64()?;
    rs.forced_disables = r.u64()?;
    rs.suppressed_enters = r.u64()?;
    Ok(rs)
}

fn write_log(w: &mut Writer, log: &TransitionLog) {
    match log.policy() {
        TransitionLogPolicy::Full => w.u8(0),
        TransitionLogPolicy::CountsOnly => w.u8(1),
        TransitionLogPolicy::RingBuffer(n) => {
            w.u8(2);
            w.usize(n);
        }
    }
    let (events, counts) = log.raw_storage();
    w.usize(counts.len());
    for &c in counts {
        w.u64(c);
    }
    // The raw vector, not `as_slice()`: a ring log holds up to `2n`
    // events between compactions and resume must land on the same
    // amortization boundary to stay bit-identical.
    w.usize(events.len());
    for ev in events {
        w.u32(ev.branch.index() as u32);
        w.u8(ev.kind.index() as u8);
        w.u64(ev.event_index);
        w.u64(ev.instr);
        w.opt_dir(ev.direction);
    }
}

fn read_log(r: &mut Reader<'_>) -> Result<TransitionLog, CheckpointError> {
    let policy = match r.u8()? {
        0 => TransitionLogPolicy::Full,
        1 => TransitionLogPolicy::CountsOnly,
        2 => TransitionLogPolicy::RingBuffer(r.usize()?),
        _ => return Err(r.corrupt("bad log-policy tag")),
    };
    let n_counts = r.len_prefix()?;
    if n_counts != TransitionKind::ALL.len() {
        return Err(r.corrupt("transition-kind count disagrees with this build"));
    }
    let mut counts = [0u64; TransitionKind::ALL.len()];
    for c in counts.iter_mut() {
        *c = r.u64()?;
    }
    let n_events = r.len_prefix()?;
    if let TransitionLogPolicy::RingBuffer(n) = policy {
        if n_events > 2 * n {
            return Err(r.corrupt("ring log holds more than 2n events"));
        }
    }
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let branch = BranchId::new(r.u32()?);
        let kind_idx = r.u8()? as usize;
        let kind = *TransitionKind::ALL
            .get(kind_idx)
            .ok_or_else(|| r.corrupt("bad transition-kind index"))?;
        let event_index = r.u64()?;
        let instr = r.u64()?;
        let direction = r.opt_dir()?;
        events.push(TransitionEvent {
            branch,
            kind,
            event_index,
            instr,
            direction,
        });
    }
    Ok(TransitionLog::from_raw_storage(policy, events, counts))
}

fn write_branch(w: &mut Writer, b: &BranchCtl, version: u8) {
    match &b.state {
        State::Monitor {
            execs,
            samples,
            taken,
        } => {
            w.u8(0);
            w.u64(*execs);
            w.u64(*samples);
            w.u64(*taken);
        }
        State::PendingBiased { deadline, dir } => {
            w.u8(1);
            w.u64(*deadline);
            w.dir(*dir);
        }
        State::Biased { dir, tracker } => {
            w.u8(2);
            w.dir(*dir);
            match tracker {
                EvictTracker::Counter(c) => {
                    w.u8(0);
                    w.u32(c.value());
                    if version >= 4 {
                        // v4 carries the full counter shape: policies
                        // parametrize trackers independently of the
                        // eviction mode, so the shape can no longer be
                        // re-derived from the params.
                        w.u32(c.up());
                        w.u32(c.down());
                        w.u32(c.threshold());
                    }
                }
                EvictTracker::Sampling {
                    pos,
                    matched,
                    sampled,
                } => {
                    w.u8(1);
                    w.u64(*pos);
                    w.u64(*matched);
                    w.u64(*sampled);
                }
                EvictTracker::Never => w.u8(2),
            }
        }
        State::PendingMonitor { deadline, dir } => {
            w.u8(3);
            w.u64(*deadline);
            w.dir(*dir);
        }
        State::Unbiased { remaining } => {
            w.u8(4);
            w.opt_u64(*remaining);
        }
        State::Disabled => w.u8(5),
        State::RetryBiased { next, dir, attempt } => {
            w.u8(6);
            w.u64(*next);
            w.dir(*dir);
            w.u32(*attempt);
        }
        State::RetryMonitor { next, dir, attempt } => {
            w.u8(7);
            w.u64(*next);
            w.dir(*dir);
            w.u32(*attempt);
        }
    }
    w.u32(b.entries);
    w.u32(b.entries_since_flush);
    w.u32(b.evictions);
    w.u64(b.execs);
    w.u64(b.recent_misses);
}

fn read_branch(
    r: &mut Reader<'_>,
    params: &ControllerParams,
    version: u8,
) -> Result<BranchCtl, CheckpointError> {
    let state = match r.u8()? {
        0 => State::Monitor {
            execs: r.u64()?,
            samples: r.u64()?,
            taken: r.u64()?,
        },
        1 => State::PendingBiased {
            deadline: r.u64()?,
            dir: r.dir()?,
        },
        2 => {
            let dir = r.dir()?;
            let tracker = match r.u8()? {
                0 if version >= 4 => {
                    // v4 serializes the full counter shape alongside the
                    // value, because policies may hand out trackers whose
                    // shape differs from the params' eviction mode.
                    let value = r.u32()?;
                    let up = r.u32()?;
                    let down = r.u32()?;
                    let threshold = r.u32()?;
                    if up == 0 || down == 0 || threshold < up {
                        return Err(r.corrupt("invalid counter tracker shape"));
                    }
                    let mut c = HysteresisCounter::new(up, down, threshold);
                    c.set_value(value);
                    EvictTracker::Counter(c)
                }
                0 => {
                    // v3: the counter's shape lives in the params; only
                    // its value is serialized. A tracker kind that
                    // disagrees with the eviction mode means the blob was
                    // not produced against these params.
                    let EvictionMode::Counter {
                        up,
                        down,
                        threshold,
                    } = params.eviction
                    else {
                        return Err(r.corrupt("counter tracker under non-counter eviction mode"));
                    };
                    let value = r.u32()?;
                    let mut c = HysteresisCounter::new(up, down, threshold);
                    c.set_value(value);
                    EvictTracker::Counter(c)
                }
                1 => EvictTracker::Sampling {
                    pos: r.u64()?,
                    matched: r.u64()?,
                    sampled: r.u64()?,
                },
                2 => EvictTracker::Never,
                _ => return Err(r.corrupt("bad evict-tracker tag")),
            };
            State::Biased { dir, tracker }
        }
        3 => State::PendingMonitor {
            deadline: r.u64()?,
            dir: r.dir()?,
        },
        4 => State::Unbiased {
            remaining: r.opt_u64()?,
        },
        5 => State::Disabled,
        6 => State::RetryBiased {
            next: r.u64()?,
            dir: r.dir()?,
            attempt: r.u32()?,
        },
        7 => State::RetryMonitor {
            next: r.u64()?,
            dir: r.dir()?,
            attempt: r.u32()?,
        },
        _ => return Err(r.corrupt("bad branch-state tag")),
    };
    Ok(BranchCtl {
        state,
        entries: r.u32()?,
        entries_since_flush: r.u32()?,
        evictions: r.u32()?,
        execs: r.u64()?,
        recent_misses: r.u64()?,
    })
}

/// Telemetry section: only the metric state that cannot be re-derived is
/// serialized — histogram buckets plus the interval bookkeeping. Counters
/// and gauges are synthesized from controller state at export, and sinks
/// are live I/O handles, so neither is written (reattach a sink with
/// [`ReactiveController::restore_with_sink`]).
fn write_telemetry(w: &mut Writer, telemetry: Option<&Telemetry>) {
    let Some(cm) = telemetry.and_then(|t| t.metrics.as_ref()) else {
        w.u8(0);
        return;
    };
    w.u8(1);
    let bounds = cm.interval_bounds();
    w.usize(bounds.len());
    for &b in bounds {
        w.u64(b);
    }
    for id in cm.histograms_in_order() {
        let h = cm.registry.histogram_ref(id);
        w.usize(h.buckets().len());
        for &b in h.buckets() {
            w.u64(b);
        }
        w.u64(h.count());
        w.u64(h.sum());
    }
    w.opt_u64(cm.last_misspec_event);
    w.usize(cm.enter_event.len());
    for &e in &cm.enter_event {
        w.u64(e);
    }
    w.opt_u64(cm.breaker_open_since);
    w.opt_u64(cm.breaker_half_since);
}

fn read_telemetry(r: &mut Reader<'_>) -> Result<Option<Box<Telemetry>>, CheckpointError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n = r.len_prefix()?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push(r.u64()?);
            }
            let mut cm = ControllerMetrics::with_interval_bounds(&bounds)
                .map_err(|_| r.corrupt("histogram bounds must be strictly increasing"))?;
            for id in cm.histograms_in_order() {
                let n = r.len_prefix()?;
                let mut buckets = Vec::with_capacity(n);
                for _ in 0..n {
                    buckets.push(r.u64()?);
                }
                let count = r.u64()?;
                let sum = r.u64()?;
                if let Err(what) = cm.registry.histogram_mut(id).set_raw(buckets, count, sum) {
                    return Err(r.corrupt(what));
                }
            }
            cm.last_misspec_event = r.opt_u64()?;
            let n = r.len_prefix()?;
            let mut enter_event = Vec::with_capacity(n);
            for _ in 0..n {
                enter_event.push(r.u64()?);
            }
            cm.enter_event = enter_event;
            cm.breaker_open_since = r.opt_u64()?;
            cm.breaker_half_since = r.opt_u64()?;
            Ok(Some(Box::new(Telemetry {
                metrics: Some(cm),
                sink: None,
            })))
        }
        _ => Err(r.corrupt("bad telemetry tag")),
    }
}

// ---------------------------------------------------------------------------
// Whole-controller bodies (shared by the plain and sharded formats)
// ---------------------------------------------------------------------------

/// Serializes one complete controller (params through telemetry) — the
/// repeated unit of the format. A plain checkpoint holds one body; a
/// sharded checkpoint holds one per shard, in shard order. From v4 the
/// body carries a policy section (length-prefixed id, length-prefixed
/// config blob) right after the params.
fn write_controller_body(w: &mut Writer, ctl: &ReactiveController, version: u8) {
    write_params(w, &ctl.params);
    if version >= 4 {
        w.bytes(ctl.policy.id().as_bytes());
        w.bytes(&ctl.policy.config_blob());
    }
    match &ctl.resilience {
        None => w.u8(0),
        Some(rs) => {
            w.u8(1);
            write_resilience(w, rs);
        }
    }
    w.u64(ctl.events);
    w.u64(ctl.instructions);
    w.u64(ctl.correct);
    w.u64(ctl.incorrect);
    write_log(w, &ctl.log);
    w.usize(ctl.branches.len());
    for b in &ctl.branches {
        write_branch(w, b, version);
    }
    write_telemetry(w, ctl.telemetry.as_deref());
}

fn read_controller_body(
    r: &mut Reader<'_>,
    version: u8,
) -> Result<ReactiveController, CheckpointError> {
    let params = read_params(r)?;
    params.validate()?;
    let policy: Arc<dyn Policy> = if version >= 4 {
        let id = match std::str::from_utf8(r.bytes()?) {
            Ok(s) => s.to_owned(),
            Err(_) => return Err(r.corrupt("policy id is not valid UTF-8")),
        };
        let blob = r.bytes()?.to_vec();
        match policy_from_blob(&id, &blob) {
            Some(p) => p,
            None => return Err(CheckpointError::UnknownPolicy { id }),
        }
    } else {
        // v3 blobs predate the policy seam; they were all produced by the
        // paper FSM.
        Arc::new(PaperFsm)
    };
    let resilience = match r.u8()? {
        0 => None,
        1 => Some(read_resilience(r)?),
        _ => return Err(r.corrupt("bad resilience tag")),
    };
    let events = r.u64()?;
    let instructions = r.u64()?;
    let correct = r.u64()?;
    let incorrect = r.u64()?;
    let log = read_log(r)?;
    let n_branches = r.len_prefix()?;
    let mut branches = Vec::with_capacity(n_branches);
    for _ in 0..n_branches {
        branches.push(read_branch(r, &params, version)?);
    }
    let telemetry = read_telemetry(r)?;
    Ok(ReactiveController {
        params,
        policy,
        branches,
        log,
        events,
        instructions,
        correct,
        incorrect,
        resilience,
        telemetry,
    })
}

/// Validates the magic and version, returning a reader positioned at the
/// shard-count varint plus the format version the body must be decoded
/// with. Every version back to [`MIN_VERSION`] is accepted.
fn read_header(bytes: &[u8]) -> Result<(Reader<'_>, u8), CheckpointError> {
    if bytes.len() < MAGIC.len() + 1 {
        return Err(CheckpointError::Truncated {
            offset: bytes.len(),
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = bytes[MAGIC.len()];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let mut r = Reader::new(bytes);
    r.pos = MAGIC.len() + 1;
    Ok((r, version))
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

impl ReactiveController {
    /// Serializes the complete controller state into a self-contained,
    /// versioned checkpoint.
    ///
    /// The checkpoint captures everything that affects future behavior:
    /// parameters, the resilience configuration and its runtime state
    /// (deployer request ordinal, breaker phase and window), global
    /// counters, the transition log (including the ring buffer's internal
    /// amortization state), and every per-branch FSM. Restoring and
    /// replaying the rest of a trace is bit-identical to never having
    /// checkpointed.
    /// If telemetry is enabled, histogram state is serialized too (so
    /// metrics survive restore), and a [`ObsEvent::CheckpointSaved`] event
    /// is emitted to the attached sink. The emitted event never alters the
    /// serialized bytes: snapshotting is observationally transparent.
    pub fn snapshot(&self) -> ControllerCheckpoint {
        let mut w = Writer::new();
        w.usize(1); // shard count: a plain controller is one shard
        write_controller_body(&mut w, self, VERSION);
        let cp = ControllerCheckpoint { bytes: w.buf };
        if let Some(t) = &self.telemetry {
            t.emit(&ObsEvent::CheckpointSaved {
                events: self.events,
                bytes: cp.len() as u64,
            });
        }
        cp
    }

    /// Rebuilds a controller from a checkpoint produced by
    /// [`snapshot`](ReactiveController::snapshot).
    ///
    /// Decoding is strict: the magic and version are checked, every tag
    /// and length is validated, the embedded parameters and resilience
    /// configuration are re-validated, and trailing bytes are rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] describing the first problem found,
    /// with the byte offset for structural corruption.
    pub fn restore(cp: &ControllerCheckpoint) -> Result<Self, CheckpointError> {
        let bytes = cp.as_bytes();
        let (mut r, version) = read_header(bytes)?;
        let shard_count = r.len_prefix()?;
        if shard_count != 1 {
            return Err(r.corrupt("sharded checkpoint: restore it via ShardedController::restore"));
        }
        let ctl = read_controller_body(&mut r, version)?;
        if r.pos != bytes.len() {
            return Err(r.corrupt("trailing bytes after checkpoint"));
        }
        Ok(ctl)
    }

    /// Rebuilds a controller from a checkpoint and attaches `sink` for
    /// observability events, emitting [`ObsEvent::CheckpointRestored`]
    /// once the restore succeeds.
    ///
    /// Sinks are live I/O handles and are never serialized, so a restored
    /// controller is sink-less by default; this is the one-call way to
    /// resume a run without losing its event stream.
    ///
    /// # Errors
    ///
    /// Same as [`restore`](ReactiveController::restore).
    pub fn restore_with_sink(
        cp: &ControllerCheckpoint,
        sink: Arc<dyn EventSink>,
    ) -> Result<Self, CheckpointError> {
        let mut ctl = Self::restore(cp)?;
        ctl.attach_event_sink(sink);
        if let Some(t) = &ctl.telemetry {
            t.emit(&ObsEvent::CheckpointRestored {
                events: ctl.events,
                bytes: cp.len() as u64,
            });
        }
        Ok(ctl)
    }
}

impl crate::shard::ShardedController {
    /// Serializes every shard's complete state into one checkpoint:
    /// the shard count, then one controller body per shard in shard
    /// order. Restoring yields the same merged exposition (stats,
    /// transition counts, snapshots, metrics) as a straight run.
    pub fn snapshot(&self) -> ControllerCheckpoint {
        let mut w = Writer::new();
        w.usize(self.shard_count());
        // Each body is serialized on its shard's owning worker (the body
        // format is self-delimiting, so per-shard buffers concatenate
        // into exactly the stream a single writer would produce).
        let bodies: Vec<Vec<u8>> = self.map_shards(|_, ctl| {
            let mut body = Writer { buf: Vec::new() };
            write_controller_body(&mut body, ctl, VERSION);
            body.buf
        });
        for body in bodies {
            w.buf.extend_from_slice(&body);
        }
        ControllerCheckpoint { bytes: w.buf }
    }

    /// Rebuilds a sharded engine from a checkpoint.
    ///
    /// Accepts any shard count ≥ 1 — a plain
    /// [`ReactiveController::snapshot`] blob restores as a one-shard
    /// engine. Decoding is strict (same guarantees as
    /// [`ReactiveController::restore`]), and the shards are additionally
    /// required to be mutually consistent: identical parameters, no
    /// resilience state, and a uniform telemetry shape.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] describing the first problem found.
    pub fn restore(cp: &ControllerCheckpoint) -> Result<Self, CheckpointError> {
        let bytes = cp.as_bytes();
        let (mut r, version) = read_header(bytes)?;
        let shard_count = r.len_prefix()?;
        if shard_count == 0 {
            return Err(r.corrupt("checkpoint contains zero shards"));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let ctl = read_controller_body(&mut r, version)?;
            if ctl.resilience.is_some() {
                return Err(CheckpointError::Invalid(InvalidParamsError::bad_field(
                    "shards",
                    shard_count,
                    "resilience is global state and cannot be sharded",
                )));
            }
            shards.push(ctl);
        }
        if r.pos != bytes.len() {
            return Err(r.corrupt("trailing bytes after checkpoint"));
        }
        let first_params = shards[0].params;
        let first_metered = shards[0]
            .telemetry
            .as_ref()
            .is_some_and(|t| t.metrics.is_some());
        let first_policy_id = shards[0].policy.id();
        let first_policy_blob = shards[0].policy.config_blob();
        for ctl in &shards[1..] {
            if ctl.params != first_params {
                return Err(r.corrupt("shards disagree on controller parameters"));
            }
            if ctl.policy.id() != first_policy_id {
                return Err(CheckpointError::PolicyMismatch {
                    expected: first_policy_id.to_owned(),
                    found: ctl.policy.id().to_owned(),
                });
            }
            if ctl.policy.config_blob() != first_policy_blob {
                return Err(r.corrupt("shards disagree on policy configuration"));
            }
            let metered = ctl.telemetry.as_ref().is_some_and(|t| t.metrics.is_some());
            if metered != first_metered {
                return Err(r.corrupt("shards disagree on telemetry shape"));
            }
        }
        // Restored state is handed straight into a fresh engine — worker
        // threads take ownership of their shards under the current
        // global thread cap, exactly as a newly built engine would.
        Ok(crate::shard::ShardedController::from_parts(
            shards,
            rsc_util::parallel::max_threads(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::DeployOutcome;
    use rsc_trace::BranchRecord;

    fn drive(ctl: &mut ReactiveController, n: u64) {
        // Two branches: one strongly biased, one alternating (keeps the
        // eviction machinery and misspeculation counters busy).
        for i in 0..n {
            let (branch, taken) = if i % 3 == 0 {
                (BranchId::new(1), i % 2 == 0)
            } else {
                (BranchId::new(0), true)
            };
            ctl.observe(&BranchRecord {
                branch,
                taken,
                instr: i * 10,
            });
        }
    }

    #[test]
    fn round_trips_a_plain_controller() {
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        drive(&mut ctl, 5_000);
        let cp = ctl.snapshot();
        let restored = ReactiveController::restore(&cp).unwrap();
        assert_eq!(restored.stats(), ctl.stats());
        assert_eq!(
            restored.transition_log().as_slice(),
            ctl.transition_log().as_slice()
        );
        assert_eq!(restored.params(), ctl.params());
    }

    #[test]
    fn round_trips_resilience_runtime_state() {
        let config = ResilienceConfig {
            deployer: DeployerSpec::Faulty(FaultSpec {
                seed: 42,
                mode: FaultMode::FixedRate { per_mille: 400 },
                scope: FaultScope::All,
                wasted: 25,
            }),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: 50,
                max_backoff: 200,
            },
            breaker: Some(BreakerConfig {
                bucket_events: 64,
                buckets: 4,
                open_threshold: 0.3,
                close_threshold: 0.1,
                cooldown_events: 128,
                probe_events: 64,
                mass_evict_top_k: 2,
            }),
        };
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .resilience(config)
            .build()
            .unwrap();
        drive(&mut ctl, 5_000);
        let cp = ctl.snapshot();
        let restored = ReactiveController::restore(&cp).unwrap();
        assert_eq!(restored.stats(), ctl.stats());
        assert_eq!(restored.resilience_config(), ctl.resilience_config());
        // The deployer ordinal must survive: the next fault decision
        // depends on it.
        let (a, b) = (
            ctl.resilience.as_ref().unwrap(),
            restored.resilience.as_ref().unwrap(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        drive(&mut ctl, 2_000);
        assert_eq!(ctl.snapshot(), ctl.snapshot());
        assert_eq!(ctl.snapshot(), ctl.clone().snapshot());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        let mut bytes = ctl.snapshot().into_bytes();
        bytes[0] = b'X';
        let err = ReactiveController::restore(&ControllerCheckpoint::from_bytes(bytes.clone()))
            .unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
        bytes[0] = b'R';
        bytes[4] = 99;
        let err =
            ReactiveController::restore(&ControllerCheckpoint::from_bytes(bytes)).unwrap_err();
        assert_eq!(err, CheckpointError::UnsupportedVersion(99));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        drive(&mut ctl, 1_000);
        let bytes = ctl.snapshot().into_bytes();
        for cut in 0..bytes.len() {
            let cp = ControllerCheckpoint::from_bytes(bytes[..cut].to_vec());
            assert!(
                ReactiveController::restore(&cp).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        let mut bytes = ctl.snapshot().into_bytes();
        bytes.push(0);
        let err =
            ReactiveController::restore(&ControllerCheckpoint::from_bytes(bytes)).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { what, .. }
            if what == "trailing bytes after checkpoint"));
    }

    #[test]
    fn rejects_corrupted_histogram_footer() {
        // A checkpoint whose histogram count disagrees with its bucket
        // sum can only come from corruption; restore must refuse it.
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .metrics()
            .build()
            .unwrap();
        drive(&mut ctl, 5_000);
        {
            let cm = ctl.telemetry.as_mut().unwrap().metrics.as_mut().unwrap();
            let id = cm.ids.misspec_interval;
            let honest = cm.registry.histogram_ref(id).count();
            cm.registry.histogram_mut(id).force_count(honest + 7);
        }
        let err = ReactiveController::restore(&ctl.snapshot()).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { what, .. }
            if what == "histogram count disagrees with bucket sum"));
    }

    #[test]
    fn round_trips_a_sharded_controller() {
        use crate::shard::ShardedController;
        use crate::TransitionKind;
        let mut shd = ReactiveController::builder(ControllerParams::scaled())
            .shards(3)
            .metrics()
            .build_sharded()
            .unwrap();
        let records: Vec<BranchRecord> = (0..5_000u64)
            .map(|i| BranchRecord {
                branch: BranchId::new((i % 7) as u32),
                taken: (i / 40) % 2 == 0,
                instr: i * 10,
            })
            .collect();
        shd.observe_chunk(&records);
        let cp = shd.snapshot();
        let restored = ShardedController::restore(&cp).unwrap();
        assert_eq!(restored.shard_count(), 3);
        assert_eq!(restored.stats(), shd.stats());
        for kind in TransitionKind::ALL {
            assert_eq!(restored.transition_count(kind), shd.transition_count(kind));
        }
        for b in 0..7u32 {
            assert_eq!(
                restored.branch_snapshot(BranchId::new(b)),
                shd.branch_snapshot(BranchId::new(b))
            );
        }
        assert_eq!(
            restored.metrics().unwrap().render_prometheus(),
            shd.metrics().unwrap().render_prometheus(),
            "restore preserves the merged exposition"
        );
        // Resume-equals-straight-run across the shard boundary.
        let mut resumed = ShardedController::restore(&cp).unwrap();
        assert_eq!(resumed.observe_chunk(&records), shd.observe_chunk(&records));
        assert_eq!(resumed.stats(), shd.stats());
    }

    #[test]
    fn pooled_and_inline_round_trips_are_bit_identical() {
        use crate::shard::ShardedController;
        // A chunked many-branch trace wide enough to exercise the routed
        // fast path (bulk observe arms, multi-block chunks).
        let chunk = |lo: u64, hi: u64| -> Vec<BranchRecord> {
            (lo..hi)
                .map(|i| {
                    let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(7);
                    x ^= x >> 29;
                    BranchRecord {
                        branch: BranchId::new((x % 257) as u32),
                        taken: x & 8 != 0,
                        instr: i * 3,
                    }
                })
                .collect()
        };
        let build = |threads: usize| {
            ReactiveController::builder(ControllerParams::scaled())
                .shards(4)
                .pool_threads(threads)
                .build_sharded()
                .unwrap()
        };
        let mut inline = build(1);
        let mut pooled = build(4);
        assert_eq!(inline.pool_threads(), 1);
        assert_eq!(pooled.pool_threads(), 4);
        let first = chunk(0, 30_000);
        assert_eq!(inline.observe_chunk(&first), pooled.observe_chunk(&first));
        let cp_inline = inline.snapshot();
        let cp_pooled = pooled.snapshot();
        assert_eq!(
            cp_inline.as_bytes(),
            cp_pooled.as_bytes(),
            "checkpoints are engine-shape-independent"
        );
        // restore → observe → checkpoint again: the second-generation
        // checkpoints must also agree bit-for-bit, whether the next chunk
        // went through the restored engine or the original pooled one.
        let second = chunk(30_000, 60_000);
        let mut restored = ShardedController::restore(&cp_inline).unwrap();
        let resumed_summary = restored.observe_chunk(&second);
        assert_eq!(resumed_summary, pooled.observe_chunk(&second));
        assert_eq!(inline.observe_chunk(&second), resumed_summary);
        assert_eq!(restored.snapshot().as_bytes(), pooled.snapshot().as_bytes());
        assert_eq!(inline.snapshot().as_bytes(), restored.snapshot().as_bytes());
        assert_eq!(restored.stats(), pooled.stats());
    }

    #[test]
    fn plain_restore_refuses_sharded_blobs_and_vice_versa() {
        use crate::shard::ShardedController;
        let mut shd = ReactiveController::builder(ControllerParams::scaled())
            .shards(2)
            .build_sharded()
            .unwrap();
        drive_sharded(&mut shd, 1_000);
        let err = ReactiveController::restore(&shd.snapshot()).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { what, .. }
            if what.starts_with("sharded checkpoint")));

        // The other direction is accepted: a plain blob is one shard.
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        drive(&mut ctl, 1_000);
        let as_sharded = ShardedController::restore(&ctl.snapshot()).unwrap();
        assert_eq!(as_sharded.shard_count(), 1);
        assert_eq!(as_sharded.stats(), ctl.stats());
    }

    #[test]
    fn sharded_restore_stays_strict() {
        let mut shd = ReactiveController::builder(ControllerParams::scaled())
            .shards(2)
            .build_sharded()
            .unwrap();
        drive_sharded(&mut shd, 500);
        let bytes = shd.snapshot().into_bytes();
        for cut in 0..bytes.len() {
            let cp = ControllerCheckpoint::from_bytes(bytes[..cut].to_vec());
            assert!(
                crate::shard::ShardedController::restore(&cp).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        let err =
            crate::shard::ShardedController::restore(&ControllerCheckpoint::from_bytes(trailing))
                .unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { what, .. }
            if what == "trailing bytes after checkpoint"));
    }

    fn drive_sharded(shd: &mut crate::shard::ShardedController, n: u64) {
        for i in 0..n {
            let (branch, taken) = if i % 3 == 0 {
                (BranchId::new(1), i % 2 == 0)
            } else {
                (BranchId::new(0), true)
            };
            shd.observe(&BranchRecord {
                branch,
                taken,
                instr: i * 10,
            });
        }
    }

    #[test]
    fn restored_deployer_continues_the_fault_schedule() {
        // Drive a faulty controller, checkpoint, then compare the *next*
        // deployment outcomes between the original and a restored copy —
        // they must consult the same ordinal.
        use crate::resilience::deployer::{DeployKind, DeployRequest};
        let config = ResilienceConfig {
            deployer: DeployerSpec::Faulty(FaultSpec {
                seed: 9,
                mode: FaultMode::FixedRate { per_mille: 500 },
                scope: FaultScope::All,
                wasted: 10,
            }),
            retry: RetryPolicy::default_policy(),
            breaker: None,
        };
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .resilience(config)
            .build()
            .unwrap();
        drive(&mut ctl, 3_000);
        let mut restored = ReactiveController::restore(&ctl.snapshot()).unwrap();
        let req = DeployRequest {
            branch: BranchId::new(5),
            kind: DeployKind::Optimize,
            instr: 999_999,
            attempt: 0,
        };
        for _ in 0..32 {
            let a = ctl.resilience.as_mut().unwrap().deployer.request(&req);
            let b = restored.resilience.as_mut().unwrap().deployer.request(&req);
            assert_eq!(a, b);
            let _ = matches!(a, DeployOutcome::Deployed);
        }
    }

    /// Emits the pre-policy v3 format — the compatibility fixture the
    /// migration tests decode.
    fn snapshot_v3(ctl: &ReactiveController) -> ControllerCheckpoint {
        let mut w = Writer::with_version(3);
        w.usize(1);
        write_controller_body(&mut w, ctl, 3);
        ControllerCheckpoint { bytes: w.buf }
    }

    #[test]
    fn v3_blob_restores_as_paper_fsm() {
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        drive(&mut ctl, 5_000);
        let restored = ReactiveController::restore(&snapshot_v3(&ctl)).unwrap();
        assert_eq!(restored.policy_id(), "paper-fsm");
        assert_eq!(restored.stats(), ctl.stats());
        // Re-serializing through the current writer must land byte-for-byte
        // on what the original (also paper-FSM) controller produces.
        assert_eq!(restored.snapshot(), ctl.snapshot());
        // And resuming from the old blob replays identically.
        let mut resumed = ReactiveController::restore(&snapshot_v3(&ctl)).unwrap();
        drive(&mut resumed, 5_000);
        drive(&mut ctl, 5_000);
        assert_eq!(resumed.stats(), ctl.stats());
    }

    #[test]
    fn unknown_policy_id_is_refused() {
        use crate::policy::{MonitorCounts, SpecChoice};
        #[derive(Debug)]
        struct Martian;
        impl Policy for Martian {
            fn id(&self) -> &'static str {
                "martian-fsm"
            }
            fn decide(&self, counts: MonitorCounts, params: &ControllerParams) -> SpecChoice {
                PaperFsm.decide(counts, params)
            }
            fn evict(&self, params: &ControllerParams, evictions: u32) -> EvictTracker {
                PaperFsm.evict(params, evictions)
            }
        }
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .policy(Martian)
            .build()
            .unwrap();
        drive(&mut ctl, 500);
        let err = ReactiveController::restore(&ctl.snapshot()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::UnknownPolicy {
                id: "martian-fsm".to_owned()
            }
        );
    }

    #[test]
    fn non_default_policy_round_trips() {
        use crate::policy::Perceptron;
        let policy = Perceptron {
            theta: 12,
            w_max: 64,
            miss_weight: 8,
        };
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .policy(policy)
            .build()
            .unwrap();
        drive(&mut ctl, 5_000);
        let cp = ctl.snapshot();
        let restored = ReactiveController::restore(&cp).unwrap();
        assert_eq!(restored.policy_id(), "perceptron");
        assert_eq!(
            restored.policy().config_blob(),
            ctl.policy().config_blob(),
            "policy configuration survives the round trip"
        );
        // The perceptron's trackers have a shape the params cannot
        // re-derive; v4 must carry it so the second-generation snapshot
        // is bit-identical.
        assert_eq!(restored.snapshot(), cp);
        let mut resumed = ReactiveController::restore(&cp).unwrap();
        drive(&mut resumed, 5_000);
        drive(&mut ctl, 5_000);
        assert_eq!(resumed.stats(), ctl.stats());
        assert_eq!(resumed.snapshot(), ctl.snapshot());
    }

    #[test]
    fn mismatched_policy_shards_are_refused() {
        use crate::policy::Perceptron;
        let paper = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        let perceptron = ReactiveController::builder(ControllerParams::scaled())
            .policy(Perceptron::default())
            .build()
            .unwrap();
        let mut w = Writer::new();
        w.usize(2);
        write_controller_body(&mut w, &paper, VERSION);
        write_controller_body(&mut w, &perceptron, VERSION);
        let err = crate::shard::ShardedController::restore(&ControllerCheckpoint { bytes: w.buf })
            .unwrap_err();
        assert_eq!(
            err,
            CheckpointError::PolicyMismatch {
                expected: "paper-fsm".to_owned(),
                found: "perceptron".to_owned(),
            }
        );

        // Same id but different knobs is corruption, not a mismatch.
        let a = ReactiveController::builder(ControllerParams::scaled())
            .policy(Perceptron::default())
            .build()
            .unwrap();
        let b = ReactiveController::builder(ControllerParams::scaled())
            .policy(Perceptron {
                theta: 1,
                ..Perceptron::default()
            })
            .build()
            .unwrap();
        let mut w = Writer::new();
        w.usize(2);
        write_controller_body(&mut w, &a, VERSION);
        write_controller_body(&mut w, &b, VERSION);
        let err = crate::shard::ShardedController::restore(&ControllerCheckpoint { bytes: w.buf })
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { what, .. }
            if what == "shards disagree on policy configuration"));
    }
}
